//! Rule evaluation: joins, conditions, aggregation, head emission.
//!
//! One [`eval_rule_chunk`] call enumerates all matches of a rule body against the
//! current relations — optionally restricting one positive atom to the
//! semi-naive delta — and buffers the derived head facts. The body is
//! walked in the order chosen by the cost-based planner
//! ([`crate::eval::plan`]); each positive atom carries a pre-compiled
//! unification program and probe key, so the hot loop does no per-row
//! analysis of the rule shape.
//!
//! The executor is allocation-lean: variable bindings, provenance support
//! slots, probe keys and head-tuple scratch all live in a reusable
//! [`Workspace`], and a derived head is only boxed into a `Tuple` after a
//! lookup confirms the fact is not already in the (round-frozen) relation —
//! inserting an existing tuple is a no-op that never overrides provenance,
//! so skipping it early is behavior-preserving.

use crate::ast::{AggFunc, BinOp, CmpOp};
use crate::builtins::{FnCtx, FunctionRegistry};
use crate::db::{ProvEntry, Relation, SkolemTable, SymbolTable};
use crate::error::{DatalogError, Result};
use crate::eval::agg::AggStore;
use crate::eval::plan::{AtomStep, KeyOp, RulePlan, Step, TermOp};
use crate::eval::resolve::{AggKind, RExpr, RLiteral, RRule, RTerm};
use crate::value::{Const, Tuple};

/// A buffered derivation.
#[derive(Debug)]
pub(crate) struct Derived {
    pub pred: u32,
    pub tuple: Tuple,
    pub prov: Option<ProvEntry>,
}

/// Reusable per-evaluation scratch space. One instance lives for the whole
/// fixpoint (one per parallel worker); every [`eval_rule_chunk`] call
/// borrows its buffers, so steady-state rule evaluation performs no
/// allocations until a genuinely new fact is emitted.
#[derive(Default)]
pub(crate) struct Workspace {
    pub(crate) binding: Vec<Option<Const>>,
    pub(crate) support: Vec<(u32, u32)>,
    pub(crate) key_buf: Vec<Const>,
    pub(crate) tuple_buf: Vec<Const>,
    /// Aggregate group scratch (compiled path only; the interpreted
    /// aggregate builds its group `Vec` inline).
    pub(crate) group_buf: Vec<Const>,
    /// Tuples this workspace has already pushed to `out`, per head
    /// predicate — consulted only with provenance off, where any single
    /// representative of an in-round duplicate is equivalent (the
    /// canonical post-round dedup collapses them regardless of which
    /// copies were pushed). Skipping the duplicates here avoids their
    /// tuple allocations and their share of the post-round sort. Entries
    /// are never stale: every recorded tuple is inserted into its
    /// relation at the end of the round that pushed it.
    pub(crate) emitted: crate::fx::FxHashMap<u32, crate::fx::FxHashSet<Tuple>>,
}

/// Mutable evaluation context shared across rules of a round.
pub(crate) struct RunCtx<'b> {
    pub symbols: &'b mut SymbolTable,
    pub skolems: &'b mut SkolemTable,
    pub registry: &'b FunctionRegistry,
    pub agg: &'b mut AggStore,
    pub out: &'b mut Vec<Derived>,
    pub ws: &'b mut Workspace,
    pub epsilon: f64,
    pub provenance: bool,
}

/// Evaluates `rule` under `plan` against `relations`, optionally
/// restricted to an explicit candidate-row list for the plan's
/// first step (which must be a positive atom). If `delta` is
/// `Some((li, start))`, the positive atom at *original body literal* `li`
/// only matches rows `>= start`. The driver rows must be an
/// in-order subsequence of what the unrestricted evaluation would
/// enumerate — see [`driver_rows`] — so concatenating the outputs of a
/// partition of chunks reproduces the sequential output exactly. This is
/// the hook the parallel round scheduler uses to split one rule evaluation
/// across workers.
pub(crate) fn eval_rule_chunk(
    rule: &RRule,
    plan: &RulePlan,
    relations: &[Relation],
    delta: Option<(usize, u32)>,
    driver: Option<&[u32]>,
    ctx: &mut RunCtx<'_>,
) -> Result<()> {
    // Borrow the workspace buffers for the duration of this evaluation;
    // capacity is retained across calls.
    let mut binding = std::mem::take(&mut ctx.ws.binding);
    binding.clear();
    binding.resize(rule.nvars, None);
    let mut support = std::mem::take(&mut ctx.ws.support);
    support.clear();
    support.resize(plan.n_support, (0, 0));
    let key_buf = std::mem::take(&mut ctx.ws.key_buf);
    let tuple_buf = std::mem::take(&mut ctx.ws.tuple_buf);
    let mut ev = Evaluator {
        rule,
        plan,
        relations,
        delta,
        driver,
        binding,
        support,
        key_buf,
        tuple_buf,
        ctx,
    };
    let result = ev.step(0);
    let Evaluator {
        binding,
        support,
        key_buf,
        tuple_buf,
        ctx,
        ..
    } = ev;
    ctx.ws.binding = binding;
    ctx.ws.support = support;
    ctx.ws.key_buf = key_buf;
    ctx.ws.tuple_buf = tuple_buf;
    result
}

/// Materializes the candidate rows the *first* plan step of a rule would
/// enumerate under `delta`, in enumeration order. Returns `None` when the
/// plan has no leading positive atom to drive chunking from (empty bodies).
/// Mirrors the probe/scan dispatch of `match_atom` at step 0, where the
/// planner guarantees any masked position is a constant.
pub(crate) fn driver_rows(
    plan: &RulePlan,
    relations: &[Relation],
    delta: Option<(usize, u32)>,
) -> Option<Vec<u32>> {
    let Some(Step::Atom(step)) = plan.steps.first() else {
        return None;
    };
    let rel = &relations[step.pred as usize];
    let delta_start = match delta {
        Some((li, start)) if li == step.lit => Some(start),
        _ => None,
    };
    if step.mask != 0 {
        let mut key = Vec::with_capacity(step.key_ops.len());
        for k in &step.key_ops {
            match k {
                KeyOp::Const(c) => key.push(*c),
                // No variable can be bound before the first atom; bail out
                // defensively rather than panic if a plan ever violates it.
                KeyOp::Var(_) => return None,
            }
        }
        if step.full_key() {
            // Fully ground atom: membership via the dedup map, no index.
            return Some(
                rel.find(&key)
                    .into_iter()
                    .filter(|&r| delta_start.is_none_or(|start| r >= start))
                    .collect(),
            );
        }
        let rows = rel.lookup_rows(step.mask, &key);
        Some(match delta_start {
            Some(start) => rows.iter().copied().filter(|&r| r >= start).collect(),
            None => rows.to_vec(),
        })
    } else {
        let start = delta_start.unwrap_or(0);
        Some((start..rel.len() as u32).collect())
    }
}

struct Evaluator<'a, 'c> {
    rule: &'a RRule,
    plan: &'a RulePlan,
    relations: &'a [Relation],
    delta: Option<(usize, u32)>,
    /// Pre-enumerated candidate rows for step 0 (chunked evaluation).
    driver: Option<&'a [u32]>,
    binding: Vec<Option<Const>>,
    /// Provenance parents, one slot per positive literal in original body
    /// order — slot addressing keeps parent order plan-independent.
    support: Vec<(u32, u32)>,
    key_buf: Vec<Const>,
    tuple_buf: Vec<Const>,
    ctx: &'a mut RunCtx<'c>,
}

impl<'a, 'c> Evaluator<'a, 'c> {
    fn step(&mut self, si: usize) -> Result<()> {
        // Copy the references so literal borrows are independent of self.
        let rule = self.rule;
        let plan = self.plan;
        if si == plan.steps.len() {
            return self.emit_heads();
        }
        match &plan.steps[si] {
            Step::Atom(step) => self.match_atom(si, step),
            Step::Negated(li) => {
                let RLiteral::Negated(atom) = &rule.body[*li] else {
                    unreachable!("Negated step points at a negated literal")
                };
                self.tuple_buf.clear();
                for term in &atom.terms {
                    let v = self.term_value(term)?;
                    self.tuple_buf.push(v);
                }
                if self.relations[atom.pred as usize]
                    .find(&self.tuple_buf)
                    .is_none()
                {
                    self.step(si + 1)
                } else {
                    Ok(())
                }
            }
            Step::Cond(li) => {
                let RLiteral::Cond(e) = &rule.body[*li] else {
                    unreachable!("Cond step points at a condition literal")
                };
                match eval_expr(e, &self.binding, self.ctx)? {
                    Const::Bool(true) => self.step(si + 1),
                    Const::Bool(false) => Ok(()),
                    other => Err(DatalogError::Function(format!(
                        "condition evaluated to non-boolean {other}"
                    ))),
                }
            }
            Step::Let(li) => {
                let RLiteral::Let(v, e) = &rule.body[*li] else {
                    unreachable!("Let step points at a let literal")
                };
                let val = eval_expr(e, &self.binding, self.ctx)?;
                match self.binding[*v as usize] {
                    Some(existing) => {
                        if existing == val {
                            self.step(si + 1)
                        } else {
                            Ok(())
                        }
                    }
                    None => {
                        self.binding[*v as usize] = Some(val);
                        let r = self.step(si + 1);
                        self.binding[*v as usize] = None;
                        r
                    }
                }
            }
            Step::Agg(li) => {
                let RLiteral::Agg { agg, kind } = &rule.body[*li] else {
                    unreachable!("Agg step points at an aggregate literal")
                };
                self.apply_aggregate(agg, kind)
            }
        }
    }

    fn match_atom(&mut self, si: usize, step: &'a AtomStep) -> Result<()> {
        // Copy the slice reference so `rows` borrows independently of self.
        let relations = self.relations;
        let rel = &relations[step.pred as usize];
        let delta_start = match self.delta {
            Some((dli, start)) if dli == step.lit => Some(start),
            _ => None,
        };
        // Collect candidate rows.
        enum Rows<'r> {
            /// Pre-enumerated (and pre-filtered) by the parallel scheduler.
            Driver(&'r [u32]),
            Probe(&'r [u32]),
            /// Full-key membership test answered by the dedup map — no
            /// registered index involved.
            Find(Option<u32>),
            Scan(std::ops::Range<u32>),
        }
        let driver = if si == 0 { self.driver } else { None };
        let rows = if let Some(rows) = driver {
            Rows::Driver(rows)
        } else if step.mask != 0 {
            self.key_buf.clear();
            for k in &step.key_ops {
                self.key_buf.push(match k {
                    KeyOp::Const(c) => *c,
                    KeyOp::Var(v) => {
                        self.binding[*v as usize].expect("masked position must be bound")
                    }
                });
            }
            // The probe key is consumed before descending, so reusing
            // `key_buf` across recursion levels is safe.
            if step.full_key() {
                // In mask-bit order a full key IS the tuple.
                Rows::Find(rel.find(&self.key_buf))
            } else {
                Rows::Probe(rel.lookup_rows(step.mask, &self.key_buf))
            }
        } else {
            let start = delta_start.unwrap_or(0);
            Rows::Scan(start..rel.len() as u32)
        };
        let visit = |ev: &mut Self, row: u32| -> Result<()> {
            let tuple = ev.relations[step.pred as usize].row(row);
            // Run the pre-compiled unification program for this atom.
            let mut ok = true;
            for (i, op) in step.ops.iter().enumerate() {
                match op {
                    TermOp::CheckConst(c) => {
                        if *c != tuple[i] {
                            ok = false;
                            break;
                        }
                    }
                    TermOp::CheckVar(v) => {
                        if ev.binding[*v as usize] != Some(tuple[i]) {
                            ok = false;
                            break;
                        }
                    }
                    TermOp::Bind(v) => ev.binding[*v as usize] = Some(tuple[i]),
                }
            }
            let result = if ok {
                ev.support[step.support_slot] = (step.pred, row);
                ev.step(si + 1)
            } else {
                Ok(())
            };
            // Undo is statically known: exactly the vars this atom binds.
            for v in &step.binds {
                ev.binding[*v as usize] = None;
            }
            result
        };
        match rows {
            Rows::Driver(rows) => {
                for &row in rows {
                    visit(self, row)?;
                }
            }
            Rows::Probe(rows) => {
                for &row in rows {
                    if let Some(start) = delta_start {
                        if row < start {
                            continue;
                        }
                    }
                    visit(self, row)?;
                }
            }
            Rows::Find(found) => {
                if let Some(row) = found {
                    if delta_start.is_none_or(|start| row >= start) {
                        visit(self, row)?;
                    }
                }
            }
            Rows::Scan(range) => {
                for row in range {
                    visit(self, row)?;
                }
            }
        }
        Ok(())
    }

    /// Evaluates a ground term (vars must be bound; Skolems are applied).
    fn term_value(&mut self, t: &RTerm) -> Result<Const> {
        match t {
            RTerm::Const(c) => Ok(*c),
            RTerm::Var(v) => self.binding[*v as usize].ok_or_else(|| {
                DatalogError::Validation(format!("unbound variable v{v} at emission"))
            }),
            RTerm::Skolem { functor, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.term_value(a)?);
                }
                Ok(Const::Null(self.ctx.skolems.apply(*functor, &vals)))
            }
        }
    }

    fn emit_heads(&mut self) -> Result<()> {
        let rule = self.rule;
        // Existential variables: one labelled null per (rule, var, frontier).
        let mut bound_ex: Vec<u32> = Vec::new();
        for (v, functor, frontier) in &rule.existentials {
            let mut args = Vec::with_capacity(frontier.len());
            for f in frontier {
                args.push(self.binding[*f as usize].expect("frontier vars are bound"));
            }
            let null = Const::Null(self.ctx.skolems.apply(*functor, &args));
            self.binding[*v as usize] = Some(null);
            bound_ex.push(*v);
        }
        for atom in &rule.head {
            self.tuple_buf.clear();
            for t in &atom.terms {
                let v = self.term_value(t)?;
                self.tuple_buf.push(v);
            }
            // The fact is already in the round-frozen relation: inserting it
            // again would be a no-op (set semantics, first-derivation
            // provenance), so skip without boxing a tuple.
            if self.relations[atom.pred as usize]
                .find(&self.tuple_buf)
                .is_some()
            {
                continue;
            }
            if !self.ctx.provenance {
                // No provenance to arbitrate between in-round duplicates:
                // one representative per workspace suffices.
                if self
                    .ctx
                    .ws
                    .emitted
                    .get(&atom.pred)
                    .is_some_and(|s| s.contains(self.tuple_buf.as_slice()))
                {
                    continue;
                }
                let tuple: Tuple = self.tuple_buf.as_slice().into();
                self.ctx
                    .ws
                    .emitted
                    .entry(atom.pred)
                    .or_default()
                    .insert(tuple.clone());
                self.ctx.out.push(Derived {
                    pred: atom.pred,
                    tuple,
                    prov: None,
                });
                continue;
            }
            let prov = self.make_prov();
            self.ctx.out.push(Derived {
                pred: atom.pred,
                tuple: self.tuple_buf.as_slice().into(),
                prov,
            });
        }
        for v in bound_ex {
            self.binding[v as usize] = None;
        }
        Ok(())
    }

    fn make_prov(&self) -> Option<ProvEntry> {
        if self.ctx.provenance {
            Some(ProvEntry {
                rule: self.rule.idx,
                parents: self.support.clone(),
            })
        } else {
            None
        }
    }

    fn apply_aggregate(&mut self, agg: &crate::eval::resolve::RAgg, kind: &AggKind) -> Result<()> {
        let rule = self.rule;
        let head = &rule.head[0];
        let head_pred = head.pred;
        // Contribution value.
        let value = if agg.func == AggFunc::Count {
            1.0
        } else {
            eval_expr(&agg.expr, &self.binding, self.ctx)?
                .as_f64()
                .ok_or_else(|| {
                    DatalogError::Function("aggregate contribution is not numeric".into())
                })?
        };
        // Contributor key.
        let mut contrib = Vec::with_capacity(agg.contributors.len());
        for v in &agg.contributors {
            contrib
                .push(self.binding[*v as usize].expect("contributor vars are bound (validated)"));
        }
        match kind {
            AggKind::Let {
                var,
                head_value_pos,
            } => {
                // Group = head tuple minus the value position.
                let mut group = Vec::with_capacity(head.terms.len() - 1);
                for (i, t) in head.terms.iter().enumerate() {
                    if i != *head_value_pos {
                        group.push(self.term_value(t)?);
                    }
                }
                let (state, _) = self.ctx.agg.contribute(
                    head_pred,
                    &group,
                    agg.func,
                    self.rule.idx,
                    &contrib,
                    value,
                    self.ctx.epsilon,
                );
                let total = state.total();
                let emit = state
                    .last_emitted
                    .is_none_or(|l| (total - l).abs() > self.ctx.epsilon);
                if emit {
                    state.last_emitted = Some(total);
                    let value_const = state.total_const();
                    let _ = var; // the value flows directly into the head slot
                    let mut tuple = Vec::with_capacity(head.terms.len());
                    let mut gi = 0usize;
                    for i in 0..head.terms.len() {
                        if i == *head_value_pos {
                            tuple.push(value_const);
                        } else {
                            tuple.push(group[gi]);
                            gi += 1;
                        }
                    }
                    let prov = self.make_prov();
                    self.ctx.out.push(Derived {
                        pred: head_pred,
                        tuple: tuple.into(),
                        prov,
                    });
                }
            }
            AggKind::Cond { op, rhs } => {
                self.tuple_buf.clear();
                for t in &head.terms {
                    let v = self.term_value(t)?;
                    self.tuple_buf.push(v);
                }
                let head_tuple: Tuple = self.tuple_buf.as_slice().into();
                let rhs_val = eval_expr(rhs, &self.binding, self.ctx)?;
                let (state, _) = self.ctx.agg.contribute(
                    head_pred,
                    &head_tuple,
                    agg.func,
                    self.rule.idx,
                    &contrib,
                    value,
                    self.ctx.epsilon,
                );
                let total = state.total_const();
                if compare(*op, total, rhs_val) {
                    // Duplicate-skip: re-deriving an existing fact is a
                    // no-op at insert time.
                    if self.relations[head_pred as usize]
                        .find(&head_tuple)
                        .is_none()
                    {
                        if !self.ctx.provenance {
                            let seen = self.ctx.ws.emitted.entry(head_pred).or_default();
                            if !seen.insert(head_tuple.clone()) {
                                return Ok(());
                            }
                            self.ctx.out.push(Derived {
                                pred: head_pred,
                                tuple: head_tuple,
                                prov: None,
                            });
                            return Ok(());
                        }
                        let prov = self.make_prov();
                        self.ctx.out.push(Derived {
                            pred: head_pred,
                            tuple: head_tuple,
                            prov,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Compares constants under a comparison operator using the total order.
pub(crate) fn compare(op: CmpOp, a: Const, b: Const) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Evaluates an expression under a binding.
pub(crate) fn eval_expr(
    e: &RExpr,
    binding: &[Option<Const>],
    ctx: &mut RunCtx<'_>,
) -> Result<Const> {
    match e {
        RExpr::Var(v) => binding[*v as usize]
            .ok_or_else(|| DatalogError::Validation(format!("unbound variable v{v}"))),
        RExpr::Const(c) => Ok(*c),
        RExpr::Binary(op, a, b) => {
            let av = eval_expr(a, binding, ctx)?;
            let bv = eval_expr(b, binding, ctx)?;
            arith(*op, av, bv)
        }
        RExpr::Cmp(op, a, b) => {
            let av = eval_expr(a, binding, ctx)?;
            let bv = eval_expr(b, binding, ctx)?;
            Ok(Const::Bool(compare(*op, av, bv)))
        }
        RExpr::Call {
            name,
            functor,
            args,
        } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, binding, ctx)?);
            }
            if let Some(f) = ctx.registry.get(name) {
                let mut fctx = FnCtx {
                    symbols: ctx.symbols,
                    skolems: ctx.skolems,
                };
                f(&mut fctx, &vals).map_err(|e| DatalogError::Function(format!("#{name}: {e}")))
            } else {
                // Unregistered functors are Skolem functions (Algorithm 2
                // of the paper: `z = #sk_c(name)`).
                Ok(Const::Null(ctx.skolems.apply(*functor, &vals)))
            }
        }
    }
}

/// Evaluates a *pure* expression — no external calls, hence no access to
/// the symbol or Skolem tables — under a binding. Shares `arith`/`compare`
/// with [`eval_expr`] so the two paths cannot drift; the incremental
/// delta enumerator ([`crate::incr`]) uses this on rules already
/// classified call-free.
pub(crate) fn eval_pure_expr(e: &RExpr, binding: &[Option<Const>]) -> Result<Const> {
    match e {
        RExpr::Var(v) => binding[*v as usize]
            .ok_or_else(|| DatalogError::Validation(format!("unbound variable v{v}"))),
        RExpr::Const(c) => Ok(*c),
        RExpr::Binary(op, a, b) => arith(
            *op,
            eval_pure_expr(a, binding)?,
            eval_pure_expr(b, binding)?,
        ),
        RExpr::Cmp(op, a, b) => Ok(Const::Bool(compare(
            *op,
            eval_pure_expr(a, binding)?,
            eval_pure_expr(b, binding)?,
        ))),
        RExpr::Call { name, .. } => Err(DatalogError::Function(format!(
            "#{name}: external calls are not pure (incremental enumerator)"
        ))),
    }
}

pub(crate) fn arith(op: BinOp, a: Const, b: Const) -> Result<Const> {
    use Const::*;
    let err = || {
        DatalogError::Function(format!(
            "arithmetic on non-numeric operands ({a} {op:?} {b})"
        ))
    };
    match (a, b) {
        (Int(x), Int(y)) => Ok(match op {
            BinOp::Add => Int(x.wrapping_add(y)),
            BinOp::Sub => Int(x.wrapping_sub(y)),
            BinOp::Mul => Int(x.wrapping_mul(y)),
            BinOp::Div => Const::float(x as f64 / y as f64),
        }),
        _ => {
            let x = a.as_f64().ok_or_else(err)?;
            let y = b.as_f64().ok_or_else(err)?;
            Ok(match op {
                BinOp::Add => Const::float(x + y),
                BinOp::Sub => Const::float(x - y),
                BinOp::Mul => Const::float(x * y),
                BinOp::Div => Const::float(x / y),
            })
        }
    }
}
