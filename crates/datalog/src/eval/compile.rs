//! Compiled plan execution: each cost-planned rule is lowered once per
//! stratum into a chain of specialized closures — the compile-once /
//! dispatch-many idiom — so the fixpoint inner loop runs pre-resolved
//! column offsets, pre-built probe keys and monomorphized
//! probe/scan/filter/let/agg stages instead of re-interpreting
//! [`Step`](crate::eval::plan::Step) variants per tuple.
//!
//! The byte-identity contract with the interpreted executor
//! ([`crate::eval::exec`]) is absolute: a compiled stage enumerates the
//! same rows in the same order, mutates the evaluation context in the
//! same sequence (Skolem invention, aggregate contributions, symbol
//! interning), and fails with the same error strings. Differential suites
//! enforce this over every bundled program at several thread counts.
//!
//! What compilation buys over interpretation:
//!
//! * **No step dispatch.** Each stage is one indirect call that already
//!   knows its kind; there is no per-row `match` on step variants and no
//!   slice indexing into a step list.
//! * **Check elision.** Rows produced by an index probe, a full-key find
//!   or a pre-enumerated driver chunk already satisfy every masked
//!   column (`tuple[i] == key[i]` by construction), so a compiled atom
//!   stage runs only the ops at *unmasked* columns — the binds plus
//!   within-atom repeat checks. A full-key find runs no ops at all.
//! * **Pre-built keys.** Probe keys made only of constants are
//!   materialized at compile time instead of rebuilt per visit.
//! * **Expression lowering.** Conditions and lets with the common
//!   `var ⟨cmp⟩ var` / `var ⟨op⟩ const` shapes skip the recursive
//!   [`RExpr`] walk; everything else falls back to the shared
//!   interpreter so the two paths cannot drift.
//! * **Columnar access.** Atoms over relations frozen to the columnar
//!   layout ([`crate::db::Columnar`]) read per-column strips instead of
//!   dereferencing one `Arc<[Const]>` per row, and single-column probes
//!   go through the CSR adjacency lists.

use crate::ast::{AggFunc, BinOp, CmpOp};
use crate::db::{ProvEntry, Relation, SkolemTable};
use crate::error::{DatalogError, Result};
use crate::eval::batch;
use crate::eval::exec::{arith, compare, eval_expr, Derived, RunCtx};
use crate::eval::plan::{KeyOp, RulePlan, RulePlans, Step, TermOp};
use crate::eval::resolve::{AggKind, RAgg, RAtom, RExpr, RRule, RTerm};
use crate::value::{Const, Tuple};

/// One compiled stage: consumes the current [`Frame`], enumerates its
/// matches (or applies its filter) and calls the next stage it owns.
type Stage = Box<dyn for<'r, 'b, 'c> Fn(&mut Frame<'r, 'b, 'c>) -> Result<()> + Send + Sync>;

/// Funnel that forces closures into the higher-ranked [`Stage`] signature.
fn stage<F>(f: F) -> Stage
where
    F: for<'r, 'b, 'c> Fn(&mut Frame<'r, 'b, 'c>) -> Result<()> + Send + Sync + 'static,
{
    Box::new(f)
}

/// Per-evaluation state threaded through a compiled chain. The scratch
/// buffers are borrowed from the context's [`Workspace`]
/// (`crate::eval::exec::Workspace`) for the duration of one rule
/// evaluation, exactly as the interpreted executor does.
pub(crate) struct Frame<'r, 'b, 'c> {
    relations: &'r [Relation],
    /// First delta row for the delta-tagged atom stage (0 on naive plans).
    delta_start: u32,
    /// Pre-enumerated candidate rows for the first stage (chunked
    /// parallel evaluation), already delta-filtered.
    driver: Option<&'r [u32]>,
    binding: Vec<Option<Const>>,
    support: Vec<(u32, u32)>,
    key_buf: Vec<Const>,
    tuple_buf: Vec<Const>,
    group_buf: Vec<Const>,
    ctx: &'c mut RunCtx<'b>,
}

/// A rule plan lowered to a closure chain, plus (for naive plans in
/// the batch subset) the vectorized lowering of the same plan.
pub(crate) struct CompiledRule {
    entry: Stage,
    nvars: usize,
    n_support: usize,
    /// Batch-at-a-time lowering; taken instead of `entry` when batch
    /// execution is enabled, provenance is off, and the plan's inputs
    /// are frozen columnar (see [`batch::ready`]).
    batch: Option<batch::BatchPlan>,
}

/// Compiled naive + per-delta-literal plans for one rule, parallel to
/// [`RulePlans`].
pub(crate) struct CompiledRulePlans {
    pub naive: CompiledRule,
    /// One compiled plan per positive body literal, aligned with
    /// `RRule::positive_literals`.
    pub delta: Vec<CompiledRule>,
}

/// Lowers every planned rule of a stratum. The result is indexed by rule
/// index like `plans` itself (entries outside the stratum stay `None`).
pub(crate) fn compile_stratum(
    rules: &[RRule],
    plans: &[Option<RulePlans>],
) -> Vec<Option<CompiledRulePlans>> {
    plans
        .iter()
        .enumerate()
        .map(|(ri, rp)| {
            rp.as_ref().map(|rp| {
                let rule = &rules[ri];
                CompiledRulePlans {
                    naive: compile_plan(rule, &rp.naive, None),
                    delta: rule
                        .positive_literals
                        .iter()
                        .zip(rp.delta.iter())
                        .map(|(&li, p)| compile_plan(rule, p, Some(li)))
                        .collect(),
                }
            })
        })
        .collect()
}

/// Evaluates one compiled rule against `relations`, mirroring
/// [`eval_rule_chunk`](crate::eval::exec::eval_rule_chunk): `delta_start`
/// is the first delta row when this is a delta plan (pass 0 for naive),
/// `driver` an optional pre-enumerated candidate list for the first stage.
pub(crate) fn eval_compiled_chunk(
    cr: &CompiledRule,
    relations: &[Relation],
    delta_start: u32,
    driver: Option<&[u32]>,
    batch_on: bool,
    ctx: &mut RunCtx<'_>,
) -> Result<()> {
    if batch_on && !ctx.provenance {
        if let Some(bp) = &cr.batch {
            if batch::ready(bp, relations) {
                return batch::eval_batch(bp, relations, driver, ctx);
            }
        }
    }
    let mut binding = std::mem::take(&mut ctx.ws.binding);
    binding.clear();
    binding.resize(cr.nvars, None);
    let mut support = std::mem::take(&mut ctx.ws.support);
    support.clear();
    support.resize(cr.n_support, (0, 0));
    let key_buf = std::mem::take(&mut ctx.ws.key_buf);
    let tuple_buf = std::mem::take(&mut ctx.ws.tuple_buf);
    let group_buf = std::mem::take(&mut ctx.ws.group_buf);
    let mut f = Frame {
        relations,
        delta_start,
        driver,
        binding,
        support,
        key_buf,
        tuple_buf,
        group_buf,
        ctx,
    };
    let result = (cr.entry)(&mut f);
    let Frame {
        binding,
        support,
        key_buf,
        tuple_buf,
        group_buf,
        ctx,
        ..
    } = f;
    ctx.ws.binding = binding;
    ctx.ws.support = support;
    ctx.ws.key_buf = key_buf;
    ctx.ws.tuple_buf = tuple_buf;
    ctx.ws.group_buf = group_buf;
    result
}

fn compile_plan(rule: &RRule, plan: &RulePlan, delta_li: Option<usize>) -> CompiledRule {
    let mut next = make_emit(rule);
    for (si, step) in plan.steps.iter().enumerate().rev() {
        next = match step {
            Step::Atom(a) => {
                let data = AtomData::lower(a, si == 0, delta_li == Some(a.lit));
                make_atom(data, next)
            }
            Step::Negated(li) => {
                let crate::eval::resolve::RLiteral::Negated(atom) = &rule.body[*li] else {
                    unreachable!("Negated step points at a negated literal")
                };
                make_negated(atom.clone(), next)
            }
            Step::Cond(li) => {
                let crate::eval::resolve::RLiteral::Cond(e) = &rule.body[*li] else {
                    unreachable!("Cond step points at a condition literal")
                };
                make_cond(lower_expr(e), next)
            }
            Step::Let(li) => {
                let crate::eval::resolve::RLiteral::Let(v, e) = &rule.body[*li] else {
                    unreachable!("Let step points at a let literal")
                };
                make_let(*v, lower_expr(e), next)
            }
            // Aggregates are terminal: the interpreted executor never
            // descends past them either, so the chained tail is dropped.
            Step::Agg(li) => {
                let crate::eval::resolve::RLiteral::Agg { agg, kind } = &rule.body[*li] else {
                    unreachable!("Agg step points at an aggregate literal")
                };
                make_agg(rule, agg.clone(), kind.clone())
            }
        };
    }
    CompiledRule {
        entry: next,
        nvars: rule.nvars,
        n_support: plan.n_support,
        // Only naive plans lower to batch form: delta plans read the
        // just-written (never frozen) delta side anyway.
        batch: if delta_li.is_none() {
            batch::lower(rule, plan)
        } else {
            None
        },
    }
}

// ---------------------------------------------------------------------------
// Atom stages
// ---------------------------------------------------------------------------

/// Probe-key construction, resolved at compile time when possible.
enum KeyPlan {
    /// Unmasked atom: full scan, no key.
    None,
    /// All key components are constants — built once, here.
    Pre(Box<[Const]>),
    /// At least one component reads a binding at run time.
    Dyn(Box<[KeyOp]>),
}

/// Everything an atom stage needs, pre-resolved from its [`AtomStep`]
/// (`crate::eval::plan::AtomStep`).
struct AtomData {
    pred: u32,
    mask: u64,
    full_key: bool,
    key: KeyPlan,
    /// Unification ops at *unmasked* columns only, with their column
    /// offsets. Masked columns are guaranteed by the probe/find/driver
    /// row source (check elision).
    ops: Box<[(usize, TermOp)]>,
    binds: Box<[u32]>,
    support_slot: usize,
    /// Whether the semi-naive delta restriction applies to this atom.
    is_delta: bool,
    /// Whether this stage may consume the frame's driver rows (stage 0).
    allow_driver: bool,
}

impl AtomData {
    fn lower(a: &crate::eval::plan::AtomStep, first: bool, is_delta: bool) -> AtomData {
        let key = if a.mask == 0 {
            KeyPlan::None
        } else if a.key_ops.iter().all(|k| matches!(k, KeyOp::Const(_))) {
            KeyPlan::Pre(
                a.key_ops
                    .iter()
                    .map(|k| match k {
                        KeyOp::Const(c) => *c,
                        KeyOp::Var(_) => unreachable!("checked all-const"),
                    })
                    .collect(),
            )
        } else {
            KeyPlan::Dyn(a.key_ops.clone().into_boxed_slice())
        };
        // Check elision: rows from a probe, find or driver already match
        // every masked column, so only unmasked ops remain. The planner
        // sets mask bits exactly on CheckConst and bound-var CheckVar
        // positions, so what survives is Binds plus within-atom repeats.
        let ops: Box<[(usize, TermOp)]> = a
            .ops
            .iter()
            .enumerate()
            .filter(|(i, _)| a.mask & (1u64 << i) == 0)
            .map(|(i, op)| (i, op.clone()))
            .collect();
        AtomData {
            pred: a.pred,
            mask: a.mask,
            full_key: a.full_key(),
            key,
            ops,
            binds: a.binds.clone().into_boxed_slice(),
            support_slot: a.support_slot,
            is_delta,
            allow_driver: first,
        }
    }
}

/// Runs the (already elided) unification ops for one row, reading column
/// values through `read`. Returns whether the row matches.
#[inline]
fn run_ops(
    ops: &[(usize, TermOp)],
    binding: &mut [Option<Const>],
    read: impl Fn(usize) -> Const,
) -> bool {
    for (col, op) in ops {
        let v = read(*col);
        match op {
            TermOp::CheckConst(c) => {
                if *c != v {
                    return false;
                }
            }
            TermOp::CheckVar(var) => {
                if binding[*var as usize] != Some(v) {
                    return false;
                }
            }
            TermOp::Bind(var) => binding[*var as usize] = Some(v),
        }
    }
    true
}

/// Visits one candidate row: unify, set the support slot, descend, undo.
#[inline]
fn visit_row(a: &AtomData, next: &Stage, f: &mut Frame<'_, '_, '_>, row: u32) -> Result<()> {
    let relations = f.relations;
    let rel = &relations[a.pred as usize];
    let ok = match rel.columnar() {
        Some(c) => run_ops(&a.ops, &mut f.binding, |col| c.col(col)[row as usize]),
        None => {
            let tuple = rel.row(row);
            run_ops(&a.ops, &mut f.binding, |col| tuple[col])
        }
    };
    let result = if ok {
        f.support[a.support_slot] = (a.pred, row);
        next(f)
    } else {
        Ok(())
    };
    // Undo is statically known: exactly the vars this atom binds.
    for v in a.binds.iter() {
        f.binding[*v as usize] = None;
    }
    result
}

fn make_atom(a: AtomData, next: Stage) -> Stage {
    stage(move |f| {
        let relations = f.relations;
        let rel = &relations[a.pred as usize];
        let start = if a.is_delta { f.delta_start } else { 0 };
        if a.allow_driver {
            if let Some(rows) = f.driver {
                // Driver rows are pre-filtered (delta and probe key).
                for &row in rows {
                    visit_row(&a, &next, f, row)?;
                }
                return Ok(());
            }
        }
        match &a.key {
            KeyPlan::None => {
                for row in start..rel.len() as u32 {
                    visit_row(&a, &next, f, row)?;
                }
            }
            KeyPlan::Pre(key) => {
                if a.full_key {
                    // In mask-bit order a full key IS the tuple.
                    if let Some(row) = rel.find(key) {
                        if row >= start {
                            visit_row(&a, &next, f, row)?;
                        }
                    }
                } else {
                    let rows = rel.lookup_rows(a.mask, key);
                    for &row in rows {
                        if row < start {
                            continue;
                        }
                        visit_row(&a, &next, f, row)?;
                    }
                }
            }
            KeyPlan::Dyn(key_ops) => {
                f.key_buf.clear();
                for k in key_ops.iter() {
                    f.key_buf.push(match k {
                        KeyOp::Const(c) => *c,
                        KeyOp::Var(v) => {
                            f.binding[*v as usize].expect("masked position must be bound")
                        }
                    });
                }
                // The probe key is consumed before descending, so reusing
                // `key_buf` across recursion levels is safe.
                if a.full_key {
                    if let Some(row) = rel.find(&f.key_buf) {
                        if row >= start {
                            visit_row(&a, &next, f, row)?;
                        }
                    }
                } else {
                    let rows = rel.lookup_rows(a.mask, &f.key_buf);
                    for &row in rows {
                        if row < start {
                            continue;
                        }
                        visit_row(&a, &next, f, row)?;
                    }
                }
            }
        }
        Ok(())
    })
}

// ---------------------------------------------------------------------------
// Filter stages
// ---------------------------------------------------------------------------

fn make_negated(atom: RAtom, next: Stage) -> Stage {
    stage(move |f| {
        f.tuple_buf.clear();
        for term in &atom.terms {
            let v = term_value(term, &f.binding, f.ctx.skolems)?;
            f.tuple_buf.push(v);
        }
        if f.relations[atom.pred as usize].find(&f.tuple_buf).is_none() {
            next(f)
        } else {
            Ok(())
        }
    })
}

fn make_cond(e: CExpr, next: Stage) -> Stage {
    // Lowered comparisons are boolean by construction; only the general
    // path needs the non-boolean guard.
    match e {
        CExpr::CmpVV(op, a, b) => stage(move |f| {
            let av = var_value(a, &f.binding)?;
            let bv = var_value(b, &f.binding)?;
            if compare(op, av, bv) {
                next(f)
            } else {
                Ok(())
            }
        }),
        CExpr::CmpVC(op, a, c) => stage(move |f| {
            let av = var_value(a, &f.binding)?;
            if compare(op, av, c) {
                next(f)
            } else {
                Ok(())
            }
        }),
        CExpr::CmpCV(op, c, b) => stage(move |f| {
            let bv = var_value(b, &f.binding)?;
            if compare(op, c, bv) {
                next(f)
            } else {
                Ok(())
            }
        }),
        e => stage(move |f| match eval_cexpr(&e, f)? {
            Const::Bool(true) => next(f),
            Const::Bool(false) => Ok(()),
            other => Err(DatalogError::Function(format!(
                "condition evaluated to non-boolean {other}"
            ))),
        }),
    }
}

fn make_let(var: u32, e: CExpr, next: Stage) -> Stage {
    stage(move |f| {
        let val = eval_cexpr(&e, f)?;
        match f.binding[var as usize] {
            Some(existing) => {
                if existing == val {
                    next(f)
                } else {
                    Ok(())
                }
            }
            None => {
                f.binding[var as usize] = Some(val);
                let r = next(f);
                f.binding[var as usize] = None;
                r
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn make_emit(rule: &RRule) -> Stage {
    let existentials = rule.existentials.clone();
    let heads = rule.head.clone();
    let rule_idx = rule.idx;
    stage(move |f| {
        // Existential variables: one labelled null per (rule, var, frontier).
        let mut bound_ex: Vec<u32> = Vec::new();
        for (v, functor, frontier) in &existentials {
            let mut args = Vec::with_capacity(frontier.len());
            for fr in frontier {
                args.push(f.binding[*fr as usize].expect("frontier vars are bound"));
            }
            let null = Const::Null(f.ctx.skolems.apply(*functor, &args));
            f.binding[*v as usize] = Some(null);
            bound_ex.push(*v);
        }
        for atom in &heads {
            f.tuple_buf.clear();
            for t in &atom.terms {
                let v = term_value(t, &f.binding, f.ctx.skolems)?;
                f.tuple_buf.push(v);
            }
            // Emit-time dup-skip, exactly as the interpreted executor:
            // inserting an existing fact is a no-op that never overrides
            // provenance, so skip without boxing a tuple.
            if f.relations[atom.pred as usize].find(&f.tuple_buf).is_some() {
                continue;
            }
            if !f.ctx.provenance {
                // No provenance to arbitrate between in-round duplicates:
                // one representative per workspace suffices.
                if f.ctx
                    .ws
                    .emitted
                    .get(&atom.pred)
                    .is_some_and(|s| s.contains(f.tuple_buf.as_slice()))
                {
                    continue;
                }
                let tuple: Tuple = f.tuple_buf.as_slice().into();
                f.ctx
                    .ws
                    .emitted
                    .entry(atom.pred)
                    .or_default()
                    .insert(tuple.clone());
                f.ctx.out.push(Derived {
                    pred: atom.pred,
                    tuple,
                    prov: None,
                });
                continue;
            }
            let prov = make_prov(rule_idx, &f.support, f.ctx.provenance);
            f.ctx.out.push(Derived {
                pred: atom.pred,
                tuple: f.tuple_buf.as_slice().into(),
                prov,
            });
        }
        for v in bound_ex {
            f.binding[v as usize] = None;
        }
        Ok(())
    })
}

fn make_prov(rule_idx: u32, support: &[(u32, u32)], provenance: bool) -> Option<ProvEntry> {
    if provenance {
        Some(ProvEntry {
            rule: rule_idx,
            parents: support.to_vec(),
        })
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Aggregation (terminal stage)
// ---------------------------------------------------------------------------

fn make_agg(rule: &RRule, agg: RAgg, kind: AggKind) -> Stage {
    let head = rule.head[0].clone();
    let rule_idx = rule.idx;
    let value_expr = if agg.func == AggFunc::Count {
        None
    } else {
        Some(lower_expr(&agg.expr))
    };
    let contributors = agg.contributors.clone();
    let func = agg.func;
    match kind {
        AggKind::Let { head_value_pos, .. } => stage(move |f| {
            let value = contribution_value(&value_expr, f)?;
            fill_contrib(&contributors, f);
            // Group = head tuple minus the value position, built in the
            // reusable group buffer (the interpreted path allocates here).
            f.group_buf.clear();
            for (i, t) in head.terms.iter().enumerate() {
                if i != head_value_pos {
                    let v = term_value(t, &f.binding, f.ctx.skolems)?;
                    f.group_buf.push(v);
                }
            }
            let epsilon = f.ctx.epsilon;
            let (state, _) = f.ctx.agg.contribute(
                head.pred,
                &f.group_buf,
                func,
                rule_idx,
                &f.key_buf,
                value,
                epsilon,
            );
            let total = state.total();
            let emit = state
                .last_emitted
                .is_none_or(|l| (total - l).abs() > epsilon);
            if emit {
                state.last_emitted = Some(total);
                let value_const = state.total_const();
                f.tuple_buf.clear();
                let mut gi = 0usize;
                for i in 0..head.terms.len() {
                    if i == head_value_pos {
                        f.tuple_buf.push(value_const);
                    } else {
                        f.tuple_buf.push(f.group_buf[gi]);
                        gi += 1;
                    }
                }
                let prov = make_prov(rule_idx, &f.support, f.ctx.provenance);
                f.ctx.out.push(Derived {
                    pred: head.pred,
                    tuple: f.tuple_buf.as_slice().into(),
                    prov,
                });
            }
            Ok(())
        }),
        AggKind::Cond { op, rhs } => {
            let rhs = lower_expr(&rhs);
            stage(move |f| {
                let value = contribution_value(&value_expr, f)?;
                fill_contrib(&contributors, f);
                f.tuple_buf.clear();
                for t in &head.terms {
                    let v = term_value(t, &f.binding, f.ctx.skolems)?;
                    f.tuple_buf.push(v);
                }
                let head_tuple: Tuple = f.tuple_buf.as_slice().into();
                let rhs_val = eval_cexpr(&rhs, f)?;
                let epsilon = f.ctx.epsilon;
                let (state, _) = f.ctx.agg.contribute(
                    head.pred,
                    &head_tuple,
                    func,
                    rule_idx,
                    &f.key_buf,
                    value,
                    epsilon,
                );
                let total = state.total_const();
                if compare(op, total, rhs_val) {
                    // Duplicate-skip: re-deriving an existing fact is a
                    // no-op at insert time.
                    if f.relations[head.pred as usize].find(&head_tuple).is_none() {
                        if !f.ctx.provenance {
                            let seen = f.ctx.ws.emitted.entry(head.pred).or_default();
                            if !seen.insert(head_tuple.clone()) {
                                return Ok(());
                            }
                            f.ctx.out.push(Derived {
                                pred: head.pred,
                                tuple: head_tuple,
                                prov: None,
                            });
                            return Ok(());
                        }
                        let prov = make_prov(rule_idx, &f.support, f.ctx.provenance);
                        f.ctx.out.push(Derived {
                            pred: head.pred,
                            tuple: head_tuple,
                            prov,
                        });
                    }
                }
                Ok(())
            })
        }
    }
}

/// The numeric contribution of one match (`1.0` for `mcount`).
#[inline]
fn contribution_value(expr: &Option<CExpr>, f: &mut Frame<'_, '_, '_>) -> Result<f64> {
    match expr {
        None => Ok(1.0),
        Some(e) => eval_cexpr(e, f)?
            .as_f64()
            .ok_or_else(|| DatalogError::Function("aggregate contribution is not numeric".into())),
    }
}

/// Builds the contributor key into the frame's key buffer (free at this
/// point in the chain — aggregates are terminal).
#[inline]
fn fill_contrib(contributors: &[u32], f: &mut Frame<'_, '_, '_>) {
    f.key_buf.clear();
    for v in contributors {
        f.key_buf
            .push(f.binding[*v as usize].expect("contributor vars are bound (validated)"));
    }
}

// ---------------------------------------------------------------------------
// Expression lowering
// ---------------------------------------------------------------------------

/// A lowered expression: the shapes the bundled programs' hot filters
/// actually take get direct closure-free evaluation; anything else
/// delegates to the shared interpreter ([`eval_expr`]) so semantics and
/// error strings cannot drift.
enum CExpr {
    Const(Const),
    Var(u32),
    CmpVV(CmpOp, u32, u32),
    CmpVC(CmpOp, u32, Const),
    CmpCV(CmpOp, Const, u32),
    BinVV(BinOp, u32, u32),
    BinVC(BinOp, u32, Const),
    General(RExpr),
}

fn lower_expr(e: &RExpr) -> CExpr {
    match e {
        RExpr::Const(c) => CExpr::Const(*c),
        RExpr::Var(v) => CExpr::Var(*v),
        RExpr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (RExpr::Var(x), RExpr::Var(y)) => CExpr::CmpVV(*op, *x, *y),
            (RExpr::Var(x), RExpr::Const(c)) => CExpr::CmpVC(*op, *x, *c),
            (RExpr::Const(c), RExpr::Var(y)) => CExpr::CmpCV(*op, *c, *y),
            _ => CExpr::General(e.clone()),
        },
        RExpr::Binary(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (RExpr::Var(x), RExpr::Var(y)) => CExpr::BinVV(*op, *x, *y),
            (RExpr::Var(x), RExpr::Const(c)) => CExpr::BinVC(*op, *x, *c),
            _ => CExpr::General(e.clone()),
        },
        RExpr::Call { .. } => CExpr::General(e.clone()),
    }
}

/// Reads a bound variable, failing with the interpreter's message.
#[inline]
fn var_value(v: u32, binding: &[Option<Const>]) -> Result<Const> {
    binding[v as usize].ok_or_else(|| DatalogError::Validation(format!("unbound variable v{v}")))
}

fn eval_cexpr(e: &CExpr, f: &mut Frame<'_, '_, '_>) -> Result<Const> {
    match e {
        CExpr::Const(c) => Ok(*c),
        CExpr::Var(v) => var_value(*v, &f.binding),
        CExpr::CmpVV(op, a, b) => {
            let av = var_value(*a, &f.binding)?;
            let bv = var_value(*b, &f.binding)?;
            Ok(Const::Bool(compare(*op, av, bv)))
        }
        CExpr::CmpVC(op, a, c) => {
            let av = var_value(*a, &f.binding)?;
            Ok(Const::Bool(compare(*op, av, *c)))
        }
        CExpr::CmpCV(op, c, b) => {
            let bv = var_value(*b, &f.binding)?;
            Ok(Const::Bool(compare(*op, *c, bv)))
        }
        CExpr::BinVV(op, a, b) => {
            let av = var_value(*a, &f.binding)?;
            let bv = var_value(*b, &f.binding)?;
            arith(*op, av, bv)
        }
        CExpr::BinVC(op, a, c) => {
            let av = var_value(*a, &f.binding)?;
            arith(*op, av, *c)
        }
        CExpr::General(e) => eval_expr(e, &f.binding, f.ctx),
    }
}

/// Evaluates a ground term — the compiled twin of the interpreted
/// executor's `term_value`, same error string included.
fn term_value(t: &RTerm, binding: &[Option<Const>], skolems: &mut SkolemTable) -> Result<Const> {
    match t {
        RTerm::Const(c) => Ok(*c),
        RTerm::Var(v) => binding[*v as usize]
            .ok_or_else(|| DatalogError::Validation(format!("unbound variable v{v} at emission"))),
        RTerm::Skolem { functor, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(term_value(a, binding, skolems)?);
            }
            Ok(Const::Null(skolems.apply(*functor, &vals)))
        }
    }
}
