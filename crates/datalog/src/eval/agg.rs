//! Monotonic aggregation state.
//!
//! Vadalog's `m*` aggregates are *stateful fact-level functions*: every body
//! match contributes to a running value; monotonicity guarantees the final
//! value is the extremum of the emitted series (Section 4 of the paper).
//!
//! State is keyed by `(head predicate, group tuple)` and **shared across
//! rules** deriving the same head — the property Algorithm 8 of the paper
//! relies on ("the two monotonic summations of Rules (2) and (3) contribute
//! to the same total"). Contributor keys are namespaced by rule id so that
//! syntactically unrelated contributors can never collide.
//!
//! Per contributor key the store keeps the extremal contribution seen so
//! far; the group value is the fold of per-contributor extrema:
//!
//! | func     | per-contributor | group value            | direction |
//! |----------|-----------------|------------------------|-----------|
//! | `msum`   | max             | Σ of maxima            | ↑         |
//! | `mprod`  | max             | Π of maxima            | ↑ for ≥1  |
//! | `mmax`   | max             | max of maxima          | ↑         |
//! | `mmin`   | min             | min of minima          | ↓         |
//! | `mcount` | presence        | number of contributors | ↑         |
//!
//! The per-contributor *max* rule is what makes recursive summations (e.g.
//! accumulated ownership, Algorithm 6) converge: a contributor's value can
//! only be refined upward as the fixpoint proceeds, and the total is always
//! the sum of the best-known contributions — never a double count.

use crate::ast::AggFunc;
use crate::fx::FxHashMap;
use crate::value::{Const, Tuple};

/// Running state of one aggregation group.
///
/// Contributor maxima are nested per rule id so the hot path can look a
/// contributor up by `&[Const]` (via `Arc<[Const]>: Borrow<[Const]>`)
/// without allocating a key tuple; a `Tuple` is only materialised the
/// first time a contributor is seen.
#[derive(Debug, Clone)]
pub(crate) struct AggState {
    func: AggFunc,
    contributions: FxHashMap<u32, FxHashMap<Tuple, f64>>,
    total: f64,
    /// Last value emitted as a head fact (for `V = m*(...)` rules).
    pub last_emitted: Option<f64>,
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        let total = match func {
            AggFunc::Prod => 1.0,
            AggFunc::Max => f64::NEG_INFINITY,
            AggFunc::Min => f64::INFINITY,
            _ => 0.0,
        };
        AggState {
            func,
            contributions: FxHashMap::default(),
            total,
            last_emitted: None,
        }
    }

    /// Current group value.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Current group value as a constant (`mcount` yields an integer).
    pub fn total_const(&self) -> Const {
        match self.func {
            AggFunc::Count => Const::Int(self.total as i64),
            _ => Const::float(self.total),
        }
    }

    /// Applies a contribution; returns `true` if the group value changed by
    /// more than `epsilon`.
    ///
    /// The hit path (contributor already known) is a single slice-keyed
    /// lookup; only a first-seen contributor allocates its key tuple.
    fn contribute(&mut self, rule: u32, contributor: &[Const], value: f64, epsilon: f64) -> bool {
        let old_total = self.total;
        let per_rule = self.contributions.entry(rule).or_default();
        match self.func {
            AggFunc::Sum => {
                if let Some(slot) = per_rule.get_mut(contributor) {
                    if value > *slot {
                        self.total += value - *slot;
                        *slot = value;
                    }
                } else if value > 0.0 {
                    per_rule.insert(contributor.into(), value);
                    self.total += value;
                } else {
                    per_rule.insert(contributor.into(), 0.0);
                }
            }
            AggFunc::Prod => {
                let improved = if let Some(slot) = per_rule.get_mut(contributor) {
                    if value > *slot {
                        *slot = value;
                        true
                    } else {
                        false
                    }
                } else if value > f64::NEG_INFINITY {
                    per_rule.insert(contributor.into(), value);
                    true
                } else {
                    per_rule.insert(contributor.into(), f64::NEG_INFINITY);
                    false
                };
                if improved {
                    // Recompute: safe against zeros and float drift.
                    self.total = self
                        .contributions
                        .values()
                        .flat_map(|m| m.values())
                        .product();
                }
            }
            AggFunc::Max => {
                if let Some(slot) = per_rule.get_mut(contributor) {
                    if value > *slot {
                        *slot = value;
                    }
                } else if value > f64::NEG_INFINITY {
                    per_rule.insert(contributor.into(), value);
                } else {
                    per_rule.insert(contributor.into(), f64::NEG_INFINITY);
                }
                if value > self.total {
                    self.total = value;
                }
            }
            AggFunc::Min => {
                if let Some(slot) = per_rule.get_mut(contributor) {
                    if value < *slot {
                        *slot = value;
                    }
                } else if value < f64::INFINITY {
                    per_rule.insert(contributor.into(), value);
                } else {
                    per_rule.insert(contributor.into(), f64::INFINITY);
                }
                if value < self.total {
                    self.total = value;
                }
            }
            AggFunc::Count => {
                if !per_rule.contains_key(contributor) {
                    per_rule.insert(contributor.into(), 1.0);
                    self.total += 1.0;
                }
            }
        }
        (self.total - old_total).abs() > epsilon
    }
}

/// All aggregation groups of one engine run.
///
/// Groups are nested per head predicate so the group tuple can be looked
/// up by `&[Const]` without allocating — the fixpoint inner loop calls
/// `contribute` once per joined row, and in steady state every lookup
/// hits an existing group.
#[derive(Debug, Default)]
pub(crate) struct AggStore {
    groups: FxHashMap<u32, FxHashMap<Tuple, AggState>>,
}

impl AggStore {
    /// Applies a contribution to `(pred, group)`; returns a mutable
    /// reference to the state plus whether the value changed.
    #[allow(clippy::too_many_arguments)]
    pub fn contribute(
        &mut self,
        pred: u32,
        group: &[Const],
        func: AggFunc,
        rule: u32,
        contributor: &[Const],
        value: f64,
        epsilon: f64,
    ) -> (&mut AggState, bool) {
        let per_pred = self.groups.entry(pred).or_default();
        if !per_pred.contains_key(group) {
            per_pred.insert(group.into(), AggState::new(func));
        }
        let state = per_pred.get_mut(group).expect("group state just ensured");
        debug_assert_eq!(
            state.func, func,
            "aggregate function mismatch for shared group state"
        );
        let changed = state.contribute(rule, contributor, value, epsilon);
        (state, changed)
    }

    /// Number of active groups.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.groups.values().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Const::Int(i)).collect()
    }

    #[test]
    fn msum_sums_distinct_contributors() {
        let mut store = AggStore::default();
        let (s, c1) = store.contribute(0, &t(&[1]), AggFunc::Sum, 0, &t(&[10]), 0.3, 1e-12);
        assert!(c1);
        assert_eq!(s.total(), 0.3);
        let (s, c2) = store.contribute(0, &t(&[1]), AggFunc::Sum, 0, &t(&[11]), 0.4, 1e-12);
        assert!(c2);
        assert!((s.total() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn msum_takes_per_contributor_max_not_double_count() {
        let mut store = AggStore::default();
        store.contribute(0, &t(&[1]), AggFunc::Sum, 0, &t(&[10]), 0.3, 1e-12);
        // Same contributor re-derived with a *larger* partial value
        // (recursive refinement): total moves to the new value, not the sum.
        let (s, changed) = store.contribute(0, &t(&[1]), AggFunc::Sum, 0, &t(&[10]), 0.5, 1e-12);
        assert!(changed);
        assert!((s.total() - 0.5).abs() < 1e-12);
        // Smaller re-derivation is ignored (monotone).
        let (s, changed) = store.contribute(0, &t(&[1]), AggFunc::Sum, 0, &t(&[10]), 0.2, 1e-12);
        assert!(!changed);
        assert!((s.total() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rule_namespacing_shares_the_total() {
        // Two rules contribute to the same (pred, group) total — the
        // Algorithm 8 semantics.
        let mut store = AggStore::default();
        store.contribute(0, &t(&[1]), AggFunc::Sum, 0, &t(&[7]), 0.3, 1e-12);
        let (s, _) = store.contribute(0, &t(&[1]), AggFunc::Sum, 1, &t(&[7]), 0.4, 1e-12);
        // Same contributor tuple under different rules: both count.
        assert!((s.total() - 0.7).abs() < 1e-12);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn groups_are_independent() {
        let mut store = AggStore::default();
        store.contribute(0, &t(&[1]), AggFunc::Sum, 0, &t(&[7]), 0.3, 1e-12);
        let (s, _) = store.contribute(0, &t(&[2]), AggFunc::Sum, 0, &t(&[7]), 0.4, 1e-12);
        assert!((s.total() - 0.4).abs() < 1e-12);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn mcount_counts_distinct() {
        let mut store = AggStore::default();
        store.contribute(0, &t(&[]), AggFunc::Count, 0, &t(&[1]), 1.0, 1e-12);
        store.contribute(0, &t(&[]), AggFunc::Count, 0, &t(&[1]), 1.0, 1e-12);
        let (s, _) = store.contribute(0, &t(&[]), AggFunc::Count, 0, &t(&[2]), 1.0, 1e-12);
        assert_eq!(s.total_const(), Const::Int(2));
    }

    #[test]
    fn mmax_and_mmin_track_extrema() {
        let mut store = AggStore::default();
        store.contribute(0, &t(&[]), AggFunc::Max, 0, &t(&[1]), 3.0, 1e-12);
        let (s, _) = store.contribute(0, &t(&[]), AggFunc::Max, 0, &t(&[2]), 1.0, 1e-12);
        assert_eq!(s.total(), 3.0);
        store.contribute(1, &t(&[]), AggFunc::Min, 0, &t(&[1]), 3.0, 1e-12);
        let (s, _) = store.contribute(1, &t(&[]), AggFunc::Min, 0, &t(&[2]), 1.0, 1e-12);
        assert_eq!(s.total(), 1.0);
    }

    #[test]
    fn mprod_multiplies_contributor_maxima() {
        let mut store = AggStore::default();
        store.contribute(0, &t(&[]), AggFunc::Prod, 0, &t(&[1]), 2.0, 1e-12);
        let (s, _) = store.contribute(0, &t(&[]), AggFunc::Prod, 0, &t(&[2]), 3.0, 1e-12);
        assert!((s.total() - 6.0).abs() < 1e-12);
        let (s, _) = store.contribute(0, &t(&[]), AggFunc::Prod, 0, &t(&[1]), 5.0, 1e-12);
        assert!((s.total() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_suppresses_jitter() {
        let mut store = AggStore::default();
        let (s, _) = store.contribute(0, &t(&[]), AggFunc::Sum, 0, &t(&[1]), 1.0, 1e-6);
        s.last_emitted = Some(1.0);
        let (_, changed) =
            store.contribute(0, &t(&[]), AggFunc::Sum, 0, &t(&[1]), 1.0 + 1e-9, 1e-6);
        assert!(!changed);
    }
}
