//! Monotonic aggregation state.
//!
//! Vadalog's `m*` aggregates are *stateful fact-level functions*: every body
//! match contributes to a running value; monotonicity guarantees the final
//! value is the extremum of the emitted series (Section 4 of the paper).
//!
//! State is keyed by `(head predicate, group tuple)` and **shared across
//! rules** deriving the same head — the property Algorithm 8 of the paper
//! relies on ("the two monotonic summations of Rules (2) and (3) contribute
//! to the same total"). Contributor keys are namespaced by rule id so that
//! syntactically unrelated contributors can never collide.
//!
//! Per contributor key the store keeps the extremal contribution seen so
//! far; the group value is the fold of per-contributor extrema:
//!
//! | func     | per-contributor | group value            | direction |
//! |----------|-----------------|------------------------|-----------|
//! | `msum`   | max             | Σ of maxima            | ↑         |
//! | `mprod`  | max             | Π of maxima            | ↑ for ≥1  |
//! | `mmax`   | max             | max of maxima          | ↑         |
//! | `mmin`   | min             | min of minima          | ↓         |
//! | `mcount` | presence        | number of contributors | ↑         |
//!
//! The per-contributor *max* rule is what makes recursive summations (e.g.
//! accumulated ownership, Algorithm 6) converge: a contributor's value can
//! only be refined upward as the fixpoint proceeds, and the total is always
//! the sum of the best-known contributions — never a double count.

use crate::ast::AggFunc;
use crate::fx::FxHashMap;
use crate::value::{Const, Tuple};

/// Contributor key: (rule id, contributor-variable grounding).
type ContribKey = (u32, Tuple);

/// Running state of one aggregation group.
#[derive(Debug, Clone)]
pub(crate) struct AggState {
    func: AggFunc,
    contributions: FxHashMap<ContribKey, f64>,
    total: f64,
    /// Last value emitted as a head fact (for `V = m*(...)` rules).
    pub last_emitted: Option<f64>,
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        let total = match func {
            AggFunc::Prod => 1.0,
            AggFunc::Max => f64::NEG_INFINITY,
            AggFunc::Min => f64::INFINITY,
            _ => 0.0,
        };
        AggState {
            func,
            contributions: FxHashMap::default(),
            total,
            last_emitted: None,
        }
    }

    /// Current group value.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Current group value as a constant (`mcount` yields an integer).
    pub fn total_const(&self) -> Const {
        match self.func {
            AggFunc::Count => Const::Int(self.total as i64),
            _ => Const::float(self.total),
        }
    }

    /// Applies a contribution; returns `true` if the group value changed by
    /// more than `epsilon`.
    fn contribute(&mut self, key: ContribKey, value: f64, epsilon: f64) -> bool {
        let old_total = self.total;
        match self.func {
            AggFunc::Sum => {
                let slot = self.contributions.entry(key).or_insert(0.0);
                if value > *slot {
                    self.total += value - *slot;
                    *slot = value;
                }
            }
            AggFunc::Prod => {
                let slot = self.contributions.entry(key).or_insert(f64::NEG_INFINITY);
                if value > *slot {
                    *slot = value;
                    // Recompute: safe against zeros and float drift.
                    self.total = self.contributions.values().product();
                }
            }
            AggFunc::Max => {
                let slot = self.contributions.entry(key).or_insert(f64::NEG_INFINITY);
                if value > *slot {
                    *slot = value;
                }
                if value > self.total {
                    self.total = value;
                }
            }
            AggFunc::Min => {
                let slot = self.contributions.entry(key).or_insert(f64::INFINITY);
                if value < *slot {
                    *slot = value;
                }
                if value < self.total {
                    self.total = value;
                }
            }
            AggFunc::Count => {
                if self.contributions.insert(key, 1.0).is_none() {
                    self.total += 1.0;
                }
            }
        }
        (self.total - old_total).abs() > epsilon
    }
}

/// All aggregation groups of one engine run.
#[derive(Debug, Default)]
pub(crate) struct AggStore {
    groups: FxHashMap<(u32, Tuple), AggState>,
}

impl AggStore {
    /// Applies a contribution to `(pred, group)`; returns a mutable
    /// reference to the state plus whether the value changed.
    #[allow(clippy::too_many_arguments)]
    pub fn contribute(
        &mut self,
        pred: u32,
        group: Tuple,
        func: AggFunc,
        rule: u32,
        contributor: Tuple,
        value: f64,
        epsilon: f64,
    ) -> (&mut AggState, bool) {
        let state = self
            .groups
            .entry((pred, group))
            .or_insert_with(|| AggState::new(func));
        debug_assert_eq!(
            state.func, func,
            "aggregate function mismatch for shared group state"
        );
        let changed = state.contribute((rule, contributor), value, epsilon);
        (state, changed)
    }

    /// Number of active groups.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&i| Const::Int(i)).collect()
    }

    #[test]
    fn msum_sums_distinct_contributors() {
        let mut store = AggStore::default();
        let (s, c1) = store.contribute(0, t(&[1]), AggFunc::Sum, 0, t(&[10]), 0.3, 1e-12);
        assert!(c1);
        assert_eq!(s.total(), 0.3);
        let (s, c2) = store.contribute(0, t(&[1]), AggFunc::Sum, 0, t(&[11]), 0.4, 1e-12);
        assert!(c2);
        assert!((s.total() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn msum_takes_per_contributor_max_not_double_count() {
        let mut store = AggStore::default();
        store.contribute(0, t(&[1]), AggFunc::Sum, 0, t(&[10]), 0.3, 1e-12);
        // Same contributor re-derived with a *larger* partial value
        // (recursive refinement): total moves to the new value, not the sum.
        let (s, changed) = store.contribute(0, t(&[1]), AggFunc::Sum, 0, t(&[10]), 0.5, 1e-12);
        assert!(changed);
        assert!((s.total() - 0.5).abs() < 1e-12);
        // Smaller re-derivation is ignored (monotone).
        let (s, changed) = store.contribute(0, t(&[1]), AggFunc::Sum, 0, t(&[10]), 0.2, 1e-12);
        assert!(!changed);
        assert!((s.total() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rule_namespacing_shares_the_total() {
        // Two rules contribute to the same (pred, group) total — the
        // Algorithm 8 semantics.
        let mut store = AggStore::default();
        store.contribute(0, t(&[1]), AggFunc::Sum, 0, t(&[7]), 0.3, 1e-12);
        let (s, _) = store.contribute(0, t(&[1]), AggFunc::Sum, 1, t(&[7]), 0.4, 1e-12);
        // Same contributor tuple under different rules: both count.
        assert!((s.total() - 0.7).abs() < 1e-12);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn groups_are_independent() {
        let mut store = AggStore::default();
        store.contribute(0, t(&[1]), AggFunc::Sum, 0, t(&[7]), 0.3, 1e-12);
        let (s, _) = store.contribute(0, t(&[2]), AggFunc::Sum, 0, t(&[7]), 0.4, 1e-12);
        assert!((s.total() - 0.4).abs() < 1e-12);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn mcount_counts_distinct() {
        let mut store = AggStore::default();
        store.contribute(0, t(&[]), AggFunc::Count, 0, t(&[1]), 1.0, 1e-12);
        store.contribute(0, t(&[]), AggFunc::Count, 0, t(&[1]), 1.0, 1e-12);
        let (s, _) = store.contribute(0, t(&[]), AggFunc::Count, 0, t(&[2]), 1.0, 1e-12);
        assert_eq!(s.total_const(), Const::Int(2));
    }

    #[test]
    fn mmax_and_mmin_track_extrema() {
        let mut store = AggStore::default();
        store.contribute(0, t(&[]), AggFunc::Max, 0, t(&[1]), 3.0, 1e-12);
        let (s, _) = store.contribute(0, t(&[]), AggFunc::Max, 0, t(&[2]), 1.0, 1e-12);
        assert_eq!(s.total(), 3.0);
        store.contribute(1, t(&[]), AggFunc::Min, 0, t(&[1]), 3.0, 1e-12);
        let (s, _) = store.contribute(1, t(&[]), AggFunc::Min, 0, t(&[2]), 1.0, 1e-12);
        assert_eq!(s.total(), 1.0);
    }

    #[test]
    fn mprod_multiplies_contributor_maxima() {
        let mut store = AggStore::default();
        store.contribute(0, t(&[]), AggFunc::Prod, 0, t(&[1]), 2.0, 1e-12);
        let (s, _) = store.contribute(0, t(&[]), AggFunc::Prod, 0, t(&[2]), 3.0, 1e-12);
        assert!((s.total() - 6.0).abs() < 1e-12);
        let (s, _) = store.contribute(0, t(&[]), AggFunc::Prod, 0, t(&[1]), 5.0, 1e-12);
        assert!((s.total() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_suppresses_jitter() {
        let mut store = AggStore::default();
        let (s, _) = store.contribute(0, t(&[]), AggFunc::Sum, 0, t(&[1]), 1.0, 1e-6);
        s.last_emitted = Some(1.0);
        let (_, changed) = store.contribute(0, t(&[]), AggFunc::Sum, 0, t(&[1]), 1.0 + 1e-9, 1e-6);
        assert!(!changed);
    }
}
