//! The reasoning engine: stratified semi-naive fixpoint with chase-style
//! existentials and monotonic aggregation.
//!
//! An [`Engine`] is compiled once from a [`Program`] (validation +
//! stratification) and can then be [run](Engine::run) against any
//! [`Database`]. Evaluation proceeds stratum by stratum; within a stratum,
//! round 0 evaluates every rule naively and subsequent rounds evaluate each
//! rule once per delta position (positive body atom whose predicate is
//! derived in the stratum), restricted to the facts added in the previous
//! round. Set semantics (tuple dedup) plays the role of Vadalog's
//! isomorphism check; the fact and round budgets in [`EngineOptions`] are
//! the defense-in-depth termination guards discussed in Section 4.4 of the
//! paper.
//!
//! At each stratum entry the engine samples relation cardinalities and
//! compiles every rule into cost-based execution plans ([`plan`]): joins
//! are greedily reordered by estimated selectivity, filters and negations
//! are pushed to the earliest point where their variables are bound, and
//! semi-naive rounds drive from the delta atom. Only the hash indexes the
//! chosen plans actually probe are registered. Each round's derivations
//! are inserted in canonical `(pred, tuple, prov)` order — the derived
//! *set* of a round does not depend on join order, so canonical insertion
//! makes row ids and provenance byte-identical whether planning is on
//! ([`EngineOptions::plan`]) or off.
//!
//! Rounds can evaluate on [`par`] worker threads ([`EngineOptions::threads`]):
//! rules whose bodies touch no shared evaluation state (no aggregates, no
//! Skolem invention, no external calls) are split into chunks of their
//! driving literal's candidate rows, and chunk outputs are merged back in
//! sequential order, so the derived facts — values, insertion order, row
//! ids, provenance — are identical for every thread count.

pub(crate) mod agg;
pub(crate) mod batch;
pub(crate) mod compile;
pub(crate) mod exec;
pub(crate) mod kernels;
pub(crate) mod plan;
pub(crate) mod resolve;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::analysis::{adorn, analyze_with, AnalysisConfig};
use crate::ast::{Directive, Lit, PostOp, Program, Query};
use crate::builtins::FunctionRegistry;
use crate::db::{Database, Relation, SkolemTable, SymbolTable};
use crate::error::{DatalogError, Result};
use crate::fx::{FxHashMap, FxHashSet};
use crate::value::{Const, Tuple};

use agg::AggStore;
use compile::{compile_stratum, eval_compiled_chunk, CompiledRule, CompiledRulePlans};
use exec::{driver_rows, eval_rule_chunk, Derived, RunCtx, Workspace};
use plan::{plan_stratum, RulePlan, RulePlans, Step, StratumStats};
use resolve::{resolve_rules, CompiledProgram, RLiteral, RRule};

/// Process-wide default for [`EngineOptions::compile`]. Engines are
/// constructed deep inside the core/serve layers, so the CLI escape hatch
/// (`--no-compile`) flips this global instead of threading a flag through
/// every constructor — the same idiom as [`par::set_threads`].
static COMPILE_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for compiled plan execution. Engines
/// built afterwards (via [`EngineOptions::default`]) inherit the value;
/// explicit `options.compile` assignments still win.
pub fn set_compile_default(on: bool) {
    COMPILE_DEFAULT.store(on, Ordering::Relaxed);
}

/// The current process-wide compiled-execution default.
pub fn compile_default() -> bool {
    COMPILE_DEFAULT.load(Ordering::Relaxed)
}

/// Process-wide default for [`EngineOptions::shards`], the same idiom as
/// [`set_compile_default`]: the CLI's `--shards` flag flips this global so
/// every engine constructed deep inside the core/serve layers inherits the
/// shard count without threading a parameter through each constructor.
static SHARDS_DEFAULT: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default shard count (0 and 1 both mean
/// unsharded). Engines built afterwards via [`EngineOptions::default`]
/// inherit it; explicit `options.shards` assignments still win.
pub fn set_shards_default(n: usize) {
    SHARDS_DEFAULT.store(n.max(1), Ordering::Relaxed);
}

/// The current process-wide shard-count default.
pub fn shards_default() -> usize {
    SHARDS_DEFAULT.load(Ordering::Relaxed).max(1)
}

/// Tunable evaluation options.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Hard cap on the total number of stored facts.
    pub max_facts: usize,
    /// Hard cap on fixpoint rounds per stratum.
    pub max_rounds: usize,
    /// Minimum aggregate-value change that counts as "new" — guarantees
    /// termination of convergent recursive aggregations (e.g. accumulated
    /// ownership over cyclic shareholding).
    pub epsilon: f64,
    /// Record provenance for derived facts (enables explanations).
    pub provenance: bool,
    /// Apply `@post` directives and auto-compaction of aggregate predicates
    /// after the fixpoint.
    pub apply_post: bool,
    /// Static-analysis configuration applied at engine construction.
    /// With the default config, programs carrying error-level diagnostics
    /// are rejected as [`DatalogError::Analysis`];
    /// [`AnalysisConfig::permissive`] restores the pre-analyzer behavior
    /// (problems surface at evaluation time, if at all).
    pub analysis: AnalysisConfig,
    /// Worker threads for rule evaluation within a fixpoint round. `0`
    /// resolves via [`par::threads`] (the `VADALINK_THREADS` environment
    /// variable, then available parallelism); `1` forces the sequential
    /// path. The result is byte-identical for every value: parallel rounds
    /// splice their per-chunk outputs back in sequential order.
    pub threads: usize,
    /// Cost-based join planning: reorder rule bodies by estimated
    /// selectivity and drive semi-naive rounds from the delta atom. The
    /// result — row ids, provenance, everything — is byte-identical with
    /// planning on or off; this switch exists for benchmarking and
    /// differential testing.
    pub plan: bool,
    /// Compiled plan execution: lower each planned rule into a chain of
    /// specialized closures per stratum ([`compile`]) and freeze stable
    /// relations to the columnar/CSR layout, so the fixpoint inner loop
    /// skips per-tuple step interpretation. Byte-identical to interpreted
    /// execution — the switch exists for benchmarking, differential
    /// testing and debugging (`--no-compile`). Defaults to the
    /// process-wide value set by [`set_compile_default`] (true).
    pub compile: bool,
    /// Batch-at-a-time execution tier on top of compiled plans: naive
    /// plans whose inputs are all frozen [`Columnar`](crate::db) images
    /// run scan/filter/probe/compare over column slices in fixed-width
    /// batches with selection vectors ([`batch`](compile) lowering)
    /// instead of materializing tuples, falling back to the tuple
    /// closures for delta rounds, provenance-carrying runs, aggregates
    /// and anything else outside the batch subset. Byte-identical to
    /// tuple execution — the switch exists for differential testing and
    /// benchmarking. Ignored when `compile` is off.
    pub batch: bool,
    /// Predicates the cost planner should assume are small before any
    /// statistics exist — the demand (`magic_*`) relations of a
    /// goal-directed rewrite, whose extent is bounded by the query's
    /// bindings rather than the database. Set by [`Engine::query`];
    /// harmless (and useless) for ordinary programs.
    pub demand_hints: Vec<String>,
    /// Logical EDB shards for round partitioning. With `shards > 1`, a
    /// chunkable rule's candidate rows are bucketed by hash of the driving
    /// row's first column (its node) instead of split contiguously, so
    /// each shard's fixpoint work touches only its own partition of
    /// `own`/`person`/`company`. Every shard's derivations are merged back
    /// through the canonical per-round collapse and sort — the delta
    /// exchange at round boundaries — which makes the result byte-identical
    /// to `shards = 1` for every shard count (and every thread count).
    /// Defaults to the process-wide value set by [`set_shards_default`] (1).
    pub shards: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            max_facts: 50_000_000,
            max_rounds: 100_000,
            epsilon: 1e-9,
            provenance: false,
            apply_post: true,
            analysis: AnalysisConfig::default(),
            threads: 0,
            plan: true,
            compile: compile_default(),
            batch: true,
            demand_hints: Vec::new(),
            shards: shards_default(),
        }
    }
}

/// Statistics of one evaluation.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Total semi-naive rounds across strata.
    pub rounds: usize,
    /// Number of new facts derived (after dedup).
    pub derived: usize,
    /// Number of strata evaluated.
    pub strata: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
}

/// A compiled, reusable reasoning engine.
#[derive(Debug)]
pub struct Engine {
    program: Program,
    compiled: CompiledProgram,
    registry: FunctionRegistry,
    options: EngineOptions,
}

impl Engine {
    /// Compiles a program with the standard function library and default
    /// options.
    pub fn new(program: &Program) -> Result<Self> {
        Self::with(
            program,
            FunctionRegistry::default(),
            EngineOptions::default(),
        )
    }

    /// Compiles a program with a custom registry and options.
    pub fn with(
        program: &Program,
        registry: FunctionRegistry,
        options: EngineOptions,
    ) -> Result<Self> {
        if options.analysis.enforce {
            let analysis = analyze_with(program, &options.analysis);
            if analysis.has_errors() {
                return Err(DatalogError::Analysis(analysis.into_errors()));
            }
        }
        let compiled = resolve::compile(program)?;
        Ok(Engine {
            program: program.clone(),
            compiled,
            registry,
            options,
        })
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Stratum index of a predicate (0 = lowest), if it occurs in the
    /// program. Useful for inspecting how the dependency condensation
    /// layered the rules: base relations sit at 0, and every
    /// cross-component edge (positive or negated) adds a layer.
    pub fn stratum_of(&self, pred: &str) -> Option<usize> {
        self.compiled.pred_stratum.get(pred).copied()
    }

    /// Evaluation options (mutable, to tweak between runs).
    pub fn options_mut(&mut self) -> &mut EngineOptions {
        &mut self.options
    }

    /// Evaluation options (read-only).
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The name-level compilation output (strata, auto-post list).
    pub(crate) fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The function registry the engine evaluates external calls with.
    pub(crate) fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// Registers an external function (callable as `#name`).
    pub fn register_function(
        &mut self,
        name: &str,
        f: impl Fn(
                &mut crate::builtins::FnCtx<'_>,
                &[crate::value::Const],
            ) -> std::result::Result<crate::value::Const, String>
            + Send
            + Sync
            + 'static,
    ) {
        self.registry.register(name, f);
    }

    /// Renders the execution plans the engine would choose for `db`:
    /// per stratum and rule, the literal order, probe keys and estimated
    /// cardinalities. Estimates reflect the database as given (pre-fixpoint
    /// sizes); in-stratum derived predicates start at their current size.
    /// Honors [`EngineOptions::plan`], so the report with planning disabled
    /// shows the identity plans.
    pub fn plan_report(&self, db: &Database) -> Result<String> {
        use std::fmt::Write as _;
        // Resolution interns predicates and constants, so work on a clone.
        let mut db = db.clone();
        let rules = resolve_rules(&self.program, &mut db)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "execution: {} plans",
            if self.options.compile {
                "compiled (closure-chain)"
            } else {
                "interpreted"
            }
        );
        for (si, stratum) in self.compiled.strata.iter().enumerate() {
            let _ = writeln!(out, "stratum {si}:");
            let stats = StratumStats::collect(&rules, stratum, &db.relations);
            let plans = plan_stratum(&rules, stratum, &stats, self.options.plan);
            // In-stratum predicates are never frozen mid-fixpoint, so a
            // rule reading one can never take the batched path at run
            // time, however its plan lowers.
            let stratum_preds: std::collections::HashSet<u32> = stratum
                .iter()
                .flat_map(|&ri| rules[ri].head.iter().map(|h| h.pred))
                .collect();
            for &ri in stratum {
                let rp = plans[ri].as_ref().expect("stratum rules are planned");
                let vars = &self.program.rules[ri].vars;
                let reads_stratum = rules[ri].body.iter().any(|l| match l {
                    RLiteral::Atom { atom, .. } | RLiteral::Negated(atom) => {
                        stratum_preds.contains(&atom.pred)
                    }
                    _ => false,
                });
                // The executor each round would use under the current
                // options: batched rules still fall back to tuple chains
                // for delta rounds (the delta side is never frozen).
                let executor = if !self.options.compile {
                    "interpreted"
                } else if !(self.options.batch
                    && !self.options.provenance
                    && batch::batch_eligible(&rules[ri], &rp.naive))
                {
                    "tuple"
                } else if reads_stratum {
                    "tuple (batch-eligible, but recursive inputs stay unfrozen)"
                } else {
                    "batched (tuple for delta rounds)"
                };
                out.push_str(&plan::render_rule_report(
                    ri, &rules[ri], rp, vars, &db, executor,
                ));
            }
        }
        Ok(out)
    }

    /// Runs the program to fixpoint over `db`.
    pub fn run(&self, db: &mut Database) -> Result<RunStats> {
        run_compiled(
            &self.program,
            &self.compiled,
            &self.registry,
            &self.options,
            db,
        )
    }

    /// Evaluates a single goal, e.g. `control("c1", X)?`, goal-directed.
    ///
    /// The goal is parsed ([`Query::parse`]), the program is rewritten by
    /// the demand (magic-sets) transformation
    /// ([`crate::analysis::adorn::rewrite`]) so only facts relevant to
    /// the goal's bound constants are derived, and the rewritten program
    /// is planned and evaluated on a scratch copy of `db` — the caller's
    /// database is never mutated. When the goal cannot be
    /// demand-restricted (all-free pattern, extensional predicate,
    /// negation in the cone, or re-analysis rejected the rewrite), the
    /// engine transparently falls back to full bottom-up evaluation; the
    /// answer is identical either way, only the work differs
    /// ([`QueryAnswer::demanded`] tells which path ran).
    pub fn query(&self, db: &Database, goal: &str) -> Result<QueryAnswer> {
        let q = Query::parse(goal)?;
        let rw = adorn::rewrite(&self.program, &q)?;
        let mut demanded = rw.demanded;
        let mut fallback_reason = rw.fallback_reason.clone();
        let mut result_pred = rw.result_pred.clone();
        let mut work;
        let stats = if demanded {
            match resolve::compile(&rw.program) {
                Ok(compiled) => {
                    let mut options = self.options.clone();
                    options.demand_hints = rw.magic_preds.clone();
                    // The rewrite already re-ran the analyzer.
                    options.analysis = AnalysisConfig::permissive();
                    // The scratch copy carries rows only for relations the
                    // rewritten program can observe — the goal's cone plus
                    // the answer relation. Attribute tables outside the
                    // cone stay behind, which for point lookups is most of
                    // the copying work.
                    let mut keep = mentioned_preds(&rw.program);
                    keep.insert(result_pred.clone());
                    work = db.scratch_for(&keep);
                    run_compiled(&rw.program, &compiled, &self.registry, &options, &mut work)?
                }
                Err(e) => {
                    demanded = false;
                    fallback_reason = Some(format!("rewritten program failed to compile: {e}"));
                    result_pred = q.pred.clone();
                    work = db.clone();
                    self.run(&mut work)?
                }
            }
        } else {
            work = db.clone();
            self.run(&mut work)?
        };
        let rows = goal_matches_in(&work, &result_pred, &q);
        Ok(QueryAnswer {
            goal: q,
            rows,
            demanded,
            fallback_reason,
            report: rw.report,
            stats,
        })
    }
}

/// The result of a goal-directed [`Engine::query`].
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The parsed goal.
    pub goal: Query,
    /// Matching facts, canonically rendered as `pred(c1, ..., cn)` with
    /// labelled nulls in structural Skolem form, sorted. This is the
    /// byte-equivalence contract: identical to rendering the goal
    /// predicate's matching facts after full bottom-up evaluation.
    pub rows: Vec<String>,
    /// True when the demand rewrite restricted evaluation to the goal.
    pub demanded: bool,
    /// Why evaluation fell back to the full program, when it did.
    pub fallback_reason: Option<String>,
    /// The adornment dataflow summary of the rewrite.
    pub report: adorn::BindingReport,
    /// Statistics of the run that produced the answer.
    pub stats: RunStats,
}

/// Canonically renders the facts of `goal`'s predicate that match its
/// bound constants, sorted — the extraction/comparison lens of
/// [`Engine::query`] and the query differential tests.
pub fn goal_matches(db: &Database, goal: &Query) -> Vec<String> {
    goal_matches_in(db, &goal.pred, goal)
}

/// As [`goal_matches`], reading relation `pred` but rendering rows under
/// the goal's predicate name (the demand rewrite stores answers in the
/// goal's adorned variant).
fn goal_matches_in(db: &Database, pred: &str, goal: &Query) -> Vec<String> {
    let mut pattern: Vec<Option<Const>> = Vec::with_capacity(goal.args.len());
    for a in &goal.args {
        pattern.push(match a {
            None => None,
            Some(Lit::Str(s)) => match db.find_sym(s) {
                Some(c) => Some(c),
                // The constant was never interned: nothing can match.
                None => return Vec::new(),
            },
            Some(Lit::Int(i)) => Some(Const::Int(*i)),
            Some(Lit::Float(f)) => Some(Const::float(*f)),
            Some(Lit::Bool(b)) => Some(Const::Bool(*b)),
        });
    }
    let mut out: Vec<String> = db
        .query(pred, &pattern)
        .into_iter()
        .map(|row| {
            let parts: Vec<String> = row.iter().map(|c| db.canonical(*c)).collect();
            format!("{}({})", goal.pred, parts.join(", "))
        })
        .collect();
    out.sort();
    out
}

/// Every predicate a program's rules and directives mention — the set of
/// relations a fixpoint over the program can read or write.
fn mentioned_preds(program: &Program) -> FxHashSet<String> {
    use crate::ast::Literal;
    let mut preds = FxHashSet::default();
    for rule in &program.rules {
        for atom in &rule.head {
            preds.insert(atom.pred.clone());
        }
        for lit in &rule.body {
            if let Literal::Atom(a) | Literal::Negated(a) = lit {
                preds.insert(a.pred.clone());
            }
        }
    }
    for d in &program.directives {
        match d {
            Directive::Input(p) | Directive::Output(p) | Directive::Post(p, _) => {
                preds.insert(p.clone());
            }
        }
    }
    preds
}

/// Runs a compiled program to fixpoint over `db` — the shared body of
/// [`Engine::run`] and the goal-directed path of [`Engine::query`], which
/// evaluates a rewritten program with the engine's own registry and
/// options without constructing a second engine.
pub(crate) fn run_compiled(
    program: &Program,
    compiled: &CompiledProgram,
    registry: &FunctionRegistry,
    options: &EngineOptions,
    db: &mut Database,
) -> Result<RunStats> {
    let start = Instant::now();
    let rules = resolve_rules(program, db)?;
    if options.provenance {
        for rel in &mut db.relations {
            rel.set_track_prov(true);
        }
    }
    let demand: FxHashSet<u32> = options
        .demand_hints
        .iter()
        .filter_map(|name| db.find_pred(name))
        .collect();
    let threads = par::resolve(options.threads);
    let mut stats = RunStats::default();
    let mut agg = AggStore::default();
    let mut ws = Workspace::default();

    for stratum in &compiled.strata {
        stats.strata += 1;
        run_stratum(
            &rules,
            stratum,
            stats.strata - 1,
            db,
            registry,
            options,
            &demand,
            threads,
            &mut agg,
            &mut ws,
            &mut stats,
        )?;
    }

    if options.apply_post {
        for (pred, op) in &compiled.auto_post {
            apply_post(db, pred, op);
        }
        for d in &program.directives {
            if let Directive::Post(pred, op) = d {
                apply_post(db, pred, op);
            }
        }
    }
    stats.duration = start.elapsed();
    Ok(stats)
}

/// Runs one stratum's semi-naive fixpoint over `db`: round 0 evaluates
/// every rule in `stratum` naively, later rounds once per (rule,
/// in-stratum delta literal). Extracted from [`Engine::run`] so the
/// incremental-maintenance subsystem ([`crate::incr`]) can replay a rule
/// subset (a dependency unit, or a whole stratum) with its own aggregate
/// store; the behavior — canonical per-round insertion order, growth-
/// triggered replanning, budgets — is exactly the engine's.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stratum(
    rules: &[RRule],
    stratum: &[usize],
    stratum_label: usize,
    db: &mut Database,
    registry: &FunctionRegistry,
    options: &EngineOptions,
    demand: &FxHashSet<u32>,
    threads: usize,
    agg: &mut AggStore,
    ws: &mut Workspace,
    stats: &mut RunStats,
) -> Result<()> {
    {
        // Predicates derived in this stratum (delta sources).
        let stratum_preds: Vec<u32> = stratum
            .iter()
            .flat_map(|&ri| rules[ri].head.iter().map(|h| h.pred))
            .collect();
        // Plan the stratum's rules against current cardinalities and
        // register exactly the probe indexes the plans use. When any
        // rule actually got a cost-based order, the stratum *replans
        // every round*: recursive predicates are empty at stratum
        // entry, so only from round 1 onward do the delta plans see the
        // real relation sizes they join against. Plans influence
        // evaluation order only — the canonical sort below makes any
        // order produce the same database — so replanning is free of
        // output drift, and `register_index` is a no-op for masks
        // already present. Strata of identity plans (planner disabled,
        // or every rule order-sensitive) skip the per-round stats pass.
        // Stats are scoped to reorderable rules' predicates and cached
        // by row count, so each round only re-samples relations that
        // both grew and feed a cost-planned join.
        let mut stats_cache = crate::fx::FxHashMap::default();
        let enable = options.plan;
        let sample_cap = if demand.is_empty() {
            plan::DISTINCT_SAMPLE
        } else {
            plan::DEMAND_SAMPLE
        };
        let compile_on = options.compile;
        let stratum_preds_ref = &stratum_preds;
        let mut plan_round = |db: &mut Database| {
            let mut stratum_stats = if enable {
                StratumStats::collect_reorderable(
                    rules,
                    stratum,
                    &db.relations,
                    &mut stats_cache,
                    sample_cap,
                )
            } else {
                StratumStats::default()
            };
            stratum_stats.demand = demand.clone();
            let plans = plan_stratum(rules, stratum, &stratum_stats, enable);
            // Relations *stable for this stratum* — no stratum rule derives
            // into them, so the round loop's inserts cannot invalidate a
            // frozen image mid-stratum — are promoted to the columnar
            // layout: per-column strips, plus CSR adjacency for the
            // probe masks the plans use, multi-column keys included
            // (those skip the hash index entirely). Unstable
            // (delta-side) relations keep the on-demand hash indexes.
            let mut freeze: crate::fx::FxHashMap<u32, Vec<u64>> = crate::fx::FxHashMap::default();
            for rp in plans.iter().flatten() {
                for p in std::iter::once(&rp.naive).chain(rp.delta.iter()) {
                    for step in &p.steps {
                        if let Step::Atom(a) = step {
                            let stable = compile_on && !stratum_preds_ref.contains(&a.pred);
                            if stable {
                                let masks = freeze.entry(a.pred).or_default();
                                if a.mask != 0 && !a.full_key() {
                                    if !masks.contains(&a.mask) {
                                        masks.push(a.mask);
                                    }
                                    continue;
                                }
                            }
                            // Full-key probes go through the dedup map
                            // instead of a registered index.
                            if a.mask != 0 && !a.full_key() {
                                db.relation_mut(a.pred).register_index(a.mask);
                            }
                        }
                    }
                }
            }
            for (pred, masks) in &freeze {
                db.relation_mut(*pred).freeze_columnar(masks);
            }
            let compiled = if compile_on {
                Some(compile_stratum(rules, &plans))
            } else {
                None
            };
            (plans, compiled)
        };
        let (mut plans, mut compiled) = plan_round(db);
        // Replanning can only change an order for a cost-planned rule
        // with at least two joinable atoms whose body reads a predicate
        // this stratum is still deriving — anything else sees the same
        // statistics every round. `watched` collects the predicates
        // those rules read; a later round replans only when one of them
        // grew enough (2x, or from empty) to plausibly flip an order.
        let mut watched: Vec<u32> = Vec::new();
        for &ri in stratum {
            let planned = plans[ri]
                .as_ref()
                .is_some_and(|rp| rp.naive.planned || rp.delta.iter().any(|p| p.planned));
            if !planned {
                continue;
            }
            let atoms: Vec<u32> = rules[ri]
                .body
                .iter()
                .filter_map(|lit| match lit {
                    RLiteral::Atom { atom } => Some(atom.pred),
                    _ => None,
                })
                .collect();
            if atoms.len() >= 2 && atoms.iter().any(|p| stratum_preds.contains(p)) {
                watched.extend(atoms);
            }
        }
        watched.sort_unstable();
        watched.dedup();
        let mut planned_len: Vec<usize> = watched
            .iter()
            .map(|&p| db.relations[p as usize].len())
            .collect();
        let mut prev_len: Vec<u32> = db.relations.iter().map(|r| r.len() as u32).collect();
        let mut round = 0usize;
        loop {
            if round >= options.max_rounds {
                return Err(DatalogError::BudgetExceeded(format!(
                    "exceeded {} rounds in stratum {}",
                    options.max_rounds, stratum_label
                )));
            }
            if round > 0 && !watched.is_empty() {
                let grown = watched.iter().zip(&planned_len).any(|(&p, &l)| {
                    let n = db.relations[p as usize].len();
                    if l == 0 {
                        n > 0
                    } else {
                        n >= l * 2
                    }
                });
                if grown {
                    (plans, compiled) = plan_round(db);
                    for (i, &p) in watched.iter().enumerate() {
                        planned_len[i] = db.relations[p as usize].len();
                    }
                }
            }
            let mut out: Vec<Derived> = Vec::new();
            let fully_sequential;
            {
                let db_ref = &mut *db;
                let relations = &db_ref.relations;
                // The round's rule evaluations in sequential order:
                // round 0 is the naive pass; later rounds contribute
                // one item per (rule, in-stratum delta literal).
                let mut items: Vec<(usize, Option<(usize, u32)>)> = Vec::new();
                for &ri in stratum {
                    let rule = &rules[ri];
                    if round == 0 {
                        items.push((ri, None));
                    } else {
                        for (k, &li) in rule.positive_literals.iter().enumerate() {
                            let pred = rule.positive_preds[k];
                            if !stratum_preds.contains(&pred) {
                                continue;
                            }
                            let dstart = prev_len[pred as usize];
                            if (dstart as usize) >= relations[pred as usize].len() {
                                continue;
                            }
                            items.push((ri, Some((li, dstart))));
                        }
                    }
                }
                let mut ctx = RunCtx {
                    symbols: &mut db_ref.symbols,
                    skolems: &mut db_ref.skolems,
                    registry,
                    agg: &mut *agg,
                    out: &mut out,
                    ws: &mut *ws,
                    epsilon: options.epsilon,
                    provenance: options.provenance,
                };
                fully_sequential = eval_round(
                    rules,
                    &plans,
                    compiled.as_deref(),
                    relations,
                    &items,
                    threads,
                    options.shards.max(1),
                    options.batch,
                    &mut ctx,
                )?;
            }
            // Canonical per-round ordering: a round's derived *set* is
            // independent of body-literal order, so sorting before
            // insertion pins row ids and provenance regardless of the
            // plans that produced the buffer. Insertion keeps the first
            // occurrence of each tuple — i.e. the (pred, tuple, prov)
            // minimum — so collapsing in-round duplicates to that
            // minimum *before* sorting leaves the inserted sequence
            // untouched while the comparison-heavy sort only sees the
            // unique survivors. Joins that re-derive one head many times
            // per round (e.g. a close-link pair once per common
            // shareholder) shrink by orders of magnitude here.
            //
            // With provenance off a fully sequential round is already
            // duplicate-free: plain heads and conditional aggregates
            // consult the workspace emitted set, and epsilon-guarded
            // aggregate emissions never repeat a tuple within a round.
            // Parallel rounds still need the pass — workers share no
            // emitted set — as do provenance runs, where duplicates
            // carry distinct trees and the minimum must be kept.
            if out.len() > 1 && (options.provenance || !fully_sequential) {
                let mut best: FxHashMap<(u32, Tuple), usize> = FxHashMap::default();
                best.reserve(out.len());
                let mut keep = vec![false; out.len()];
                for (i, d) in out.iter().enumerate() {
                    match best.entry((d.pred, d.tuple.clone())) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(i);
                            keep[i] = true;
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let j = *e.get();
                            if d.prov < out[j].prov {
                                keep[j] = false;
                                keep[i] = true;
                                e.insert(i);
                            }
                        }
                    }
                }
                let mut i = 0usize;
                out.retain(|_| {
                    let k = keep[i];
                    i += 1;
                    k
                });
            }
            out.sort_unstable_by(|a, b| {
                a.pred
                    .cmp(&b.pred)
                    .then_with(|| a.tuple.cmp(&b.tuple))
                    .then_with(|| a.prov.cmp(&b.prov))
            });
            // Snapshot lengths, then insert this round's derivations:
            // they become the next round's deltas.
            for (i, rel) in db.relations.iter().enumerate() {
                prev_len[i] = rel.len() as u32;
            }
            let mut new_facts = 0usize;
            for d in out {
                let (_, fresh) = db.relations[d.pred as usize].insert(d.tuple, d.prov);
                if fresh {
                    new_facts += 1;
                }
            }
            stats.derived += new_facts;
            stats.rounds += 1;
            round += 1;
            if db.total_facts() > options.max_facts {
                return Err(DatalogError::BudgetExceeded(format!(
                    "exceeded {} facts",
                    options.max_facts
                )));
            }
            if new_facts == 0 {
                break;
            }
        }
    }
    Ok(())
}

/// Driver rows below which a round runs sequentially: thread spawn and
/// merge overhead dominate tiny rounds, and the result is identical either
/// way.
const PAR_MIN_DRIVER_ROWS: usize = 512;

/// Shard of a constant: its [`FxHasher`](crate::fx::FxHasher) hash reduced
/// modulo the shard count. Workers cannot resolve symbols mid-round (the
/// symbol table is mutably borrowed by the run context), so eval-side
/// bucketing hashes the interned [`Const`] — a different hash domain from
/// the string-keyed partitioning of `store::ShardedDatabase`, which is
/// fine: byte-identity never depends on *which* shard a row lands in, only
/// on the canonical merge.
pub fn shard_of_const(c: &Const, shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = crate::fx::FxHasher::default();
    c.hash(&mut h);
    (h.finish() as usize) % shards.max(1)
}

/// Evaluates one round's work items, parallelizing the chunkable ones.
///
/// An item is chunkable when its rule is `par_full` — the body touches no
/// shared mutable state (symbol interning, Skolem invention, aggregate
/// accumulators) — and it has a leading positive atom whose candidate rows
/// drive the join. Those rows are split into contiguous chunks evaluated
/// on [`par`] workers against throwaway context tables; chunk outputs are
/// spliced back in (item, chunk) order, and non-chunkable items run
/// sequentially at their original position with the real context. The
/// resulting `out` buffer is byte-identical to a fully sequential round:
/// same derivations, same order, hence the same row ids and provenance
/// downstream.
///
/// Returns `true` when the whole round ran sequentially against the real
/// context — the caller can then skip its duplicate-collapse pass for
/// provenance-free runs, since sequential emission already dedups.
///
/// With `shards > 1` the round runs in *shard mode*: a chunkable item's
/// driver rows are bucketed by [`shard_of_const`] of the driving row's
/// first column instead of split contiguously, one subtask per non-empty
/// (item, shard) bucket. Shard mode always takes the parallel path — even
/// below [`PAR_MIN_DRIVER_ROWS`] or at one thread — so the partitioned
/// execution is actually exercised, and always reports `false` so the
/// caller's collapse + canonical sort merges the shard outputs back into
/// the byte-identical single-shard order.
#[allow(clippy::too_many_arguments)]
fn eval_round(
    rules: &[RRule],
    plans: &[Option<RulePlans>],
    compiled: Option<&[Option<CompiledRulePlans>]>,
    relations: &[Relation],
    items: &[(usize, Option<(usize, u32)>)],
    threads: usize,
    shards: usize,
    batch: bool,
    ctx: &mut RunCtx<'_>,
) -> Result<bool> {
    // The plan for one work item: the naive plan on round 0, the matching
    // delta plan otherwise.
    let plan_for = |ri: usize, delta: Option<(usize, u32)>| -> &RulePlan {
        let rp = plans[ri].as_ref().expect("stratum rules are planned");
        match delta {
            None => &rp.naive,
            Some((li, _)) => {
                let k = rules[ri]
                    .positive_literals
                    .iter()
                    .position(|&p| p == li)
                    .expect("delta literal is a positive atom");
                &rp.delta[k]
            }
        }
    };
    // The compiled twin of `plan_for`, when compiled execution is on.
    let compiled_for = |ri: usize, delta: Option<(usize, u32)>| -> Option<&CompiledRule> {
        let cp = compiled?[ri].as_ref().expect("stratum rules are compiled");
        Some(match delta {
            None => &cp.naive,
            Some((li, _)) => {
                let k = rules[ri]
                    .positive_literals
                    .iter()
                    .position(|&p| p == li)
                    .expect("delta literal is a positive atom");
                &cp.delta[k]
            }
        })
    };
    // One work item (optionally chunk-restricted), through whichever
    // executor is active — both enumerate identically.
    let run_one = |ri: usize,
                   delta: Option<(usize, u32)>,
                   driver: Option<&[u32]>,
                   ctx: &mut RunCtx<'_>|
     -> Result<()> {
        match compiled_for(ri, delta) {
            Some(cr) => eval_compiled_chunk(
                cr,
                relations,
                delta.map_or(0, |(_, s)| s),
                driver,
                batch,
                ctx,
            ),
            None => eval_rule_chunk(
                &rules[ri],
                plan_for(ri, delta),
                relations,
                delta,
                driver,
                ctx,
            ),
        }
    };
    let run_seq = |ctx: &mut RunCtx<'_>| -> Result<()> {
        for &(ri, delta) in items {
            run_one(ri, delta, None, ctx)?;
        }
        Ok(())
    };
    let shard_mode = shards > 1;
    if threads <= 1 && !shard_mode {
        run_seq(ctx)?;
        return Ok(true);
    }
    // Candidate rows per chunkable item; `None` marks sequential items.
    let mut drivers: Vec<Option<Vec<u32>>> = Vec::with_capacity(items.len());
    let mut total = 0usize;
    for &(ri, delta) in items {
        let rule = &rules[ri];
        let rows = if rule.par_full {
            driver_rows(plan_for(ri, delta), relations, delta)
        } else {
            None
        };
        if let Some(r) = &rows {
            total += r.len();
        }
        drivers.push(rows);
    }
    if total < PAR_MIN_DRIVER_ROWS && !shard_mode {
        run_seq(ctx)?;
        return Ok(true);
    }
    // In shard mode each chunkable item's rows are re-bucketed by the
    // shard of the driving row's first column, so a subtask is exactly one
    // shard's partition of one item's work. The buckets own their row
    // lists; `drivers` keeps marking which items are chunkable.
    let sharded: Vec<(usize, Vec<u32>)> = if shard_mode {
        let mut buckets: Vec<(usize, Vec<u32>)> = Vec::new();
        for (idx, rows) in drivers.iter().enumerate() {
            let Some(rows) = rows else { continue };
            // The driving relation is the plan's leading atom — the same
            // one `driver_rows` enumerated.
            let Some(Step::Atom(a)) = plan_for(items[idx].0, items[idx].1).steps.first() else {
                unreachable!("chunkable items drive from a leading atom");
            };
            let rel = &relations[a.pred as usize];
            let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); shards];
            for &r in rows {
                let row = rel.row(r);
                let s = row.first().map_or(0, |c| shard_of_const(c, shards));
                by_shard[s].push(r);
            }
            for b in by_shard {
                if !b.is_empty() {
                    buckets.push((idx, b));
                }
            }
        }
        buckets
    } else {
        Vec::new()
    };
    // Subtasks in (item, chunk) order; a few chunks per worker so a skewed
    // chunk cannot serialize the round. Shard mode instead emits one
    // subtask per non-empty (item, shard) bucket.
    let chunk = (total / (threads.max(1) * 4)).max(PAR_MIN_DRIVER_ROWS / 4);
    let mut subtasks: Vec<(usize, &[u32])> = Vec::new();
    if shard_mode {
        for (idx, rows) in &sharded {
            subtasks.push((*idx, &rows[..]));
        }
    } else {
        for (idx, rows) in drivers.iter().enumerate() {
            if let Some(rows) = rows {
                let mut s = 0;
                while s < rows.len() {
                    let e = (s + chunk).min(rows.len());
                    subtasks.push((idx, &rows[s..e]));
                    s = e;
                }
            }
        }
    }
    let registry = ctx.registry;
    let epsilon = ctx.epsilon;
    let provenance = ctx.provenance;
    let results = par::par_map_with(&subtasks, threads, 1, |&(idx, rows)| {
        let (ri, delta) = items[idx];
        // par_full rules never consult the symbol/Skolem/aggregate state;
        // the worker gets throwaway instances so nothing is shared.
        let mut symbols = SymbolTable::default();
        let mut skolems = SkolemTable::default();
        let mut agg = AggStore::default();
        let mut ws = Workspace::default();
        let mut local: Vec<Derived> = Vec::new();
        let mut wctx = RunCtx {
            symbols: &mut symbols,
            skolems: &mut skolems,
            registry,
            agg: &mut agg,
            out: &mut local,
            ws: &mut ws,
            epsilon,
            provenance,
        };
        run_one(ri, delta, Some(rows), &mut wctx).map(|()| local)
    });
    // Splice in sequential order: chunk outputs at their item's position,
    // sequential items evaluated in place with the real context.
    let mut results = results.into_iter();
    let mut cursor = 0usize;
    for (idx, &(ri, delta)) in items.iter().enumerate() {
        if drivers[idx].is_some() {
            while cursor < subtasks.len() && subtasks[cursor].0 == idx {
                let local = results.next().expect("one result per subtask")?;
                ctx.out.extend(local);
                cursor += 1;
            }
        } else {
            run_one(ri, delta, None, ctx)?;
        }
    }
    Ok(false)
}

/// Applies a `@post` grouping filter: per grouping of all columns except the
/// value column, keep only the row with the extremal value.
pub(crate) fn apply_post(db: &mut Database, pred: &str, op: &PostOp) {
    let Some(p) = db.find_pred(pred) else {
        return;
    };
    let (col, keep_max) = match op {
        PostOp::MaxBy(c) => (*c, true),
        PostOp::MinBy(c) => (*c, false),
    };
    let rel = &db.relations[p as usize];
    if rel.is_empty() {
        return;
    }
    let arity = rel.row(0).len();
    if col >= arity {
        return;
    }
    let mut best: crate::fx::FxHashMap<Tuple, Tuple> = crate::fx::FxHashMap::default();
    for row in rel.rows() {
        let key: Tuple = row
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != col)
            .map(|(_, c)| *c)
            .collect();
        match best.get(&key) {
            Some(prev) => {
                let replace = if keep_max {
                    row[col] > prev[col]
                } else {
                    row[col] < prev[col]
                };
                if replace {
                    best.insert(key, row.into());
                }
            }
            None => {
                best.insert(key, row.into());
            }
        }
    }
    let mut rows: Vec<Tuple> = best.into_values().collect();
    rows.sort();
    db.relations[p as usize].replace_all(rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Const;

    fn run_src(src: &str, setup: impl FnOnce(&mut Database)) -> Database {
        let program = Program::parse(src).unwrap();
        let engine = Engine::new(&program).unwrap();
        let mut db = Database::new();
        setup(&mut db);
        engine.run(&mut db).unwrap();
        db
    }

    #[test]
    fn transitive_closure() {
        let db = run_src("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).", |db| {
            db.assert_str_facts("e", &[&["a", "b"], &["b", "c"], &["c", "d"]]);
        });
        assert_eq!(db.fact_count("t"), 6);
        assert!(db.contains_str_fact("t", &["a", "d"]));
        assert!(!db.contains_str_fact("t", &["b", "a"]));
    }

    #[test]
    fn cyclic_transitive_closure_terminates() {
        let db = run_src("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).", |db| {
            db.assert_str_facts("e", &[&["a", "b"], &["b", "a"]]);
        });
        assert_eq!(db.fact_count("t"), 4); // aa ab ba bb
    }

    #[test]
    fn ground_facts_in_program() {
        let db = run_src("e(a, b). e(b, c). t(X, Z) :- e(X, Y), e(Y, Z).", |_| {});
        assert!(db.contains_str_fact("t", &["a", "c"]));
    }

    #[test]
    fn stratified_negation() {
        let db = run_src(
            "reach(X) :- start(X). reach(Y) :- reach(X), e(X, Y).\n\
             unreach(X) :- node(X), not reach(X).",
            |db| {
                db.assert_str_facts("node", &[&["a"], &["b"], &["c"]]);
                db.assert_str_facts("start", &[&["a"]]);
                db.assert_str_facts("e", &[&["a", "b"]]);
            },
        );
        assert_eq!(db.dump("unreach"), vec!["c"]);
    }

    #[test]
    fn comparisons_and_arithmetic() {
        let db = run_src("big(X, V) :- n(X, W), V = W * 2 + 1, V > 5.", |db| {
            db.fact("n").sym("a").int(1).assert();
            db.fact("n").sym("b").int(3).assert();
        });
        assert_eq!(db.fact_count("big"), 1);
        let rel = db.relation("big").unwrap();
        assert_eq!(rel.row(0)[1], Const::Int(7));
    }

    #[test]
    fn company_control_paper_figure_1() {
        // Figure 1 of the paper: P1 controls C, D, E (jointly via D and a
        // direct 20%), and F (via E and D); no one controls L alone.
        let db = run_src(
            "control(X, X) :- company(X).\n\
             control(X, X) :- person(X).\n\
             control(X, Y) :- control(X, Z), own(Z, Y, W), X != Y, msum(W, <Z>) > 0.5.",
            |db| {
                for c in ["c", "d", "e", "f", "g", "h", "i", "l"] {
                    db.assert_str_facts("company", &[&[c]]);
                }
                db.assert_str_facts("person", &[&["p1"], &["p2"]]);
                for (x, y, w) in [
                    ("p1", "c", 0.8),
                    ("p1", "d", 0.75),
                    ("d", "e", 0.4),
                    ("p1", "e", 0.2),
                    ("d", "f", 0.2),
                    ("e", "f", 0.4),
                    ("p2", "g", 0.6),
                    ("g", "h", 0.6),
                    ("h", "i", 0.1),
                    ("p2", "i", 0.5),
                    ("f", "l", 0.2),
                    ("i", "l", 0.4),
                ] {
                    db.fact("own").sym(x).sym(y).float(w).assert();
                }
            },
        );
        for target in ["c", "d", "e", "f"] {
            assert!(
                db.contains_str_fact("control", &["p1", target]),
                "p1 should control {target}"
            );
        }
        assert!(!db.contains_str_fact("control", &["p1", "l"]));
        for target in ["g", "h", "i"] {
            assert!(
                db.contains_str_fact("control", &["p2", target]),
                "p2 should control {target}"
            );
        }
        assert!(!db.contains_str_fact("control", &["p2", "l"]));
    }

    #[test]
    fn control_handles_ownership_cycles() {
        // a owns 60% of b, b owns 60% of c, c owns 60% of b (cycle b<->c).
        let db = run_src(
            "control(X, X) :- company(X).\n\
             control(X, Y) :- control(X, Z), own(Z, Y, W), X != Y, msum(W, <Z>) > 0.5.",
            |db| {
                db.assert_str_facts("company", &[&["a"], &["b"], &["c"]]);
                db.fact("own").sym("a").sym("b").float(0.6).assert();
                db.fact("own").sym("b").sym("c").float(0.6).assert();
                db.fact("own").sym("c").sym("b").float(0.6).assert();
            },
        );
        assert!(db.contains_str_fact("control", &["a", "b"]));
        assert!(db.contains_str_fact("control", &["a", "c"]));
    }

    #[test]
    fn joint_control_requires_summation() {
        // x controls a (60%) and b (60%); a and b each own 30% of y.
        // Only the msum over {a, b} pushes x over 50% of y.
        let db = run_src(
            "control(X, X) :- company(X).\n\
             control(X, Y) :- control(X, Z), own(Z, Y, W), X != Y, msum(W, <Z>) > 0.5.",
            |db| {
                db.assert_str_facts("company", &[&["x"], &["a"], &["b"], &["y"]]);
                db.fact("own").sym("x").sym("a").float(0.6).assert();
                db.fact("own").sym("x").sym("b").float(0.6).assert();
                db.fact("own").sym("a").sym("y").float(0.3).assert();
                db.fact("own").sym("b").sym("y").float(0.3).assert();
            },
        );
        assert!(db.contains_str_fact("control", &["x", "y"]));
    }

    #[test]
    fn accumulated_ownership_with_let_aggregate() {
        // Diamond: x -0.5-> a -0.5-> y and x -0.4-> b -0.25-> y.
        // Φ(x,y) = 0.25 + 0.1 = 0.35.
        let db = run_src(
            "acc(X, Y, V) :- own(X, Y, W), V = msum(W, <X, Y>).\n\
             acc(X, Y, V) :- own(X, Z, W1), acc(Z, Y, W2), Z != Y, V = msum(W1 * W2, <Z>).",
            |db| {
                db.fact("own").sym("x").sym("a").float(0.5).assert();
                db.fact("own").sym("a").sym("y").float(0.5).assert();
                db.fact("own").sym("x").sym("b").float(0.4).assert();
                db.fact("own").sym("b").sym("y").float(0.25).assert();
            },
        );
        // After auto-compaction, one acc fact per (x, y) pair with the total.
        let rel = db.relation("acc").unwrap();
        let x = db.sym_of("x");
        let y = db.sym_of("y");
        let mut found = None;
        for row in rel.rows() {
            if row[0] == x && row[1] == y {
                assert!(found.is_none(), "compaction should leave one row");
                found = Some(row[2].as_f64().unwrap());
            }
        }
        assert!((found.unwrap() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn shared_aggregate_total_across_rules() {
        // Algorithm 8 semantics: two rules contribute to the same total.
        // p contributes via u(=0.3) and v(=0.3); threshold 0.5 crossed only
        // by the combination.
        let db = run_src(
            "reaches(P) :- u(P, W), msum(W, <P>) > 0.5.\n\
             reaches(P) :- v(P, W), msum(W, <P>) > 0.5.",
            |db| {
                db.fact("u").sym("p").float(0.3).assert();
                db.fact("v").sym("p").float(0.3).assert();
            },
        );
        // Contributor keys are namespaced by rule, so the two 0.3s add up.
        assert!(db.contains_str_fact("reaches", &["p"]));
    }

    #[test]
    fn existential_invents_nulls() {
        let db = run_src(
            "link(Z, X, Y) :- own(X, Y, _), Z = #mk(X, Y).\n\
             haslink(X, Y) :- link(_, X, Y).",
            |db| {
                db.fact("own").sym("a").sym("b").float(0.5).assert();
            },
        );
        assert_eq!(db.fact_count("link"), 1);
        let rel = db.relation("link").unwrap();
        assert!(rel.row(0)[0].is_null());
        assert!(db.contains_str_fact("haslink", &["a", "b"]));
    }

    #[test]
    fn implicit_existentials_are_skolemized() {
        // Head var Z not in body → labelled null, one per distinct frontier.
        let db = run_src("edge(Z, X, Y) :- own(X, Y, _).", |db| {
            db.fact("own").sym("a").sym("b").float(0.5).assert();
            db.fact("own").sym("a").sym("b").float(0.7).assert();
            db.fact("own").sym("a").sym("c").float(0.2).assert();
        });
        // Frontier is (X, Y): (a,b) appears twice → same null; (a,c) fresh.
        assert_eq!(db.fact_count("edge"), 2);
    }

    #[test]
    fn skolem_functions_are_deterministic_and_disjoint() {
        let db = run_src(
            "n1(Z) :- p(X), Z = #ska(X).\n\
             n2(Z) :- p(X), Z = #skb(X).\n\
             n3(Z) :- p(X), Z = #ska(X).",
            |db| {
                db.assert_str_facts("p", &[&["a"]]);
            },
        );
        let z1 = db.relation("n1").unwrap().row(0)[0];
        let z2 = db.relation("n2").unwrap().row(0)[0];
        let z3 = db.relation("n3").unwrap().row(0)[0];
        assert_eq!(z1, z3, "determinism across rules");
        assert_ne!(z1, z2, "disjoint ranges");
    }

    #[test]
    fn conjunctive_heads() {
        let db = run_src("node(X), nodetype(X, company) :- company(X).", |db| {
            db.assert_str_facts("company", &[&["acme"]]);
        });
        assert!(db.contains_str_fact("node", &["acme"]));
        assert!(db.contains_str_fact("nodetype", &["acme", "company"]));
    }

    #[test]
    fn external_functions() {
        let program = Program::parse("len(X, L) :- w(X), L = #strlen(X).").unwrap();
        let engine = Engine::new(&program).unwrap();
        let mut db = Database::new();
        db.assert_str_facts("w", &[&["hello"]]);
        engine.run(&mut db).unwrap();
        let rel = db.relation("len").unwrap();
        assert_eq!(rel.row(0)[1], Const::Int(5));
    }

    #[test]
    fn custom_function_registration() {
        let program = Program::parse("d(X, Y) :- p(X), Y = #triple(X).").unwrap();
        let mut engine = Engine::new(&program).unwrap();
        engine.register_function("triple", |_, args| {
            Ok(Const::Int(args[0].as_i64().ok_or("not int")? * 3))
        });
        let mut db = Database::new();
        db.fact("p").int(14).assert();
        engine.run(&mut db).unwrap();
        assert_eq!(db.relation("d").unwrap().row(0)[1], Const::Int(42));
    }

    #[test]
    fn mcount_aggregate() {
        let db = run_src("deg(X, C) :- e(X, Y), C = mcount(1, <Y>).", |db| {
            db.assert_str_facts("e", &[&["a", "b"], &["a", "c"], &["a", "b"], &["b", "c"]]);
        });
        let rel = db.relation("deg").unwrap();
        let a = db.sym_of("a");
        for row in rel.rows() {
            if row[0] == a {
                assert_eq!(row[1], Const::Int(2));
            }
        }
    }

    #[test]
    fn post_directive_keeps_extremal_rows() {
        let db = run_src(
            "@post(\"best\", \"max(1)\").\n\
             best(X, W) :- score(X, W).",
            |db| {
                db.fact("score").sym("a").float(1.0).assert();
                db.fact("score").sym("a").float(3.0).assert();
                db.fact("score").sym("b").float(2.0).assert();
            },
        );
        let rel = db.relation("best").unwrap();
        assert_eq!(rel.len(), 2);
        let a = db.sym_of("a");
        for row in rel.rows() {
            if row[0] == a {
                assert_eq!(row[1].as_f64(), Some(3.0));
            }
        }
    }

    #[test]
    fn fact_budget_is_enforced() {
        let program = Program::parse("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let mut engine = Engine::new(&program).unwrap();
        engine.options_mut().max_facts = 10;
        let mut db = Database::new();
        for i in 0..20 {
            let a = format!("n{i}");
            let b = format!("n{}", i + 1);
            db.fact("e").sym(&a).sym(&b).assert();
        }
        let err = engine.run(&mut db).unwrap_err();
        assert!(matches!(err, DatalogError::BudgetExceeded(_)));
    }

    #[test]
    fn recursive_aggregate_over_cycle_converges() {
        // a -> b -> a ownership cycle with product < 1: accumulated
        // ownership converges geometrically; the epsilon guard terminates.
        let db = run_src(
            "acc(X, Y, V) :- own(X, Y, W), V = msum(W, <X, Y>).\n\
             acc(X, Y, V) :- own(X, Z, W1), acc(Z, Y, W2), Z != Y, V = msum(W1 * W2, <Z>).",
            |db| {
                db.fact("own").sym("a").sym("b").float(0.5).assert();
                db.fact("own").sym("b").sym("a").float(0.5).assert();
                db.fact("own").sym("b").sym("c").float(0.8).assert();
            },
        );
        // Φ(a,c): walks a->b->c, a->b->a->b->c, ... = 0.4·(1+0.25+...) = 0.5333…
        let a = db.sym_of("a");
        let c = db.sym_of("c");
        let rel = db.relation("acc").unwrap();
        let mut val = None;
        for row in rel.rows() {
            if row[0] == a && row[1] == c {
                val = Some(row[2].as_f64().unwrap());
            }
        }
        let expected = 0.4 / (1.0 - 0.25);
        assert!(
            (val.unwrap() - expected).abs() < 1e-6,
            "got {val:?}, want {expected}"
        );
    }

    #[test]
    fn rerunning_is_idempotent() {
        let program = Program::parse("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let engine = Engine::new(&program).unwrap();
        let mut db = Database::new();
        db.assert_str_facts("e", &[&["a", "b"], &["b", "c"]]);
        engine.run(&mut db).unwrap();
        let n = db.fact_count("t");
        let stats = engine.run(&mut db).unwrap();
        assert_eq!(db.fact_count("t"), n);
        assert_eq!(stats.derived, 0);
    }

    #[test]
    fn stratum_of_reports_layers() {
        let program = Program::parse("r(X) :- n(X), not t(X). t(X) :- e(X, _).").unwrap();
        let engine = Engine::new(&program).unwrap();
        // Base relations occupy layer 0; every cross-component
        // dependency (not just negation) bumps the layer.
        assert_eq!(engine.stratum_of("e"), Some(0));
        assert_eq!(engine.stratum_of("t"), Some(1));
        assert_eq!(engine.stratum_of("r"), Some(2));
        assert_eq!(engine.stratum_of("zzz"), None);
    }

    #[test]
    fn negation_on_derived_relation() {
        let db = run_src(
            "owner(X) :- own(X, _, _).\n\
             leaf(X) :- company(X), not owner(X).",
            |db| {
                db.assert_str_facts("company", &[&["a"], &["b"]]);
                db.fact("own").sym("a").sym("b").float(1.0).assert();
            },
        );
        assert_eq!(db.dump("leaf"), vec!["b"]);
    }

    #[test]
    fn repeated_variables_in_atoms_unify() {
        let db = run_src("selfloop(X) :- e(X, X).", |db| {
            db.assert_str_facts("e", &[&["a", "a"], &["a", "b"]]);
        });
        assert_eq!(db.dump("selfloop"), vec!["a"]);
    }

    impl Database {
        /// Test helper: symbol constant for an existing string.
        fn sym_of(&self, s: &str) -> Const {
            Const::Sym(self.symbols.get(s).expect("symbol exists"))
        }
    }

    #[test]
    fn engine_rejects_ill_formed_programs_with_diagnostics() {
        // Cross-rule arity mismatch: caught at construction (V006), not
        // at run time.
        let program = Program::parse("p(X, Y) :- e(X, Y). q(X) :- p(X).").unwrap();
        match Engine::new(&program) {
            Err(DatalogError::Analysis(ds)) => {
                assert!(ds.iter().any(|d| d.code == crate::analysis::DiagCode::V006));
            }
            other => panic!("expected Analysis error, got {other:?}"),
        }
    }

    #[test]
    fn permissive_analysis_opts_out_of_gating() {
        let program = Program::parse("p(X, Y) :- e(X, Y). q(X) :- p(X).").unwrap();
        let options = EngineOptions {
            analysis: AnalysisConfig::permissive(),
            ..EngineOptions::default()
        };
        // Pre-analyzer behavior: construction succeeds; the arity clash
        // would surface (or not) during evaluation instead.
        Engine::with(&program, FunctionRegistry::default(), options)
            .expect("permissive engine must accept the program");
    }

    #[test]
    fn implicit_existentials_stay_accepted_by_default() {
        // V002 is a warning under the default config: Skolemizing unbound
        // head variables is the Datalog± chase, not an error.
        let program = Program::parse("edge(Z, X) :- own(X, _).").unwrap();
        Engine::new(&program).expect("existential program is legal");
        let options = EngineOptions {
            analysis: AnalysisConfig::strict(),
            ..EngineOptions::default()
        };
        assert!(matches!(
            Engine::with(&program, FunctionRegistry::default(), options),
            Err(DatalogError::Analysis(_))
        ));
    }
}
