//! Batch-at-a-time (vectorized) execution tier over frozen columnar
//! strips.
//!
//! The closure chains of [`super::compile`] evaluate tuple-at-a-time:
//! one indirect call per row per stage, bindings written and undone
//! through an `Option<Const>` array. When a naive plan's inputs are all
//! frozen [`Columnar`](crate::db) images, this module runs the same plan
//! batch-at-a-time instead: fixed-width batches of row indices (one
//! array per joined slot) refined by a *selection vector*, with
//! filters/compares running over packed column slices through the
//! [`kernels`](super::kernels) (scalar by default, SIMD under the `simd`
//! feature). Variables never materialize — each variable is resolved at
//! lowering time to the column or computed slot that defines it.
//!
//! ## Byte-identity
//!
//! The batch pipeline preserves the tuple executor's depth-first
//! enumeration order exactly: expansion steps (probes, cross scans)
//! append matches in ascending lane order and flush full batches
//! through the remaining steps *before* generating more rows, so the
//! emitted `Derived` sequence — and with it every downstream row id —
//! is identical to the closure chain's. The differential suites enforce
//! this at several thread counts with the `simd` feature on and off.
//!
//! ## Fallback rules
//!
//! Lowering ([`lower`]) produces a plan only for the *batch subset*:
//! naive (round 0) plans of rules without aggregates, existentials,
//! Skolem terms or external calls, whose conditions and lets take the
//! lowered comparison shapes (arithmetic lets stay tuple-at-a-time so
//! the batch path cannot fail mid-batch and reorder error surfacing).
//! At run time [`ready`] additionally requires every scanned or probed
//! relation to be frozen with the CSR masks the plan probes —
//! delta-side relations never are, so recursive rounds fall back to the
//! tuple chain, as do provenance-carrying runs (checked by the caller).

use crate::ast::CmpOp;
use crate::db::Relation;
use crate::error::Result;
use crate::eval::exec::{compare, Derived, RunCtx};
use crate::eval::kernels::{pack, pack_exact, select_cmp};
use crate::eval::plan::{KeyOp, RulePlan, Step, TermOp};
use crate::eval::resolve::{RExpr, RLiteral, RRule, RTerm};
use crate::value::Const;

/// Rows per batch. Large enough to amortize per-batch dispatch, small
/// enough that a batch's working set (a few row/let arrays) stays in
/// cache.
pub(crate) const BATCH_WIDTH: usize = 1024;

/// Widest probe/membership key the stack-allocated key buffers hold;
/// plans with wider keys stay on the tuple path.
const MAX_KEY: usize = 8;

/// Where a value lives at run time. Variables are resolved to sources
/// at lowering, so batches carry no binding array.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Src {
    /// Column `col` of the relation joined at generator slot `slot`.
    Col { pred: u32, slot: u16, col: u16 },
    /// Lane of the computed column `LetCol(i)`.
    LetCol(u16),
    /// A compile-time constant.
    Const(Const),
}

/// How the leading atom enumerates its rows (when no driver chunk is
/// supplied).
#[derive(Debug)]
enum Lead {
    /// Full scan of the relation.
    Scan,
    /// Constant-key probe.
    Rows { mask: u64, key: Box<[Const]> },
    /// Constant full-key membership (0 or 1 rows).
    Find { key: Box<[Const]> },
}

/// A lowered expression for a computed column — the infallible subset.
#[derive(Debug)]
enum BExpr {
    Src(Src),
    Cmp(CmpOp, Src, Src),
}

/// One batch operator.
#[derive(Debug)]
enum BStep {
    /// Keyed join: for each selected lane, enumerate the CSR rows
    /// matching `key` into generator slot `slot` of the next depth.
    Probe {
        slot: u16,
        pred: u32,
        mask: u64,
        key: Box<[Src]>,
        carry_slots: Box<[u16]>,
        carry_lets: Box<[u16]>,
    },
    /// Unkeyed join (cross product) into the next depth.
    CrossScan {
        slot: u16,
        pred: u32,
        carry_slots: Box<[u16]>,
        carry_lets: Box<[u16]>,
    },
    /// Full-key membership test: keep lanes whose key is present
    /// (`want`) or absent (negation, `!want`). Defines no columns.
    Member {
        pred: u32,
        key: Box<[Src]>,
        want: bool,
    },
    /// Comparison filter: keep lanes where `lhs op rhs`.
    Filter { op: CmpOp, lhs: Src, rhs: Src },
    /// Computed column: `lets[dst][lane] = expr(lane)`.
    Compute { dst: u16, expr: BExpr },
}

/// A naive rule plan lowered for batch execution.
#[derive(Debug)]
pub(crate) struct BatchPlan {
    lead: Lead,
    lead_pred: u32,
    steps: Box<[BStep]>,
    /// Generator slots (lead + expansions); each owns a row array per
    /// batch depth.
    n_slots: usize,
    n_lets: usize,
    /// Batch depths: the lead plus one per expansion step.
    n_depths: usize,
    heads: Box<[(u32, Box<[Src]>)]>,
    /// Relations whose strips are read — must be frozen at run time.
    needs_cols: Box<[u32]>,
    /// `(pred, mask)` probes — must have a frozen CSR at run time.
    needs_csr: Box<[(u32, u64)]>,
    /// Maximal runs of consecutive selection-only steps (filters and
    /// members) as `(start, len)` into `steps`. Pure AND-refinements
    /// commute, so each block is re-ordered adaptively at run time by
    /// observed pass rate (cheapest-most-selective first) without
    /// changing the surviving selection or the emission order.
    blocks: Box<[(u16, u16)]>,
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Resolves a term to its source, if representable.
fn term_src(t: &RTerm, var_src: &[Option<Src>]) -> Option<Src> {
    match t {
        RTerm::Const(c) => Some(Src::Const(*c)),
        RTerm::Var(v) => var_src[*v as usize],
        RTerm::Skolem { .. } => None,
    }
}

/// Lowers a condition/let comparison of the `var ⟨cmp⟩ var/const`
/// shapes; anything else (calls, arithmetic) is outside the subset.
fn cmp_shape(e: &RExpr, var_src: &[Option<Src>]) -> Option<(CmpOp, Src, Src)> {
    let RExpr::Cmp(op, a, b) = e else { return None };
    let side = |e: &RExpr| match e {
        RExpr::Var(v) => var_src[*v as usize],
        RExpr::Const(c) => Some(Src::Const(*c)),
        _ => None,
    };
    Some((*op, side(a)?, side(b)?))
}

/// True when [`lower`] produces a batch plan for this rule's naive plan
/// — the `--explain-plan` report's "batched" tag.
pub(crate) fn batch_eligible(rule: &RRule, plan: &RulePlan) -> bool {
    lower(rule, plan).is_some()
}

/// Lowers a naive rule plan into a [`BatchPlan`], or `None` when the
/// rule is outside the batch subset (see module docs).
pub(crate) fn lower(rule: &RRule, plan: &RulePlan) -> Option<BatchPlan> {
    if !rule.existentials.is_empty() {
        return None;
    }
    let mut var_src: Vec<Option<Src>> = vec![None; rule.nvars];
    let mut steps: Vec<BStep> = Vec::new();
    let mut n_slots = 0u16;
    let mut n_lets = 0u16;
    let mut n_depths = 1usize;
    let mut lead: Option<(Lead, u32)> = None;
    let mut needs_cols: Vec<u32> = Vec::new();
    let mut needs_csr: Vec<(u32, u64)> = Vec::new();
    for (si, step) in plan.steps.iter().enumerate() {
        match step {
            Step::Atom(a) => {
                if a.key_ops.len() > MAX_KEY {
                    return None;
                }
                let slot;
                if si == 0 {
                    // The planner keys the first step on constants only.
                    let key: Option<Box<[Const]>> = a
                        .key_ops
                        .iter()
                        .map(|k| match k {
                            KeyOp::Const(c) => Some(*c),
                            KeyOp::Var(_) => None,
                        })
                        .collect();
                    let key = key?;
                    let l = if a.mask == 0 {
                        Lead::Scan
                    } else if a.full_key() {
                        Lead::Find { key }
                    } else {
                        needs_csr.push((a.pred, a.mask));
                        Lead::Rows { mask: a.mask, key }
                    };
                    lead = Some((l, a.pred));
                    needs_cols.push(a.pred);
                    slot = 0;
                    n_slots = 1;
                } else if a.full_key() {
                    // Pure membership: no columns defined, no slot.
                    let key: Box<[Src]> = a
                        .key_ops
                        .iter()
                        .map(|k| match k {
                            KeyOp::Const(c) => Some(Src::Const(*c)),
                            KeyOp::Var(v) => var_src[*v as usize],
                        })
                        .collect::<Option<_>>()?;
                    steps.push(BStep::Member {
                        pred: a.pred,
                        key,
                        want: true,
                    });
                    continue;
                } else {
                    slot = n_slots;
                    n_slots += 1;
                    n_depths += 1;
                    needs_cols.push(a.pred);
                    if a.mask == 0 {
                        steps.push(BStep::CrossScan {
                            slot,
                            pred: a.pred,
                            carry_slots: Box::new([]),
                            carry_lets: Box::new([]),
                        });
                    } else {
                        let key: Box<[Src]> = a
                            .key_ops
                            .iter()
                            .map(|k| match k {
                                KeyOp::Const(c) => Some(Src::Const(*c)),
                                KeyOp::Var(v) => var_src[*v as usize],
                            })
                            .collect::<Option<_>>()?;
                        needs_csr.push((a.pred, a.mask));
                        steps.push(BStep::Probe {
                            slot,
                            pred: a.pred,
                            mask: a.mask,
                            key,
                            carry_slots: Box::new([]),
                            carry_lets: Box::new([]),
                        });
                    }
                }
                // Check elision, mirroring the tuple chain: only ops at
                // unmasked columns run — binds record the defining
                // column, checks become filters.
                for (col, op) in a.ops.iter().enumerate() {
                    if a.mask & (1u64 << col) != 0 {
                        continue;
                    }
                    let here = Src::Col {
                        pred: a.pred,
                        slot,
                        col: col as u16,
                    };
                    match op {
                        TermOp::CheckConst(c) => steps.push(BStep::Filter {
                            op: CmpOp::Eq,
                            lhs: here,
                            rhs: Src::Const(*c),
                        }),
                        TermOp::CheckVar(v) => steps.push(BStep::Filter {
                            op: CmpOp::Eq,
                            lhs: here,
                            rhs: var_src[*v as usize]?,
                        }),
                        TermOp::Bind(v) => var_src[*v as usize] = Some(here),
                    }
                }
            }
            Step::Negated(li) => {
                let RLiteral::Negated(atom) = &rule.body[*li] else {
                    unreachable!("Negated step points at a negated literal")
                };
                if atom.terms.len() > MAX_KEY {
                    return None;
                }
                let key: Box<[Src]> = atom
                    .terms
                    .iter()
                    .map(|t| term_src(t, &var_src))
                    .collect::<Option<_>>()?;
                steps.push(BStep::Member {
                    pred: atom.pred,
                    key,
                    want: false,
                });
            }
            Step::Cond(li) => {
                let RLiteral::Cond(e) = &rule.body[*li] else {
                    unreachable!("Cond step points at a condition literal")
                };
                let (op, lhs, rhs) = cmp_shape(e, &var_src)?;
                steps.push(BStep::Filter { op, lhs, rhs });
            }
            Step::Let(li) => {
                let RLiteral::Let(v, e) = &rule.body[*li] else {
                    unreachable!("Let step points at a let literal")
                };
                let expr = match e {
                    RExpr::Const(c) => BExpr::Src(Src::Const(*c)),
                    RExpr::Var(x) => BExpr::Src(var_src[*x as usize]?),
                    RExpr::Cmp(..) => {
                        let (op, a, b) = cmp_shape(e, &var_src)?;
                        BExpr::Cmp(op, a, b)
                    }
                    // Arithmetic can fail (type errors); excluding it
                    // keeps the batch path infallible, so batch
                    // breadth-first evaluation can never surface a
                    // different first error than tuple depth-first.
                    RExpr::Binary(..) | RExpr::Call { .. } => return None,
                };
                let dst = n_lets;
                n_lets += 1;
                steps.push(BStep::Compute { dst, expr });
                match var_src[*v as usize] {
                    // Bound let: equality check against the existing
                    // binding, exactly the tuple semantics.
                    Some(prev) => steps.push(BStep::Filter {
                        op: CmpOp::Eq,
                        lhs: Src::LetCol(dst),
                        rhs: prev,
                    }),
                    None => var_src[*v as usize] = Some(Src::LetCol(dst)),
                }
            }
            Step::Agg(_) => return None,
        }
    }
    let (lead, lead_pred) = lead?;
    let heads: Box<[(u32, Box<[Src]>)]> = rule
        .head
        .iter()
        .map(|h| {
            h.terms
                .iter()
                .map(|t| term_src(t, &var_src))
                .collect::<Option<Box<[Src]>>>()
                .map(|srcs| (h.pred, srcs))
        })
        .collect::<Option<_>>()?;
    fill_carries(&mut steps, &heads);
    needs_cols.sort_unstable();
    needs_cols.dedup();
    needs_csr.sort_unstable();
    needs_csr.dedup();
    let blocks = sel_blocks(&steps);
    Some(BatchPlan {
        lead,
        lead_pred,
        steps: steps.into_boxed_slice(),
        n_slots: n_slots as usize,
        n_lets: n_lets as usize,
        n_depths,
        heads,
        needs_cols: needs_cols.into_boxed_slice(),
        needs_csr: needs_csr.into_boxed_slice(),
        blocks,
    })
}

/// Maximal runs of consecutive [`BStep::Filter`]/[`BStep::Member`]
/// steps. Computes (let bindings) and expansions end a run: a filter
/// never moves across the step that defines a column it reads or the
/// generator that grows the batch.
fn sel_blocks(steps: &[BStep]) -> Box<[(u16, u16)]> {
    let mut blocks = Vec::new();
    let mut start = None;
    for (i, s) in steps.iter().enumerate() {
        let sel_only = matches!(s, BStep::Filter { .. } | BStep::Member { .. });
        match (sel_only, start) {
            (true, None) => start = Some(i),
            (false, Some(b)) => {
                blocks.push((b as u16, (i - b) as u16));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(b) = start {
        blocks.push((b as u16, (steps.len() - b) as u16));
    }
    blocks.into_boxed_slice()
}

/// Computes each expansion step's carry lists: the slots/lets defined
/// before it that any later step (or the emission) still reads. A
/// backward walk accumulates the used sets; carrying only live columns
/// keeps the per-row copy cost of deep join chains minimal.
fn fill_carries(steps: &mut [BStep], heads: &[(u32, Box<[Src]>)]) {
    let mut used_slots: Vec<u16> = Vec::new();
    let mut used_lets: Vec<u16> = Vec::new();
    let note = |s: &Src, used_slots: &mut Vec<u16>, used_lets: &mut Vec<u16>| match s {
        Src::Col { slot, .. } => {
            if !used_slots.contains(slot) {
                used_slots.push(*slot);
            }
        }
        Src::LetCol(l) => {
            if !used_lets.contains(l) {
                used_lets.push(*l);
            }
        }
        Src::Const(_) => {}
    };
    for (_, srcs) in heads {
        for s in srcs.iter() {
            note(s, &mut used_slots, &mut used_lets);
        }
    }
    for step in steps.iter_mut().rev() {
        match step {
            BStep::Probe {
                slot,
                key,
                carry_slots,
                carry_lets,
                ..
            } => {
                // The slot is born here: drop it from the live set so
                // earlier expansions never try to carry it.
                used_slots.retain(|s| s != slot);
                let mut cs = used_slots.clone();
                let mut cl = used_lets.clone();
                cs.sort_unstable();
                cl.sort_unstable();
                *carry_slots = cs.into_boxed_slice();
                *carry_lets = cl.into_boxed_slice();
                for s in key.iter() {
                    note(s, &mut used_slots, &mut used_lets);
                }
            }
            BStep::CrossScan {
                slot,
                carry_slots,
                carry_lets,
                ..
            } => {
                used_slots.retain(|s| s != slot);
                let mut cs = used_slots.clone();
                let mut cl = used_lets.clone();
                cs.sort_unstable();
                cl.sort_unstable();
                *carry_slots = cs.into_boxed_slice();
                *carry_lets = cl.into_boxed_slice();
            }
            BStep::Member { key, .. } => {
                for s in key.iter() {
                    note(s, &mut used_slots, &mut used_lets);
                }
            }
            BStep::Filter { lhs, rhs, .. } => {
                note(lhs, &mut used_slots, &mut used_lets);
                note(rhs, &mut used_slots, &mut used_lets);
            }
            BStep::Compute { dst, expr } => {
                // Same liveness cutoff for computed columns: the column
                // exists only from this step on.
                used_lets.retain(|l| l != dst);
                match expr {
                    BExpr::Src(s) => note(s, &mut used_slots, &mut used_lets),
                    BExpr::Cmp(_, a, b) => {
                        note(a, &mut used_slots, &mut used_lets);
                        note(b, &mut used_slots, &mut used_lets);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Whether every relation the plan scans or probes is currently frozen
/// with the needed layout. Delta-written relations never are, so
/// recursive strata fall back to the tuple chain automatically.
pub(crate) fn ready(bp: &BatchPlan, relations: &[Relation]) -> bool {
    bp.needs_cols
        .iter()
        .all(|&p| relations[p as usize].columnar().is_some())
        && bp.needs_csr.iter().all(|&(p, m)| {
            relations[p as usize]
                .columnar()
                .is_some_and(|c| c.csr(m).is_some())
        })
}

/// One batch of candidate join results: per-slot row arrays + computed
/// columns, all `len` lanes long, refined by the selection vector.
#[derive(Default)]
struct Buf {
    rows: Vec<Vec<u32>>,
    lets: Vec<Vec<Const>>,
    len: usize,
    /// Selected lane indices, ascending. Filters shrink it in place.
    sel: Vec<u32>,
}

impl Buf {
    fn new(n_slots: usize, n_lets: usize) -> Buf {
        Buf {
            rows: vec![Vec::new(); n_slots],
            lets: vec![Vec::new(); n_lets],
            len: 0,
            sel: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for r in &mut self.rows {
            r.clear();
        }
        for l in &mut self.lets {
            l.clear();
        }
        self.len = 0;
        self.sel.clear();
    }
}

/// Reusable gather/staging buffers for one rule evaluation.
#[derive(Default)]
struct Scratch {
    ra: Vec<u8>,
    ka: Vec<u64>,
    rb: Vec<u8>,
    kb: Vec<u64>,
    /// Kernel output: surviving dense indices into the selection.
    idx: Vec<u32>,
    /// Compute staging (values per selected lane).
    vals: Vec<Const>,
    /// Emission staging (one head tuple).
    tuple: Vec<Const>,
    /// Per-step membership cache for single-strip-column member keys:
    /// `cache[row]` is whether the member predicate holds for that row
    /// of the key's source strip. Built lazily on a step's first batch;
    /// one lookup per *source row* instead of one per expanded lane.
    member_cache: Vec<Option<Box<[bool]>>>,
    /// Adaptive execution order per selection block (original step
    /// indices), re-sorted by observed pass rate after every batch.
    block_order: Vec<Vec<u16>>,
    /// Cumulative lanes in / lanes surviving per step, driving the sort.
    step_in: Vec<u64>,
    step_out: Vec<u64>,
}

/// A [`Src`] resolved against one batch: strip and column references
/// hoisted out of the per-lane loops, so reading a lane is two indexed
/// loads with no relation lookup or enum walk.
enum RSrc<'a> {
    /// Frozen column strip, indirected through the slot's row array.
    Strip {
        strip: &'a [Const],
        rows: &'a [u32],
    },
    /// Computed column, indexed by lane directly.
    Lets(&'a [Const]),
    Const(Const),
}

impl RSrc<'_> {
    #[inline(always)]
    fn get(&self, lane: usize) -> Const {
        match self {
            RSrc::Strip { strip, rows } => strip[rows[lane] as usize],
            RSrc::Lets(col) => col[lane],
            RSrc::Const(c) => *c,
        }
    }
}

/// Resolves `src` against `buf` ([`ready`] guarantees the strips exist).
fn resolve<'a>(src: &Src, relations: &'a [Relation], buf: &'a Buf) -> RSrc<'a> {
    match *src {
        Src::Const(c) => RSrc::Const(c),
        Src::LetCol(i) => RSrc::Lets(&buf.lets[i as usize]),
        Src::Col { pred, slot, col } => RSrc::Strip {
            strip: relations[pred as usize]
                .columnar()
                .expect("batch inputs are frozen (ready)")
                .col(col as usize),
            rows: &buf.rows[slot as usize],
        },
    }
}

/// Evaluates a batch plan against `relations`, emitting into `ctx`
/// exactly the `Derived` sequence the tuple chain would. `driver`
/// optionally restricts the leading atom to pre-enumerated candidate
/// rows (parallel chunking), as in the tuple executors. Caller
/// guarantees `!ctx.provenance` and [`ready`].
pub(crate) fn eval_batch(
    bp: &BatchPlan,
    relations: &[Relation],
    driver: Option<&[u32]>,
    ctx: &mut RunCtx<'_>,
) -> Result<()> {
    let mut bufs: Vec<Buf> = (0..bp.n_depths)
        .map(|_| Buf::new(bp.n_slots, bp.n_lets))
        .collect();
    let mut scratch = Scratch::default();
    scratch.member_cache.resize(bp.steps.len(), None);
    scratch.block_order = bp
        .blocks
        .iter()
        .map(|&(s, l)| (s..s + l).collect())
        .collect();
    scratch.step_in = vec![0; bp.steps.len()];
    scratch.step_out = vec![0; bp.steps.len()];
    let rel = &relations[bp.lead_pred as usize];
    match driver {
        // Driver rows are pre-filtered (probe key; naive ⇒ no delta).
        Some(rows) => feed_lead(bp, relations, &mut bufs, rows, &mut scratch, ctx)?,
        None => match &bp.lead {
            Lead::Scan => {
                let n = rel.len() as u32;
                let mut start = 0u32;
                while start < n {
                    let take = BATCH_WIDTH.min((n - start) as usize) as u32;
                    bufs[0].rows[0].extend(start..start + take);
                    bufs[0].len = take as usize;
                    start += take;
                    if bufs[0].len == BATCH_WIDTH {
                        flush(bp, relations, &mut bufs, 0, &mut scratch, ctx)?;
                    }
                }
            }
            Lead::Rows { mask, key } => {
                feed_lead(
                    bp,
                    relations,
                    &mut bufs,
                    rel.lookup_rows(*mask, key),
                    &mut scratch,
                    ctx,
                )?;
            }
            Lead::Find { key } => {
                if let Some(row) = rel.find(key) {
                    bufs[0].rows[0].push(row);
                    bufs[0].len = 1;
                }
            }
        },
    }
    if bufs[0].len > 0 {
        // Tail batch (< WIDTH).
        flush(bp, relations, &mut bufs, 0, &mut scratch, ctx)?;
    }
    Ok(())
}

/// Feeds pre-enumerated lead rows into depth 0 in `BATCH_WIDTH` chunks.
fn feed_lead(
    bp: &BatchPlan,
    relations: &[Relation],
    bufs: &mut [Buf],
    rows: &[u32],
    scratch: &mut Scratch,
    ctx: &mut RunCtx<'_>,
) -> Result<()> {
    let mut m = 0usize;
    while m < rows.len() {
        let take = BATCH_WIDTH.min(rows.len() - m);
        bufs[0].rows[0].extend_from_slice(&rows[m..m + take]);
        bufs[0].len = take;
        m += take;
        if bufs[0].len == BATCH_WIDTH {
            flush(bp, relations, bufs, 0, scratch, ctx)?;
        }
    }
    Ok(())
}

/// Selects all `len` lanes of `bufs[0]`, runs the remaining steps, then
/// resets the batch for refilling. `bufs` is the depth sub-slice whose
/// first element is the batch being flushed.
fn flush(
    bp: &BatchPlan,
    relations: &[Relation],
    bufs: &mut [Buf],
    step_idx: usize,
    scratch: &mut Scratch,
    ctx: &mut RunCtx<'_>,
) -> Result<()> {
    {
        let out = &mut bufs[0];
        let n = out.len as u32;
        out.sel.clear();
        out.sel.extend(0..n);
    }
    let r = run_steps(bp, relations, bufs, step_idx, scratch, ctx);
    bufs[0].clear();
    r
}

/// Compacts a selection in place to the dense survivor indices in
/// `idx` (ascending, so `w <= i` and in-place writes are safe).
fn compact_sel(sel: &mut Vec<u32>, idx: &[u32]) {
    let mut w = 0usize;
    for &i in idx {
        sel[w] = sel[i as usize];
        w += 1;
    }
    sel.truncate(w);
}

/// Runs plan steps from `step_idx` over the selected lanes of `bufs[0]`,
/// expanding into the deeper batches of `bufs[1..]` as needed, and emits
/// at the end. All depth indexing is relative: expansions recurse with
/// the sub-slice starting at their output depth.
fn run_steps(
    bp: &BatchPlan,
    relations: &[Relation],
    bufs: &mut [Buf],
    step_idx: usize,
    scratch: &mut Scratch,
    ctx: &mut RunCtx<'_>,
) -> Result<()> {
    let mut i = step_idx;
    while i < bp.steps.len() {
        if bufs[0].sel.is_empty() {
            return Ok(());
        }
        // Selection blocks run as a unit in their adaptive order.
        if let Some(bi) = bp.blocks.iter().position(|&(s, _)| s as usize == i) {
            run_block(bp, relations, &mut bufs[0], bi, scratch);
            i += bp.blocks[bi].1 as usize;
            continue;
        }
        match &bp.steps[i] {
            BStep::Filter { .. } | BStep::Member { .. } => {
                unreachable!("selection steps always start inside a block")
            }
            BStep::Compute { dst, expr } => {
                scratch.vals.clear();
                {
                    let buf = &bufs[0];
                    match expr {
                        BExpr::Src(s) => {
                            let rs = resolve(s, relations, buf);
                            for &lane in &buf.sel {
                                scratch.vals.push(rs.get(lane as usize));
                            }
                        }
                        BExpr::Cmp(op, a, b) => {
                            let ra = resolve(a, relations, buf);
                            let rb = resolve(b, relations, buf);
                            for &lane in &buf.sel {
                                scratch.vals.push(Const::Bool(compare(
                                    *op,
                                    ra.get(lane as usize),
                                    rb.get(lane as usize),
                                )));
                            }
                        }
                    }
                }
                let buf = &mut bufs[0];
                let col = &mut buf.lets[*dst as usize];
                col.clear();
                col.resize(buf.len, Const::Bool(false));
                for (k, &lane) in buf.sel.iter().enumerate() {
                    col[lane as usize] = scratch.vals[k];
                }
            }
            BStep::Probe {
                slot,
                pred,
                mask,
                key,
                carry_slots,
                carry_lets,
            } => {
                let (cur, rest) = bufs.split_first_mut().expect("expansion has a next depth");
                return expand(
                    bp,
                    relations,
                    cur,
                    rest,
                    i + 1,
                    *slot,
                    *pred,
                    Some((*mask, key)),
                    carry_slots,
                    carry_lets,
                    scratch,
                    ctx,
                );
            }
            BStep::CrossScan {
                slot,
                pred,
                carry_slots,
                carry_lets,
            } => {
                let (cur, rest) = bufs.split_first_mut().expect("expansion has a next depth");
                return expand(
                    bp,
                    relations,
                    cur,
                    rest,
                    i + 1,
                    *slot,
                    *pred,
                    None,
                    carry_slots,
                    carry_lets,
                    scratch,
                    ctx,
                );
            }
        }
        i += 1;
    }
    emit(bp, relations, &bufs[0], scratch, ctx);
    Ok(())
}

/// Runs the `bi`-th selection block over `buf` in its current adaptive
/// order, then re-sorts the order by cumulative pass rate so the most
/// selective step runs first on later batches. Selection steps only
/// shrink `sel` (the survivor set is order-independent), so any order
/// yields the same lanes — and the same emissions — as plan order.
fn run_block(
    bp: &BatchPlan,
    relations: &[Relation],
    buf: &mut Buf,
    bi: usize,
    scratch: &mut Scratch,
) {
    let order = std::mem::take(&mut scratch.block_order[bi]);
    for &si in &order {
        if buf.sel.is_empty() {
            break;
        }
        let before = buf.sel.len() as u64;
        run_sel_step(&bp.steps[si as usize], si as usize, relations, buf, scratch);
        scratch.step_in[si as usize] += before;
        scratch.step_out[si as usize] += buf.sel.len() as u64;
    }
    let mut order = order;
    if order.len() > 1 {
        let rate = |s: u16| {
            let inn = scratch.step_in[s as usize];
            if inn == 0 {
                1.0
            } else {
                scratch.step_out[s as usize] as f64 / inn as f64
            }
        };
        order.sort_by(|&a, &b| {
            rate(a)
                .partial_cmp(&rate(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    scratch.block_order[bi] = order;
}

/// One selection-only step (filter or membership test) over the
/// selected lanes of `buf`, shrinking `buf.sel` in place.
fn run_sel_step(
    step: &BStep,
    step_idx: usize,
    relations: &[Relation],
    buf: &mut Buf,
    scratch: &mut Scratch,
) {
    match step {
        BStep::Filter { op, lhs, rhs } => {
            scratch.idx.clear();
            {
                let buf = &*buf;
                let exact = gather(lhs, relations, buf, &mut scratch.ra, &mut scratch.ka)
                    && gather(rhs, relations, buf, &mut scratch.rb, &mut scratch.kb);
                if exact {
                    select_cmp(
                        *op,
                        &scratch.ra,
                        &scratch.ka,
                        &scratch.rb,
                        &scratch.kb,
                        &mut scratch.idx,
                    );
                } else {
                    // Huge-magnitude ints break the packed order (see
                    // kernels docs): compare the lanes exactly.
                    let a = resolve(lhs, relations, buf);
                    let b = resolve(rhs, relations, buf);
                    for (k, &lane) in buf.sel.iter().enumerate() {
                        if compare(*op, a.get(lane as usize), b.get(lane as usize)) {
                            scratch.idx.push(k as u32);
                        }
                    }
                }
            }
            compact_sel(&mut buf.sel, &scratch.idx);
        }
        BStep::Member { pred, key, want } => {
            scratch.idx.clear();
            if let [Src::Col {
                pred: sp,
                slot,
                col,
            }] = key[..]
            {
                // Single strip-column key: membership depends only on
                // the source row, so test each source row once and
                // answer every lane with an array load.
                let rel = &relations[*pred as usize];
                let cache = scratch.member_cache[step_idx].get_or_insert_with(|| {
                    relations[sp as usize]
                        .columnar()
                        .expect("batch inputs are frozen (ready)")
                        .col(col as usize)
                        .iter()
                        .map(|c| rel.find(std::slice::from_ref(c)).is_some())
                        .collect()
                });
                let rows = &buf.rows[slot as usize];
                for (k, &lane) in buf.sel.iter().enumerate() {
                    if cache[rows[lane as usize] as usize] == *want {
                        scratch.idx.push(k as u32);
                    }
                }
            } else {
                let buf = &*buf;
                let rel = &relations[*pred as usize];
                let rkey: Vec<RSrc> = key.iter().map(|s| resolve(s, relations, buf)).collect();
                let mut kb = [Const::Bool(false); MAX_KEY];
                let klen = key.len();
                // Present/absent per distinct key; the canonical
                // per-round sort clusters equal keys, so memoizing
                // the last one skips most map lookups.
                let mut memo: Option<([Const; MAX_KEY], bool)> = None;
                for (k, &lane) in buf.sel.iter().enumerate() {
                    for (j, rs) in rkey.iter().enumerate() {
                        kb[j] = rs.get(lane as usize);
                    }
                    let present = match &memo {
                        Some((mk, p)) if mk[..klen] == kb[..klen] => *p,
                        _ => {
                            let p = rel.find(&kb[..klen]).is_some();
                            memo = Some((kb, p));
                            p
                        }
                    };
                    if present == *want {
                        scratch.idx.push(k as u32);
                    }
                }
            }
            compact_sel(&mut buf.sel, &scratch.idx);
        }
        _ => unreachable!("selection blocks contain only filters and members"),
    }
}

/// Packs `src` for every selected lane of `buf` into `ranks`/`keys`;
/// returns whether every lane packed order-exactly.
fn gather(
    src: &Src,
    relations: &[Relation],
    buf: &Buf,
    ranks: &mut Vec<u8>,
    keys: &mut Vec<u64>,
) -> bool {
    ranks.clear();
    keys.clear();
    let mut exact = true;
    match resolve(src, relations, buf) {
        RSrc::Const(c) => {
            let (r, k) = pack(c);
            ranks.resize(buf.sel.len(), r);
            keys.resize(buf.sel.len(), k);
            exact = pack_exact(c);
        }
        RSrc::Strip { strip, rows } => {
            ranks.reserve(buf.sel.len());
            keys.reserve(buf.sel.len());
            for &lane in &buf.sel {
                let c = strip[rows[lane as usize] as usize];
                let (r, k) = pack(c);
                ranks.push(r);
                keys.push(k);
                exact &= pack_exact(c);
            }
        }
        RSrc::Lets(col) => {
            ranks.reserve(buf.sel.len());
            keys.reserve(buf.sel.len());
            for &lane in &buf.sel {
                let c = col[lane as usize];
                let (r, k) = pack(c);
                ranks.push(r);
                keys.push(k);
                exact &= pack_exact(c);
            }
        }
    }
    exact
}

/// Expansion: enumerates the join matches of every selected lane of
/// `cur` into `rest[0]`, flushing each full output batch through the
/// remaining steps before generating more — ascending lane order plus
/// flush-before-continue is what preserves the tuple chain's
/// depth-first emission order. Copies are chunked: the new slot's rows
/// arrive via slice/range extends and every carried column is a
/// run-length `resize` (one value per input lane), not per-row pushes.
#[allow(clippy::too_many_arguments)]
fn expand(
    bp: &BatchPlan,
    relations: &[Relation],
    cur: &Buf,
    rest: &mut [Buf],
    next_step: usize,
    slot: u16,
    pred: u32,
    probe: Option<(u64, &[Src])>,
    carry_slots: &[u16],
    carry_lets: &[u16],
    scratch: &mut Scratch,
    ctx: &mut RunCtx<'_>,
) -> Result<()> {
    let rel = &relations[pred as usize];
    rest[0].clear();
    let rkey: Vec<RSrc> = probe
        .map(|(_, key)| key.iter().map(|s| resolve(s, relations, cur)).collect())
        .unwrap_or_default();
    let mut kb = [Const::Bool(false); MAX_KEY];
    let mut memo: Option<([Const; MAX_KEY], &[u32])> = None;
    for &lane in &cur.sel {
        let lane = lane as usize;
        // Cross scans enumerate every row; probes the CSR matches.
        let matches: &[u32] = match probe {
            None => &[],
            Some((mask, key)) => {
                let klen = key.len();
                for (j, rs) in rkey.iter().enumerate() {
                    kb[j] = rs.get(lane);
                }
                match &memo {
                    // Canonical round ordering clusters equal keys
                    // (e.g. close-link pairs share a holder), so the
                    // last key's row list usually answers directly.
                    Some((mk, rows)) if mk[..klen] == kb[..klen] => rows,
                    _ => {
                        let rows = rel.lookup_rows(mask, &kb[..klen]);
                        memo = Some((kb, rows));
                        rows
                    }
                }
            }
        };
        let total = if probe.is_none() {
            rel.len()
        } else {
            matches.len()
        };
        let mut m = 0usize;
        while m < total {
            let out = &mut rest[0];
            let take = (BATCH_WIDTH - out.len).min(total - m);
            match probe {
                Some(_) => out.rows[slot as usize].extend_from_slice(&matches[m..m + take]),
                None => out.rows[slot as usize].extend(m as u32..(m + take) as u32),
            }
            for &s in carry_slots {
                let v = cur.rows[s as usize][lane];
                let r = &mut out.rows[s as usize];
                r.resize(r.len() + take, v);
            }
            for &l in carry_lets {
                let v = cur.lets[l as usize][lane];
                let c = &mut out.lets[l as usize];
                c.resize(c.len() + take, v);
            }
            out.len += take;
            m += take;
            if out.len == BATCH_WIDTH {
                flush(bp, relations, rest, next_step, scratch, ctx)?;
            }
        }
    }
    if rest[0].len > 0 {
        flush(bp, relations, rest, next_step, scratch, ctx)?;
    }
    Ok(())
}

/// Emits every selected lane's head tuples, replicating the tuple
/// chain's provenance-off emission exactly: relation-level dup skip,
/// then the workspace `emitted` set, then push. Head sources are
/// resolved once per batch; the lane loop stays outermost so multi-head
/// rules keep the tuple chain's per-row head order.
fn emit(
    bp: &BatchPlan,
    relations: &[Relation],
    buf: &Buf,
    scratch: &mut Scratch,
    ctx: &mut RunCtx<'_>,
) {
    let heads: Vec<(u32, Vec<RSrc>)> = bp
        .heads
        .iter()
        .map(|(p, srcs)| {
            (
                *p,
                srcs.iter().map(|s| resolve(s, relations, buf)).collect(),
            )
        })
        .collect();
    for &lane in &buf.sel {
        for (pred, rsrcs) in &heads {
            scratch.tuple.clear();
            for rs in rsrcs {
                scratch.tuple.push(rs.get(lane as usize));
            }
            if relations[*pred as usize].find(&scratch.tuple).is_some() {
                continue;
            }
            if ctx
                .ws
                .emitted
                .get(pred)
                .is_some_and(|s| s.contains(scratch.tuple.as_slice()))
            {
                continue;
            }
            let tuple: crate::value::Tuple = scratch.tuple.as_slice().into();
            ctx.ws
                .emitted
                .entry(*pred)
                .or_default()
                .insert(tuple.clone());
            ctx.out.push(Derived {
                pred: *pred,
                tuple,
                prov: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Empty batch: no survivors in, no survivors out — and the loop in
    /// [`compact_sel`] must not index past the (empty) selection.
    #[test]
    fn compact_sel_empty_batch() {
        let mut sel: Vec<u32> = Vec::new();
        compact_sel(&mut sel, &[]);
        assert!(sel.is_empty());
        // A populated selection where the kernel kept nothing.
        let mut sel = vec![0, 1, 2, 3];
        compact_sel(&mut sel, &[]);
        assert!(sel.is_empty());
    }

    /// All-selected: the identity survivor list leaves the selection
    /// untouched, including a non-contiguous one from earlier filters.
    #[test]
    fn compact_sel_all_selected() {
        let mut sel = vec![3, 7, 9, 42, 1023];
        let idx: Vec<u32> = (0..sel.len() as u32).collect();
        compact_sel(&mut sel, &idx);
        assert_eq!(sel, vec![3, 7, 9, 42, 1023]);
    }

    /// Tail batch smaller than [`BATCH_WIDTH`]: survivor indices are
    /// *dense positions into the selection*, not lane numbers, so a
    /// partial last batch compacts exactly like a full one.
    #[test]
    fn compact_sel_tail_shorter_than_batch_width() {
        let n = 37; // deliberately < BATCH_WIDTH and not a multiple of 8
        assert!(n < BATCH_WIDTH);
        let mut sel: Vec<u32> = (0..n as u32).collect();
        // Keep every third survivor, by dense position.
        let idx: Vec<u32> = (0..n as u32).step_by(3).collect();
        compact_sel(&mut sel, &idx);
        assert_eq!(sel, (0..n as u32).step_by(3).collect::<Vec<_>>());
        // Second refinement over the already-sparse selection.
        compact_sel(&mut sel, &[0, 2, 4]);
        assert_eq!(sel, vec![0, 6, 12]);
    }

    /// Selection blocks are the maximal runs of filters/members; computes
    /// and expansions end a run (they define columns or change depth, so
    /// they must not be reordered past).
    #[test]
    fn sel_blocks_split_on_non_selection_steps() {
        let f = || BStep::Filter {
            op: CmpOp::Ne,
            lhs: Src::LetCol(0),
            rhs: Src::LetCol(1),
        };
        let m = || BStep::Member {
            pred: 0,
            key: Box::new([Src::LetCol(0)]),
            want: true,
        };
        let c = || BStep::Compute {
            dst: 0,
            expr: BExpr::Src(Src::LetCol(0)),
        };
        let steps = [f(), m(), f(), c(), f(), c(), m(), f()];
        assert_eq!(&*sel_blocks(&steps), &[(0, 3), (4, 1), (6, 2)]);
        assert!(sel_blocks(&[c()]).is_empty());
        assert!(sel_blocks(&[]).is_empty());
    }
}
