//! # datalog — a Vadalog-style Datalog± reasoning engine
//!
//! This crate is the reproduction's stand-in for the proprietary **Vadalog**
//! engine the paper builds on \[Bellomarini et al., VLDB 2018\]. It
//! implements the language features the paper's programs (Algorithms 2–9)
//! actually use:
//!
//! * plain Datalog with recursion, evaluated **semi-naively** to fixpoint;
//! * **existential rules** (Datalog±): head variables not bound by the body
//!   are Skolemized into labelled nulls (the "Skolem chase");
//! * explicit **Skolem functions** `#sk_name(args)` with the paper's three
//!   OID-invention properties — determinism, injectivity, disjoint ranges;
//! * **monotonic aggregation** — `msum`, `mmax`, `mmin`, `mcount`, `mprod`
//!   with contributor keys (`msum(W, <Z>)`), shared per head-predicate/group
//!   across rules, exactly the semantics Algorithm 8 of the paper relies on
//!   ("the two monotonic summations contribute to the same total");
//! * **stratified negation** (`not atom(...)`);
//! * comparisons and arithmetic expressions over constants;
//! * **external functions** registered from Rust (the paper's
//!   `#GraphEmbedClust`, `#GenerateBlocks`, `#LinkProbability` hooks);
//! * `@output` / `@post` directives (post-processing, e.g. keep the maximum
//!   aggregate value per group);
//! * optional **provenance** recording and derivation-tree explanations
//!   (the paper's "explainable and unambiguous" property);
//! * a **static analyzer** ([`analysis`]) with stable diagnostic codes
//!   covering safety, stratifiability, arity consistency, dead rules,
//!   style lints and wardedness; [`Engine::new`] rejects programs with
//!   error-level diagnostics unless configured otherwise.
//!
//! ## Quick start
//!
//! ```
//! use datalog::{Database, Engine, Program};
//!
//! let program = Program::parse(
//!     r#"
//!     @output("control").
//!     control(X, X) :- company(X).
//!     control(X, Y) :- control(X, Z), own(Z, Y, W), msum(W, <Z>) > 0.5.
//!     "#,
//! )
//! .unwrap();
//! let mut db = Database::new();
//! db.assert_str_facts("company", &[&["a"], &["b"], &["c"]]);
//! db.fact("own").sym("a").sym("b").float(0.6).assert();
//! db.fact("own").sym("b").sym("c").float(0.51).assert();
//! let engine = Engine::new(&program).unwrap();
//! engine.run(&mut db).unwrap();
//! assert!(db.contains_str_fact("control", &["a", "c"]));
//! ```

pub mod analysis;
pub mod ast;
pub mod builtins;
pub mod db;
pub mod error;
pub mod eval;
pub mod explain;
pub mod fx;
pub mod incr;
pub mod parser;
pub mod value;
pub mod warded;

pub use analysis::{
    analyze, analyze_with, Adornment, Analysis, AnalysisConfig, BindingReport, DiagCode,
    Diagnostic, MagicRewrite, Severity,
};
pub use ast::{Program, Query, Rule};
pub use builtins::FunctionRegistry;
pub use db::{Database, FactBuilder};
pub use error::DatalogError;
pub use eval::{
    compile_default, goal_matches, set_compile_default, set_shards_default, shard_of_const,
    shards_default, Engine, EngineOptions, QueryAnswer, RunStats,
};
pub use explain::Derivation;
pub use incr::{ChangeSet, IncrementalEngine, SessionInfo, Update, UpdateStats};
pub use value::Const;
pub use warded::{check as check_warded, WardedReport};
