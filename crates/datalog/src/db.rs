//! Fact storage: interned symbols, indexed relations, Skolem table.
//!
//! The [`Database`] is the *extensional component* of a knowledge graph in
//! the paper's terminology — plus, after running an [`crate::Engine`], the
//! derived intensional facts. Relations deduplicate tuples (set semantics,
//! like Vadalog's chase with isomorphism checks) and maintain hash indexes
//! on the column subsets the compiled rule plans need.

use std::collections::hash_map::Entry;
use std::sync::Arc;

use crate::error::{DatalogError, Result};
use crate::fx::FxHashMap;
use crate::value::{Const, Tuple};

/// Interner for string constants.
///
/// Entries are shared `Arc<str>` allocations, so cloning the table — which
/// [`Engine::query`](crate::Engine::query) does for every scratch copy —
/// bumps refcounts instead of reallocating every interned string.
#[derive(Default, Debug, Clone)]
pub struct SymbolTable {
    names: Vec<Arc<str>>,
    index: FxHashMap<Arc<str>, u32>,
}

impl SymbolTable {
    /// Interns a string, returning its symbol id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        let shared: Arc<str> = Arc::from(s);
        self.names.push(shared.clone());
        self.index.insert(shared, id);
        id
    }

    /// Resolves a symbol id to its string.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Id of an already-interned string, without interning it.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbols are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned strings in interning order (id = position). Snapshot
    /// writers dump this verbatim so a reload re-interns every symbol to
    /// its original id — the property that makes recovery byte-faithful
    /// (round sorts compare `Const::Sym` by id, and aggregate emission
    /// order follows the sorts).
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &str> {
        self.names.iter().map(|n| &**n)
    }
}

/// Deterministic, injective OID invention (Skolem) table.
///
/// Distinct `(functor, args)` pairs receive distinct sequential null ids,
/// realizing the paper's three properties: determinism (same input → same
/// OID), injectivity (no two inputs share an OID), and disjoint ranges
/// (different functors never collide, because the functor is part of the
/// key).
#[derive(Default, Debug, Clone)]
pub struct SkolemTable {
    map: FxHashMap<(u32, Tuple), u64>,
    /// Reverse map, parallel to the sequential ids: `defs[id] = (functor,
    /// args)`. Lets nulls be rendered by their *structural* definition,
    /// which is stable across evaluations even though the numeric ids
    /// depend on invention order.
    defs: Vec<(u32, Tuple)>,
}

impl SkolemTable {
    /// Returns the OID for `functor(args)`, inventing one if new.
    pub fn apply(&mut self, functor: u32, args: &[Const]) -> u64 {
        let next = self.map.len() as u64;
        match self.map.entry((functor, args.into())) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                let key = v.key().clone();
                self.defs.push(key);
                *v.insert(next)
            }
        }
    }

    /// The `(functor, args)` pair a null id was invented for.
    pub fn definition(&self, id: u64) -> Option<(u32, &[Const])> {
        self.defs.get(id as usize).map(|(f, args)| (*f, &args[..]))
    }

    /// Number of invented OIDs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no OIDs have been invented.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Provenance of a derived fact: which rule fired on which parent facts.
/// The `Ord` derive (rule, then parents) gives derivations a canonical
/// order within a fixpoint round.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProvEntry {
    /// Index of the rule in the program.
    pub rule: u32,
    /// Parent facts as `(predicate, row)` pairs.
    pub parents: Vec<(u32, u32)>,
}

/// Frozen column-major image of a relation: one contiguous strip per
/// column, plus CSR-style adjacency lists for the probe keys the
/// compiled plans use (single- or multi-column). Built by
/// [`Relation::freeze_columnar`] for relations that are *stable* during
/// a stratum (no rule head writes them), shared by `Arc` so cloning a
/// database stays a refcount bump, and invalidated by any mutation.
#[derive(Debug)]
pub(crate) struct Columnar {
    /// `cols[c][row]` — per-column strips; scans touch only the columns
    /// their unification ops actually read, over contiguous memory.
    cols: Vec<Box<[Const]>>,
    /// Adjacency per probe shape: column bitmask → CSR over those columns.
    csr: FxHashMap<u64, Csr>,
}

impl Columnar {
    /// The strip of column `c`.
    pub(crate) fn col(&self, c: usize) -> &[Const] {
        &self.cols[c]
    }

    /// The adjacency for `mask`, if one was frozen.
    pub(crate) fn csr(&self, mask: u64) -> Option<&Csr> {
        self.csr.get(&mask)
    }
}

/// Compressed sparse rows over one or more columns: distinct keys
/// (flattened `width` consts each, sorted by the lexicographic total
/// [`Const`] order), per-key offsets, and a flat row array grouped by
/// key. Within a key, rows keep insertion order — the same enumeration
/// order a hash index produces, which the byte-identity contract needs.
#[derive(Debug)]
pub(crate) struct Csr {
    width: usize,
    keys: Vec<Const>,
    offsets: Vec<u32>,
    rows: Vec<u32>,
}

impl Csr {
    /// Builds the adjacency over the key columns listed in `key_cols`
    /// (ascending mask-bit order — the same projection order as
    /// [`key_of`]) for `n` rows of the given strips.
    fn build(strips: &[Box<[Const]>], key_cols: &[usize], n: usize) -> Csr {
        let width = key_cols.len();
        let key_at = |row: u32| key_cols.iter().map(move |&c| strips[c][row as usize]);
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Stable sort: rows arrive in increasing row id, so equal keys
        // keep insertion order — identical to a hash index's push order.
        order.sort_by(|&a, &b| key_at(a).cmp(key_at(b)));
        let mut keys: Vec<Const> = Vec::new();
        let mut offsets = vec![0u32];
        let mut rows = Vec::with_capacity(n);
        for row in order {
            let prev = keys.len().wrapping_sub(width);
            if keys.is_empty() || !key_at(row).eq(keys[prev..].iter().copied()) {
                if !keys.is_empty() {
                    offsets.push(rows.len() as u32);
                }
                keys.extend(key_at(row));
            }
            rows.push(row);
        }
        offsets.push(rows.len() as u32);
        Csr {
            width,
            keys,
            offsets,
            rows,
        }
    }

    fn empty(width: usize) -> Csr {
        Csr {
            width,
            keys: Vec::new(),
            offsets: vec![0, 0],
            rows: Vec::new(),
        }
    }

    /// Rows whose key-column projection equals `key` (given in ascending
    /// mask-bit order), in insertion order.
    pub(crate) fn rows_for(&self, key: &[Const]) -> &[u32] {
        debug_assert_eq!(key.len(), self.width);
        let n = self.keys.len().checked_div(self.width).unwrap_or(0);
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let k = &self.keys[mid * self.width..(mid + 1) * self.width];
            match k.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    return &self.rows[self.offsets[mid] as usize..self.offsets[mid + 1] as usize];
                }
            }
        }
        &[]
    }
}

/// A single relation: deduplicated tuples plus hash indexes.
#[derive(Default, Debug, Clone)]
pub struct Relation {
    /// Tuples in insertion order (row id = position).
    tuples: Vec<Tuple>,
    /// Tuple → row id (dedup).
    seen: FxHashMap<Tuple, u32>,
    /// Registered indexes: column bitmask → key → rows.
    indexes: FxHashMap<u64, FxHashMap<Tuple, Vec<u32>>>,
    /// Frozen columnar image (stable relations only); `None` after any
    /// mutation. See [`Columnar`].
    columnar: Option<Arc<Columnar>>,
    /// Optional provenance parallel to `tuples`.
    prov: Vec<Option<ProvEntry>>,
    /// Whether provenance is being recorded.
    track_prov: bool,
}

impl Relation {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple at `row`.
    pub fn row(&self, row: u32) -> &[Const] {
        &self.tuples[row as usize]
    }

    /// All tuples in insertion order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Const]> {
        self.tuples.iter().map(|t| &t[..])
    }

    /// Row id of a tuple if present.
    pub fn find(&self, tuple: &[Const]) -> Option<u32> {
        self.seen.get(tuple).copied()
    }

    /// Provenance of a row, if recorded.
    pub fn provenance(&self, row: u32) -> Option<&ProvEntry> {
        self.prov.get(row as usize).and_then(|p| p.as_ref())
    }

    /// Rough heap footprint in bytes: tuple storage, the dedup map, hash
    /// indexes and any frozen columnar image. A capacity-planning
    /// estimate (shard skew, memory budgets), not an allocator
    /// measurement.
    pub fn approx_heap_bytes(&self) -> usize {
        const CONST_BYTES: usize = std::mem::size_of::<Const>();
        let arity = self.tuples.first().map_or(0, |t| t.len());
        let tuple_bytes = arity * CONST_BYTES + 16; // Arc<[Const]> header
        let mut total = self.tuples.len() * (tuple_bytes + 8); // + seen ref
        total += self.seen.len() * 16; // map slots
        for index in self.indexes.values() {
            total += index.len() * (tuple_bytes + 32);
            total += self.tuples.len() * 4; // row ids across buckets
        }
        if let Some(c) = &self.columnar {
            total += c.cols.len() * self.tuples.len() * CONST_BYTES;
            for csr in c.csr.values() {
                total += csr.keys.len() * CONST_BYTES + csr.rows.len() * 4;
            }
        }
        total
    }

    pub(crate) fn set_track_prov(&mut self, on: bool) {
        self.track_prov = on;
        if on && self.prov.len() < self.tuples.len() {
            self.prov.resize(self.tuples.len(), None);
        }
    }

    /// Registers an index over the columns set in `mask` (bit i = column i)
    /// and builds it over the current contents.
    pub(crate) fn register_index(&mut self, mask: u64) {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return;
        }
        let mut index: FxHashMap<Tuple, Vec<u32>> = FxHashMap::default();
        for (row, t) in self.tuples.iter().enumerate() {
            index.entry(key_of(t, mask)).or_default().push(row as u32);
        }
        self.indexes.insert(mask, index);
    }

    /// Rows whose `mask`-projection equals `key`. The index must have been
    /// registered.
    pub(crate) fn probe(&self, mask: u64, key: &[Const]) -> &[u32] {
        static EMPTY: Vec<u32> = Vec::new();
        self.indexes
            .get(&mask)
            .expect("index not registered")
            .get(key)
            .unwrap_or(&EMPTY)
    }

    /// Freezes a columnar image of the current contents: per-column
    /// strips, plus a CSR adjacency list for every mask in `csr_masks`
    /// (single- or multi-column keys). Idempotent while the contents are
    /// unchanged and the requested masks are covered; any mutation drops
    /// the image.
    pub(crate) fn freeze_columnar(&mut self, csr_masks: &[u64]) {
        if let Some(c) = &self.columnar {
            if csr_masks.iter().all(|m| c.csr.contains_key(m)) {
                return;
            }
        }
        let arity = self.tuples.first().map_or(0, |t| t.len());
        let mut cols: Vec<Box<[Const]>> = Vec::with_capacity(arity);
        for c in 0..arity {
            cols.push(self.tuples.iter().map(|t| t[c]).collect());
        }
        let mut csr = FxHashMap::default();
        for &mask in csr_masks {
            let key_cols: Vec<usize> = (0..64).filter(|i| mask & (1u64 << i) != 0).collect();
            // Out-of-range columns (empty relation) get an empty CSR so a
            // requested mask always answers — the hash index it replaces
            // may never have been registered.
            let csr_for = if key_cols.iter().all(|&c| c < cols.len()) {
                Csr::build(&cols, &key_cols, self.tuples.len())
            } else {
                Csr::empty(key_cols.len())
            };
            csr.insert(mask, csr_for);
        }
        self.columnar = Some(Arc::new(Columnar { cols, csr }));
    }

    /// The frozen columnar image, if current.
    pub(crate) fn columnar(&self) -> Option<&Columnar> {
        self.columnar.as_deref()
    }

    /// Rows whose `mask`-projection equals `key`, preferring the frozen
    /// CSR when one covers the mask and falling back to the hash index
    /// (which must then be registered).
    pub(crate) fn lookup_rows(&self, mask: u64, key: &[Const]) -> &[u32] {
        if let Some(c) = &self.columnar {
            if let Some(csr) = c.csr.get(&mask) {
                return csr.rows_for(key);
            }
        }
        self.probe(mask, key)
    }

    /// Inserts a tuple; returns its row id and whether it was new.
    pub(crate) fn insert(&mut self, tuple: Tuple, prov: Option<ProvEntry>) -> (u32, bool) {
        if let Some(&row) = self.seen.get(&tuple) {
            return (row, false);
        }
        self.columnar = None;
        let row = self.tuples.len() as u32;
        for (mask, index) in self.indexes.iter_mut() {
            index.entry(key_of(&tuple, *mask)).or_default().push(row);
        }
        self.seen.insert(tuple.clone(), row);
        self.tuples.push(tuple);
        if self.track_prov {
            self.prov.push(prov);
        }
        (row, true)
    }

    /// Removes every tuple in `del`, compacting the surviving rows in
    /// their original order — tombstone-free: the dedup map, all
    /// registered indexes and any recorded provenance are rebuilt so row
    /// ids stay dense. Returns how many rows were actually removed.
    pub(crate) fn remove_tuples(&mut self, del: &crate::fx::FxHashSet<Tuple>) -> usize {
        if del.is_empty() {
            return 0;
        }
        let masks: Vec<u64> = self.indexes.keys().copied().collect();
        self.columnar = None;
        let old_tuples = std::mem::take(&mut self.tuples);
        let mut old_prov = std::mem::take(&mut self.prov);
        self.seen.clear();
        self.indexes.clear();
        let mut removed = 0usize;
        for (i, t) in old_tuples.into_iter().enumerate() {
            if del.contains(&t) {
                removed += 1;
                continue;
            }
            let row = self.tuples.len() as u32;
            self.seen.insert(t.clone(), row);
            self.tuples.push(t);
            if self.track_prov {
                self.prov.push(old_prov.get_mut(i).and_then(Option::take));
            }
        }
        for m in masks {
            self.register_index(m);
        }
        removed
    }

    /// Replaces the contents with `rows` (used by `@post`); indexes are
    /// rebuilt, provenance is dropped (post-processing is a projection of
    /// the least fixpoint, not a derivation).
    pub(crate) fn replace_all(&mut self, rows: Vec<Tuple>) {
        let masks: Vec<u64> = self.indexes.keys().copied().collect();
        self.columnar = None;
        self.tuples.clear();
        self.seen.clear();
        self.indexes.clear();
        self.prov.clear();
        for t in rows {
            if !self.seen.contains_key(&t) {
                let row = self.tuples.len() as u32;
                self.seen.insert(t.clone(), row);
                self.tuples.push(t);
                if self.track_prov {
                    self.prov.push(None);
                }
            }
        }
        for m in masks {
            self.register_index(m);
        }
    }
}

pub(crate) fn key_of(tuple: &[Const], mask: u64) -> Tuple {
    let mut key = Vec::with_capacity(mask.count_ones() as usize);
    for (i, c) in tuple.iter().enumerate() {
        if mask & (1u64 << i) != 0 {
            key.push(*c);
        }
    }
    key.into()
}

/// The fact store: predicates, relations, symbols and Skolem OIDs.
#[derive(Default, Debug, Clone)]
pub struct Database {
    pub(crate) symbols: SymbolTable,
    pub(crate) skolems: SkolemTable,
    // `Arc<str>` names: cloning the predicate tables (every scratch copy
    // and serve-epoch snapshot) bumps refcounts instead of copying the
    // string bytes. `Arc<str>: Borrow<str>` keeps `&str` lookups working.
    pred_ids: FxHashMap<Arc<str>, u32>,
    pred_names: Vec<Arc<str>>,
    arities: Vec<Option<usize>>,
    pub(crate) relations: Vec<Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch copy for goal-directed evaluation: the symbol, Skolem and
    /// predicate tables are copied in full (ids stay aligned, canonical
    /// rendering works), but only the relations named in `keep` carry
    /// their rows — every other relation becomes an empty shell.
    ///
    /// Sound for evaluating any program whose mentioned predicates are
    /// all in `keep`: a fixpoint can only read or write relations its
    /// rules and directives mention, so the shells are never observed.
    /// Wide extensional relations outside the goal's cone (e.g. attribute
    /// tables) are what this skips — for point lookups they often
    /// dominate the cost of a full [`Clone`].
    pub(crate) fn scratch_for(&self, keep: &crate::fx::FxHashSet<String>) -> Database {
        Database {
            symbols: self.symbols.clone(),
            skolems: self.skolems.clone(),
            pred_ids: self.pred_ids.clone(),
            pred_names: self.pred_names.clone(),
            arities: self.arities.clone(),
            relations: self
                .relations
                .iter()
                .zip(&self.pred_names)
                .map(|(r, name)| {
                    if keep.contains(&**name) {
                        r.clone()
                    } else {
                        Relation::default()
                    }
                })
                .collect(),
        }
    }

    /// Public projection lens over [`Database::scratch_for`]: a copy of
    /// the database whose interning tables are shared in full but whose
    /// relations carry rows only for the predicates named in `keep`.
    /// The serving layer uses this to strip derived relations off an
    /// epoch snapshot before re-running a provenance-enabled engine for
    /// derivation-tree explanations.
    pub fn project(&self, keep: impl IntoIterator<Item = impl AsRef<str>>) -> Database {
        let set: crate::fx::FxHashSet<String> =
            keep.into_iter().map(|s| s.as_ref().to_owned()).collect();
        self.scratch_for(&set)
    }

    /// Read-only view of the symbol interner. The durable-storage layer
    /// iterates it in interning order when writing snapshots, so a reload
    /// assigns every symbol its original id.
    pub fn symbol_table(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Interns a string constant and returns it as a [`Const`].
    pub fn sym(&mut self, s: &str) -> Const {
        Const::Sym(self.symbols.intern(s))
    }

    /// Looks up an interned string constant without interning it —
    /// `None` means the string occurs nowhere in the database.
    pub fn find_sym(&self, s: &str) -> Option<Const> {
        self.symbols.lookup(s).map(Const::Sym)
    }

    /// Resolves a symbol constant back to its string.
    pub fn resolve(&self, c: Const) -> Option<&str> {
        match c {
            Const::Sym(s) => Some(self.symbols.resolve(s)),
            _ => None,
        }
    }

    /// Renders any constant as a display string (symbols resolved).
    pub fn display(&self, c: Const) -> String {
        match c {
            Const::Sym(s) => self.symbols.resolve(s).to_owned(),
            Const::Int(i) => i.to_string(),
            Const::Float(f) => f.to_string(),
            Const::Bool(b) => b.to_string(),
            Const::Null(n) => format!("_:{n}"),
        }
    }

    /// Id of a predicate, interning it with unknown arity.
    pub fn pred_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.pred_ids.get(name) {
            return id;
        }
        let id = self.pred_names.len() as u32;
        let name: Arc<str> = Arc::from(name);
        self.pred_names.push(name.clone());
        self.pred_ids.insert(name, id);
        self.arities.push(None);
        self.relations.push(Relation::default());
        id
    }

    /// Looks up a predicate id without creating it.
    pub fn find_pred(&self, name: &str) -> Option<u32> {
        self.pred_ids.get(name).copied()
    }

    /// Name of a predicate id.
    pub fn pred_name(&self, id: u32) -> &str {
        &self.pred_names[id as usize]
    }

    /// Number of predicates.
    pub fn pred_count(&self) -> usize {
        self.pred_names.len()
    }

    /// Declared arity of a predicate, if any fact or resolved rule has
    /// fixed it yet.
    pub fn arity(&self, id: u32) -> Option<usize> {
        self.arities.get(id as usize).copied().flatten()
    }

    /// Interns a predicate and optionally pins its arity — the snapshot
    /// loader rebuilds the predicate table in id order with this before
    /// any rows arrive, so predicate ids survive recovery.
    pub fn declare_pred(&mut self, name: &str, arity: Option<usize>) -> Result<u32> {
        let id = self.pred_id(name);
        if let Some(a) = arity {
            self.check_arity(id, a)?;
        }
        Ok(id)
    }

    /// Freezes every relation to the columnar layout (strips only, no
    /// CSR adjacency). Sharded EDB storage parks cold shards in this
    /// form; any later mutation of a relation drops its image.
    pub fn freeze_all_columnar(&mut self) {
        for rel in &mut self.relations {
            rel.freeze_columnar(&[]);
        }
    }

    /// Rough heap footprint of the whole store in bytes: interned
    /// symbols, predicate tables and every relation's
    /// [`Relation::approx_heap_bytes`]. The capacity-planning lens for
    /// the 1M-register memory-budget target and per-shard skew stats.
    pub fn approx_heap_bytes(&self) -> usize {
        let mut total = 0usize;
        for name in self.symbols.iter() {
            total += name.len() + 56; // Arc<str> header + index entry
        }
        for name in &self.pred_names {
            total += name.len() + 56;
        }
        for rel in &self.relations {
            total += rel.approx_heap_bytes();
        }
        total
    }

    /// The relation of a predicate (empty if the name is unknown).
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.find_pred(name).map(|p| &self.relations[p as usize])
    }

    pub(crate) fn relation_mut(&mut self, pred: u32) -> &mut Relation {
        &mut self.relations[pred as usize]
    }

    /// Checks/records the arity of a predicate.
    pub(crate) fn check_arity(&mut self, pred: u32, arity: usize) -> Result<()> {
        match self.arities[pred as usize] {
            None => {
                self.arities[pred as usize] = Some(arity);
                Ok(())
            }
            Some(a) if a == arity => Ok(()),
            Some(a) => Err(DatalogError::BadFact(format!(
                "predicate {} used with arity {arity}, previously {a}",
                self.pred_names[pred as usize]
            ))),
        }
    }

    /// Asserts a fully constructed fact; returns true if new.
    pub fn assert_fact(&mut self, pred: &str, tuple: &[Const]) -> Result<bool> {
        let p = self.pred_id(pred);
        self.check_arity(p, tuple.len())?;
        let (_, new) = self.relations[p as usize].insert(tuple.into(), None);
        Ok(new)
    }

    /// Retracts a fact if present; returns true if it was removed. The
    /// relation is compacted in place (order-preserving, tombstone-free).
    pub fn retract_fact(&mut self, pred: &str, tuple: &[Const]) -> bool {
        let Some(p) = self.find_pred(pred) else {
            return false;
        };
        let mut del = crate::fx::FxHashSet::default();
        del.insert(Tuple::from(tuple));
        self.relations[p as usize].remove_tuples(&del) > 0
    }

    /// Starts a fluent fact builder: `db.fact("own").sym("a").float(0.5).assert();`
    pub fn fact<'a>(&'a mut self, pred: &str) -> FactBuilder<'a> {
        FactBuilder {
            pred: pred.to_owned(),
            vals: Vec::new(),
            db: self,
        }
    }

    /// Asserts many all-string facts at once (test convenience).
    pub fn assert_str_facts(&mut self, pred: &str, facts: &[&[&str]]) {
        for f in facts {
            let tuple: Vec<Const> = f.iter().map(|s| self.sym(s)).collect();
            self.assert_fact(pred, &tuple).expect("consistent arity");
        }
    }

    /// True iff the relation contains the all-string tuple.
    pub fn contains_str_fact(&self, pred: &str, tuple: &[&str]) -> bool {
        let Some(rel) = self.relation(pred) else {
            return false;
        };
        let mut key = Vec::with_capacity(tuple.len());
        for s in tuple {
            match self.symbols.get(s) {
                Some(id) => key.push(Const::Sym(id)),
                None => return false,
            }
        }
        rel.find(&key).is_some()
    }

    /// Number of facts in a predicate (0 if unknown).
    pub fn fact_count(&self, pred: &str) -> usize {
        self.relation(pred).map(|r| r.len()).unwrap_or(0)
    }

    /// Total number of facts across all relations.
    pub fn total_facts(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Queries a relation with a pattern: `None` positions are wildcards,
    /// `Some(c)` positions must match exactly. Returns the matching rows.
    ///
    /// ```
    /// use datalog::{Database, Const};
    /// let mut db = Database::new();
    /// db.fact("own").sym("a").sym("b").float(0.6).assert();
    /// db.fact("own").sym("a").sym("c").float(0.2).assert();
    /// let a = db.sym("a");
    /// let rows = db.query("own", &[Some(a), None, None]);
    /// assert_eq!(rows.len(), 2);
    /// let rows = db.query("own", &[None, None, Some(Const::Float(0.2))]);
    /// assert_eq!(rows.len(), 1);
    /// ```
    pub fn query(&self, pred: &str, pattern: &[Option<Const>]) -> Vec<&[Const]> {
        let Some(rel) = self.relation(pred) else {
            return Vec::new();
        };
        rel.rows()
            .filter(|row| {
                row.len() == pattern.len()
                    && row
                        .iter()
                        .zip(pattern)
                        .all(|(c, p)| p.is_none_or(|pc| *c == pc))
            })
            .collect()
    }

    /// Renders a constant canonically: like [`Database::display`], except
    /// labelled nulls are rendered by their structural Skolem definition
    /// (`functor(args…)`, recursively) instead of their numeric id. Two
    /// databases that derived the same facts in different orders assign
    /// different null ids but identical canonical renderings, so this is
    /// the right lens for set-level comparisons (isomorphism of labelled
    /// nulls).
    pub fn canonical(&self, c: Const) -> String {
        match c {
            Const::Null(n) => match self.skolems.definition(n) {
                Some((functor, args)) => {
                    let parts: Vec<String> = args.iter().map(|a| self.canonical(*a)).collect();
                    format!("{}({})", self.symbols.resolve(functor), parts.join(","))
                }
                None => format!("_:{n}"),
            },
            other => self.display(other),
        }
    }

    /// Renders a relation's tuples canonically (see [`Database::canonical`]),
    /// sorted. The comparison lens used by the incremental differential
    /// tests: set-identity modulo labelled-null renaming.
    pub fn dump_canonical(&self, pred: &str) -> Vec<String> {
        let Some(rel) = self.relation(pred) else {
            return Vec::new();
        };
        let mut out: Vec<String> = rel
            .rows()
            .map(|t| {
                let parts: Vec<String> = t.iter().map(|c| self.canonical(*c)).collect();
                parts.join(",")
            })
            .collect();
        out.sort();
        out
    }

    /// Renders a relation's tuples as display strings, sorted (test helper).
    pub fn dump(&self, pred: &str) -> Vec<String> {
        let Some(rel) = self.relation(pred) else {
            return Vec::new();
        };
        let mut out: Vec<String> = rel
            .rows()
            .map(|t| {
                let parts: Vec<String> = t.iter().map(|c| self.display(*c)).collect();
                parts.join(",")
            })
            .collect();
        out.sort();
        out
    }
}

/// Fluent fact construction, created by [`Database::fact`].
pub struct FactBuilder<'a> {
    pred: String,
    vals: Vec<Const>,
    db: &'a mut Database,
}

impl<'a> FactBuilder<'a> {
    /// Appends an interned string term.
    pub fn sym(mut self, s: &str) -> Self {
        let c = self.db.sym(s);
        self.vals.push(c);
        self
    }

    /// Appends an integer term.
    pub fn int(mut self, i: i64) -> Self {
        self.vals.push(Const::Int(i));
        self
    }

    /// Appends a float term.
    pub fn float(mut self, f: f64) -> Self {
        self.vals.push(Const::float(f));
        self
    }

    /// Appends a boolean term.
    pub fn bool(mut self, b: bool) -> Self {
        self.vals.push(Const::Bool(b));
        self
    }

    /// Appends an arbitrary constant.
    pub fn val(mut self, c: Const) -> Self {
        self.vals.push(c);
        self
    }

    /// Asserts the fact, panicking on arity mismatch (use
    /// [`FactBuilder::try_assert`] to handle errors).
    pub fn assert(self) {
        self.try_assert().expect("fact assertion failed");
    }

    /// Asserts the fact; returns whether it was new.
    pub fn try_assert(self) -> Result<bool> {
        let FactBuilder { pred, vals, db } = self;
        db.assert_fact(&pred, &vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_intern_and_resolve() {
        let mut t = SymbolTable::default();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.get("beta"), Some(b));
        assert_eq!(t.get("gamma"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn skolem_properties() {
        let mut sk = SkolemTable::default();
        let a1 = sk.apply(0, &[Const::Int(1)]);
        let a2 = sk.apply(0, &[Const::Int(1)]);
        let b = sk.apply(0, &[Const::Int(2)]);
        let c = sk.apply(1, &[Const::Int(1)]);
        assert_eq!(a1, a2, "determinism");
        assert_ne!(a1, b, "injectivity");
        assert_ne!(a1, c, "disjoint ranges");
        assert_eq!(sk.len(), 3);
    }

    #[test]
    fn relation_dedup_and_index() {
        let mut r = Relation::default();
        let t1: Tuple = vec![Const::Int(1), Const::Int(2)].into();
        let t2: Tuple = vec![Const::Int(1), Const::Int(3)].into();
        assert!(r.insert(t1.clone(), None).1);
        assert!(!r.insert(t1.clone(), None).1);
        assert!(r.insert(t2.clone(), None).1);
        assert_eq!(r.len(), 2);
        r.register_index(0b01);
        let rows = r.probe(0b01, &[Const::Int(1)]);
        assert_eq!(rows.len(), 2);
        // Index is maintained on subsequent inserts.
        let t3: Tuple = vec![Const::Int(1), Const::Int(4)].into();
        r.insert(t3, None);
        assert_eq!(r.probe(0b01, &[Const::Int(1)]).len(), 3);
        assert_eq!(r.probe(0b01, &[Const::Int(9)]).len(), 0);
    }

    #[test]
    fn database_fact_roundtrip() {
        let mut db = Database::new();
        db.fact("own").sym("a").sym("b").float(0.6).assert();
        assert!(!db.contains_str_fact("company", &["a"]));
        assert_eq!(db.fact_count("own"), 1);
        let rel = db.relation("own").unwrap();
        let row = rel.row(0);
        assert_eq!(db.display(row[0]), "a");
        assert_eq!(row[2].as_f64(), Some(0.6));
    }

    #[test]
    fn arity_is_enforced() {
        let mut db = Database::new();
        db.fact("p").int(1).assert();
        assert!(db.fact("p").int(1).int(2).try_assert().is_err());
    }

    #[test]
    fn assert_str_facts_and_contains() {
        let mut db = Database::new();
        db.assert_str_facts("edge", &[&["a", "b"], &["b", "c"]]);
        assert!(db.contains_str_fact("edge", &["a", "b"]));
        assert!(!db.contains_str_fact("edge", &["a", "c"]));
        assert!(!db.contains_str_fact("edge", &["a", "zzz"]));
        assert_eq!(db.total_facts(), 2);
    }

    #[test]
    fn dump_is_sorted_and_resolved() {
        let mut db = Database::new();
        db.assert_str_facts("e", &[&["b"], &["a"]]);
        assert_eq!(db.dump("e"), vec!["a".to_owned(), "b".to_owned()]);
        assert!(db.dump("missing").is_empty());
    }

    #[test]
    fn query_patterns() {
        let mut db = Database::new();
        db.fact("e").sym("a").sym("b").assert();
        db.fact("e").sym("a").sym("c").assert();
        db.fact("e").sym("b").sym("c").assert();
        let a = db.sym("a");
        let c = db.sym("c");
        assert_eq!(db.query("e", &[Some(a), None]).len(), 2);
        assert_eq!(db.query("e", &[None, Some(c)]).len(), 2);
        assert_eq!(db.query("e", &[Some(a), Some(c)]).len(), 1);
        assert_eq!(db.query("e", &[None, None]).len(), 3);
        assert!(db.query("e", &[None]).is_empty(), "arity mismatch");
        assert!(db.query("zzz", &[None]).is_empty());
    }

    #[test]
    fn remove_tuples_compacts_in_order() {
        let mut r = Relation::default();
        r.register_index(0b01);
        for i in 0..5 {
            r.insert(vec![Const::Int(i), Const::Int(i * 10)].into(), None);
        }
        let mut del = crate::fx::FxHashSet::default();
        del.insert(Tuple::from(&[Const::Int(1), Const::Int(10)][..]));
        del.insert(Tuple::from(&[Const::Int(3), Const::Int(30)][..]));
        del.insert(Tuple::from(&[Const::Int(9), Const::Int(90)][..])); // absent
        assert_eq!(r.remove_tuples(&del), 2);
        assert_eq!(r.len(), 3);
        // Survivors keep their relative order; row ids are dense again.
        let kept: Vec<i64> = r.rows().map(|t| t[0].as_i64().unwrap()).collect();
        assert_eq!(kept, vec![0, 2, 4]);
        assert_eq!(r.find(&[Const::Int(2), Const::Int(20)]), Some(1));
        assert_eq!(r.find(&[Const::Int(1), Const::Int(10)]), None);
        // Indexes were rebuilt over the compacted rows.
        assert_eq!(r.probe(0b01, &[Const::Int(4)]), &[2]);
        assert!(r.probe(0b01, &[Const::Int(3)]).is_empty());
        // Re-inserting a removed tuple appends at the end.
        let (row, fresh) = r.insert(vec![Const::Int(1), Const::Int(10)].into(), None);
        assert!(fresh);
        assert_eq!(row, 3);
    }

    #[test]
    fn retract_fact_roundtrip() {
        let mut db = Database::new();
        db.fact("own").sym("a").sym("b").float(0.6).assert();
        let row: Vec<Const> = db.query("own", &[None, None, None])[0].to_vec();
        assert!(db.retract_fact("own", &row));
        assert_eq!(db.fact_count("own"), 0);
        assert!(!db.retract_fact("own", &[Const::Int(1), Const::Int(2), Const::Int(3)]));
        assert!(!db.retract_fact("zzz", &[Const::Int(1)]));
    }

    #[test]
    fn canonical_rendering_resolves_nulls_structurally() {
        let mut db = Database::new();
        let a = db.sym("a");
        let f = db.symbols.intern("#mk");
        let id = db.skolems.apply(f, &[a]);
        let nested = db.skolems.apply(f, &[Const::Null(id)]);
        assert_eq!(db.canonical(Const::Null(id)), "#mk(a)");
        assert_eq!(db.canonical(Const::Null(nested)), "#mk(#mk(a))");
        assert_eq!(db.canonical(a), "a");
        // Unknown null ids fall back to the numeric rendering.
        assert_eq!(db.canonical(Const::Null(99)), "_:99");
    }

    #[test]
    fn csr_enumeration_matches_probe_enumeration() {
        // The byte-identity contract: for any key, the frozen CSR must
        // return exactly the rows the hash index would, in the same
        // (insertion) order — including duplicate-key and absent-key
        // shapes, and int/float keys that are Eq-equal via cmp.
        let mut r = Relation::default();
        r.register_index(0b01);
        let rows = [
            (3, 30),
            (1, 10),
            (3, 31),
            (2, 20),
            (1, 11),
            (3, 32),
            (2, 21),
        ];
        for (a, b) in rows {
            r.insert(vec![Const::Int(a), Const::Int(b)].into(), None);
        }
        r.freeze_columnar(&[0b01]);
        assert!(r.columnar().is_some());
        for key in [0, 1, 2, 3, 4] {
            let k = [Const::Int(key)];
            assert_eq!(
                r.lookup_rows(0b01, &k),
                r.probe(0b01, &k),
                "key {key}: CSR order diverged from hash-index order"
            );
        }
        // Column strips expose the stored values positionally.
        let col = r.columnar().unwrap().col(0);
        assert_eq!(col[0], Const::Int(3));
        assert_eq!(col[3], Const::Int(2));
    }

    #[test]
    fn multi_column_csr_matches_probe_enumeration() {
        // Two-column keys: the composite CSR must enumerate exactly what
        // the two-column hash index does, in insertion order, for every
        // present and absent key pair — including keys that share a first
        // column (the binary search compares full key slices).
        let mut r = Relation::default();
        r.register_index(0b011);
        r.register_index(0b101);
        let rows = [(3, 1, 9), (1, 2, 8), (3, 1, 7), (3, 2, 6), (1, 2, 5)];
        for (a, b, c) in rows {
            r.insert(
                vec![Const::Int(a), Const::Int(b), Const::Int(c)].into(),
                None,
            );
        }
        r.freeze_columnar(&[0b011, 0b101]);
        for a in 0..4 {
            for b in 0..10 {
                let k = [Const::Int(a), Const::Int(b)];
                assert_eq!(
                    r.lookup_rows(0b011, &k),
                    r.probe(0b011, &k),
                    "key ({a},{b}) cols 0,1"
                );
                assert_eq!(
                    r.lookup_rows(0b101, &k),
                    r.probe(0b101, &k),
                    "key ({a},{b}) cols 0,2"
                );
            }
        }
        assert_eq!(
            r.lookup_rows(0b011, &[Const::Int(3), Const::Int(1)]),
            &[0, 2]
        );
    }

    #[test]
    fn columnar_freeze_is_idempotent_and_extendable() {
        let mut r = Relation::default();
        r.register_index(0b01);
        r.register_index(0b10);
        r.insert(vec![Const::Int(1), Const::Int(2)].into(), None);
        r.freeze_columnar(&[0b01]);
        let first = r.columnar().unwrap() as *const Columnar;
        // Re-freezing with covered masks keeps the same frozen image.
        r.freeze_columnar(&[0b01]);
        assert_eq!(r.columnar().unwrap() as *const Columnar, first);
        // A new mask forces a rebuild that answers both.
        r.freeze_columnar(&[0b10]);
        assert_eq!(r.lookup_rows(0b01, &[Const::Int(1)]), &[0]);
        assert_eq!(r.lookup_rows(0b10, &[Const::Int(2)]), &[0]);
    }

    #[test]
    fn mutation_invalidates_columnar() {
        let mut r = Relation::default();
        r.register_index(0b01);
        r.insert(vec![Const::Int(1), Const::Int(2)].into(), None);
        r.freeze_columnar(&[0b01]);
        assert!(r.columnar().is_some());
        // Insert drops the frozen image; lookups fall back to the live
        // hash index and see the new row.
        r.insert(vec![Const::Int(1), Const::Int(3)].into(), None);
        assert!(r.columnar().is_none());
        assert_eq!(r.lookup_rows(0b01, &[Const::Int(1)]), &[0, 1]);
        // remove_tuples and replace_all invalidate too.
        r.freeze_columnar(&[0b01]);
        let mut del = crate::fx::FxHashSet::default();
        del.insert(Tuple::from(&[Const::Int(1), Const::Int(2)][..]));
        r.remove_tuples(&del);
        assert!(r.columnar().is_none());
        r.freeze_columnar(&[0b01]);
        r.replace_all(vec![vec![Const::Int(9), Const::Int(9)].into()]);
        assert!(r.columnar().is_none());
        assert_eq!(r.lookup_rows(0b01, &[Const::Int(9)]), &[0]);
    }

    #[test]
    fn empty_relation_freeze_answers_requested_masks() {
        // An empty relation has no arity yet; a requested CSR mask must
        // still be answered (empty) rather than panicking through to an
        // unregistered hash probe.
        let mut r = Relation::default();
        r.freeze_columnar(&[0b10]);
        assert!(r.lookup_rows(0b10, &[Const::Int(1)]).is_empty());
    }

    #[test]
    fn snapshots_share_predicate_name_allocations() {
        // The serve read path clones the database per epoch snapshot;
        // predicate names are Arc<str>, so the clone bumps refcounts
        // instead of copying strings.
        let mut db = Database::new();
        db.fact("own").sym("a").sym("b").float(0.5).assert();
        db.fact("company").sym("a").assert();
        let snap = db.clone();
        for p in 0..db.pred_count() as u32 {
            assert!(
                std::ptr::eq(db.pred_name(p), snap.pred_name(p)),
                "pred {p}: name was deep-copied"
            );
        }
        let mut keep = crate::fx::FxHashSet::default();
        keep.insert("own".to_owned());
        let scratch = db.scratch_for(&keep);
        for p in 0..db.pred_count() as u32 {
            assert!(std::ptr::eq(db.pred_name(p), scratch.pred_name(p)));
        }
    }

    #[test]
    fn replace_all_rebuilds_indexes() {
        let mut r = Relation::default();
        r.register_index(0b1);
        r.insert(vec![Const::Int(1)].into(), None);
        r.insert(vec![Const::Int(2)].into(), None);
        r.replace_all(vec![vec![Const::Int(2)].into()]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.probe(0b1, &[Const::Int(1)]).len(), 0);
        assert_eq!(r.probe(0b1, &[Const::Int(2)]).len(), 1);
    }
}
