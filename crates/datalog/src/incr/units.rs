//! Dependency units and maintenance-mode classification.
//!
//! Strata (negation levels) are too coarse for incremental maintenance:
//! the close-link program is a single stratum holding two very different
//! components — the order-sensitive `acc_own` aggregation and the pure
//! recursive `close_link` join. The *unit graph* refines each stratum into
//! the strongly connected components of the predicate dependency graph,
//! topologically ordered, and classifies every unit into the cheapest
//! maintenance strategy that is still guaranteed to reproduce a
//! from-scratch run on the post-update database:
//!
//! * [`Mode::Counting`] — non-recursive pure unit: exact derivation
//!   counts, deletions are count decrements (Gupta–Mumick).
//! * [`Mode::DRed`] — recursive pure unit: delete-and-rederive.
//! * [`Mode::Replay`] — order-sensitive unit (monotonic aggregates,
//!   Skolem invention, external calls, `@post` compaction) or a pure unit
//!   that feeds one: its relations are cleared and its rules re-run
//!   through the engine's own stratum loop, which reproduces the baseline
//!   byte-for-byte because its inputs are byte-identical.
//! * [`Mode::StratumReplay`] — a replayed unit reads a predicate derived
//!   elsewhere in its own stratum: standalone replay would see the final
//!   state where the baseline fixpoint interleaved partial states, so the
//!   whole stratum is replayed jointly instead.
//!
//! Classification can also conclude that no incremental strategy is safe
//! ([`UnitGraph::fallback_full`]): `@post` compaction discards the
//! intermediate aggregate emissions a from-scratch run exposes to readers,
//! so every reader of a posted predicate must use its value column in a
//! direction-compatible guard (`>=`/`>` for `max`-posted, `<=`/`<` for
//! `min`-posted) for final-state maintenance to subsume the intermediate
//! derivations. Programs that fail this check fall back to full
//! recomputation per update — still correct, never wrong.

use crate::ast::{Directive, PostOp, Program};
use crate::db::Database;
use crate::error::Result;
use crate::eval::resolve::{tarjan, CompiledProgram, RExpr, RLiteral, RRule, RTerm};
use crate::fx::{FxHashMap, FxHashSet};

/// Maintenance strategy of one unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Count-based maintenance (non-recursive, pure).
    Counting,
    /// Delete-and-rederive (recursive, pure).
    DRed,
    /// Clear and re-run the unit's rules through the engine.
    Replay,
    /// Re-run the whole stratum jointly (intra-stratum coupling).
    StratumReplay,
}

/// One strongly connected component of the predicate dependency graph,
/// with the rules deriving its predicates.
#[derive(Debug)]
pub(crate) struct Unit {
    /// Rule indices (ascending program order).
    pub rules: Vec<usize>,
    /// Head predicates derived by this unit (sorted, deduped).
    pub preds: Vec<u32>,
    /// Positive body predicates read from outside the unit.
    pub pos_inputs: Vec<u32>,
    /// Negated body predicates (always outside the unit — stratified).
    pub neg_inputs: Vec<u32>,
    /// Stratum (negation level) of the unit's predicates.
    pub stratum: usize,
    /// True when a rule's body reads a unit predicate (self-recursion or
    /// a multi-predicate component).
    pub recursive: bool,
    /// Chosen maintenance strategy.
    pub mode: Mode,
}

impl Unit {
    /// True when any of the given predicate deltas feed this unit.
    pub fn reads_any(&self, changed: &FxHashMap<u32, super::delta::PredDelta>) -> bool {
        self.pos_inputs.iter().any(|p| changed.contains_key(p))
            || self.neg_inputs.iter().any(|p| changed.contains_key(p))
    }

    /// True when a *negated* input changed — maintained units replay
    /// instead of propagating through negation.
    pub fn negated_input_changed(&self, changed: &FxHashMap<u32, super::delta::PredDelta>) -> bool {
        self.neg_inputs.iter().any(|p| changed.contains_key(p))
    }
}

/// The classified unit graph of one program against one database.
#[derive(Debug)]
pub(crate) struct UnitGraph {
    /// Units in evaluation order: ascending stratum, topological within.
    pub units: Vec<Unit>,
    /// Unit index deriving each derived predicate (classification
    /// diagnostics; the sweep itself walks `units` in order).
    #[allow(dead_code)]
    pub unit_of_pred: FxHashMap<u32, usize>,
    /// All derived (head) predicates.
    pub derived: FxHashSet<u32>,
    /// `@post` operations in the order [`crate::Engine::run`] applies
    /// them: auto-compactions first, then explicit directives.
    pub posted: Vec<(u32, String, PostOp)>,
    /// True when the subsumption check failed: incremental maintenance
    /// cannot reproduce a from-scratch run, fall back to recomputing
    /// everything on every update.
    pub fallback_full: bool,
}

/// Builds and classifies the unit graph. `rules` must be resolved against
/// `db` (predicates interned).
pub(crate) fn build_units(
    program: &Program,
    compiled: &CompiledProgram,
    rules: &[RRule],
    db: &Database,
) -> Result<UnitGraph> {
    // -- derived predicates and the pred-level dependency graph ----------
    let mut derived: FxHashSet<u32> = FxHashSet::default();
    for rule in rules {
        for h in &rule.head {
            derived.insert(h.pred);
        }
    }
    let mut nodes: Vec<u32> = derived.iter().copied().collect();
    nodes.sort_unstable();
    let node_of: FxHashMap<u32, usize> = nodes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for rule in rules {
        let heads: Vec<usize> = rule.head.iter().map(|h| node_of[&h.pred]).collect();
        // Conjunctive heads share a unit (they are derived together).
        for i in 1..heads.len() {
            adj[heads[0]].push(heads[i]);
            adj[heads[i]].push(heads[0]);
        }
        for lit in &rule.body {
            let pred = match lit {
                RLiteral::Atom { atom } => atom.pred,
                RLiteral::Negated(a) => a.pred,
                _ => continue,
            };
            if let Some(&b) = node_of.get(&pred) {
                for &h in &heads {
                    adj[b].push(h);
                }
            }
        }
    }
    let comp = tarjan(&adj);
    let ncomp = comp.iter().copied().max().map(|c| c + 1).unwrap_or(0);

    // -- group predicates and rules into units ---------------------------
    let mut unit_preds: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
    for (i, &p) in nodes.iter().enumerate() {
        unit_preds[comp[i]].push(p);
    }
    let mut unit_rules: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for (ri, rule) in rules.iter().enumerate() {
        let c = comp[node_of[&rule.head[0].pred]];
        debug_assert!(
            rule.head.iter().all(|h| comp[node_of[&h.pred]] == c),
            "conjunctive heads share a component"
        );
        unit_rules[c].push(ri);
    }

    // -- unit-level edges and a deterministic topological order ----------
    let mut uadj: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); ncomp];
    let mut indeg = vec![0usize; ncomp];
    for (c, rs) in unit_rules.iter().enumerate() {
        for &ri in rs {
            for lit in &rules[ri].body {
                let pred = match lit {
                    RLiteral::Atom { atom } => atom.pred,
                    RLiteral::Negated(a) => a.pred,
                    _ => continue,
                };
                if let Some(&b) = node_of.get(&pred) {
                    let from = comp[b];
                    if from != c && uadj[from].insert(c) {
                        indeg[c] += 1;
                    }
                }
            }
        }
    }
    let mut order: Vec<usize> = Vec::with_capacity(ncomp);
    let mut ready: Vec<usize> = (0..ncomp).filter(|&c| indeg[c] == 0).collect();
    ready.sort_unstable_by_key(|&c| std::cmp::Reverse(min_rule(&unit_rules[c])));
    while let Some(c) = ready.pop() {
        order.push(c);
        let mut next: Vec<usize> = Vec::new();
        for &d in &uadj[c] {
            indeg[d] -= 1;
            if indeg[d] == 0 {
                next.push(d);
            }
        }
        ready.extend(next);
        ready.sort_unstable_by_key(|&c| std::cmp::Reverse(min_rule(&unit_rules[c])));
    }
    debug_assert_eq!(order.len(), ncomp, "unit graph must be acyclic");

    // -- assemble units in (stratum, topo) order -------------------------
    let stratum_of = |p: u32| -> usize {
        compiled
            .pred_stratum
            .get(db.pred_name(p))
            .copied()
            .unwrap_or(0)
    };
    let mut units: Vec<Unit> = Vec::with_capacity(ncomp);
    for &c in &order {
        let preds = {
            let mut ps = unit_preds[c].clone();
            ps.sort_unstable();
            ps
        };
        let pset: FxHashSet<u32> = preds.iter().copied().collect();
        let mut pos_inputs: Vec<u32> = Vec::new();
        let mut neg_inputs: Vec<u32> = Vec::new();
        let mut recursive = preds.len() > 1;
        for &ri in &unit_rules[c] {
            for lit in &rules[ri].body {
                match lit {
                    RLiteral::Atom { atom } => {
                        if pset.contains(&atom.pred) {
                            recursive = true;
                        } else {
                            pos_inputs.push(atom.pred);
                        }
                    }
                    RLiteral::Negated(a) => neg_inputs.push(a.pred),
                    _ => {}
                }
            }
        }
        pos_inputs.sort_unstable();
        pos_inputs.dedup();
        neg_inputs.sort_unstable();
        neg_inputs.dedup();
        units.push(Unit {
            rules: unit_rules[c].clone(),
            stratum: stratum_of(preds[0]),
            preds,
            pos_inputs,
            neg_inputs,
            recursive,
            mode: Mode::Counting, // placeholder, classified below
        });
    }
    units.sort_by_key(|u| u.stratum); // stable: keeps topo order within
    let unit_of_pred: FxHashMap<u32, usize> = units
        .iter()
        .enumerate()
        .flat_map(|(i, u)| u.preds.iter().map(move |&p| (p, i)))
        .collect();

    // -- posted predicates (auto-compaction, then explicit @post) --------
    let mut posted: Vec<(u32, String, PostOp)> = Vec::new();
    for (name, op) in &compiled.auto_post {
        if let Some(p) = db.find_pred(name) {
            posted.push((p, name.clone(), op.clone()));
        }
    }
    for d in &program.directives {
        if let Directive::Post(name, op) = d {
            if let Some(p) = db.find_pred(name) {
                posted.push((p, name.clone(), op.clone()));
            }
        }
    }

    // -- mode classification ---------------------------------------------
    let posted_preds: FxHashSet<u32> = posted.iter().map(|(p, _, _)| *p).collect();
    for u in units.iter_mut() {
        let impure = u.rules.iter().any(|&ri| !rules[ri].par_full);
        let is_posted = u.preds.iter().any(|p| posted_preds.contains(p));
        u.mode = if impure || is_posted {
            Mode::Replay
        } else if u.recursive {
            Mode::DRed
        } else {
            Mode::Counting
        };
    }
    // Escalation fixpoint. (a) Taint: the inputs of a replayed scope must
    // match the baseline byte-for-byte (contents *and* row order) or its
    // aggregate totals can drift by float-accumulation order — so any
    // derived input of a replayed unit is itself replayed. (b) Intra-
    // stratum coupling: a replayed unit reading a predicate derived by a
    // *different* unit of the same stratum would see its final state where
    // the baseline interleaved partial states — replay the whole stratum
    // jointly.
    loop {
        let mut changed = false;
        for i in 0..units.len() {
            if !matches!(units[i].mode, Mode::Replay | Mode::StratumReplay) {
                continue;
            }
            let inputs: Vec<u32> = units[i]
                .pos_inputs
                .iter()
                .chain(units[i].neg_inputs.iter())
                .copied()
                .collect();
            for p in inputs {
                if let Some(&j) = unit_of_pred.get(&p) {
                    if !matches!(units[j].mode, Mode::Replay | Mode::StratumReplay) {
                        units[j].mode = Mode::Replay;
                        changed = true;
                    }
                    if units[j].stratum == units[i].stratum && j != i {
                        let s = units[i].stratum;
                        for u in units.iter_mut().filter(|u| u.stratum == s) {
                            if u.mode != Mode::StratumReplay {
                                u.mode = Mode::StratumReplay;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // -- subsumption check for readers of posted predicates --------------
    let mut fallback_full = false;
    for (p, _, op) in &posted {
        let unit = unit_of_pred.get(p).copied();
        for (ri, rule) in rules.iter().enumerate() {
            let in_own_unit = unit.is_some_and(|ui| units[ui].rules.contains(&ri));
            if in_own_unit {
                continue; // replay regenerates the intermediates
            }
            if !reader_is_subsumption_safe(rule, *p, op) {
                fallback_full = true;
            }
        }
    }

    Ok(UnitGraph {
        units,
        unit_of_pred,
        derived,
        posted,
        fallback_full,
    })
}

fn min_rule(rules: &[usize]) -> usize {
    rules.iter().copied().min().unwrap_or(usize::MAX)
}

/// True when `rule`'s use of posted predicate `p` is subsumed by the
/// compacted final state: every occurrence's value-column term is a
/// variable used *only* in direction-compatible comparison guards. A
/// from-scratch run derives through all intermediate aggregate emissions;
/// compaction keeps the extremal row per group, so a reader passes exactly
/// when anything derivable from an intermediate row is also derivable from
/// the surviving one.
fn reader_is_subsumption_safe(rule: &RRule, p: u32, op: &PostOp) -> bool {
    let (col, keep_max) = match op {
        PostOp::MaxBy(c) => (*c, true),
        PostOp::MinBy(c) => (*c, false),
    };
    let mut value_vars: Vec<u32> = Vec::new();
    let mut reads_p = false;
    for lit in &rule.body {
        match lit {
            RLiteral::Atom { atom } if atom.pred == p => {
                reads_p = true;
                match atom.terms.get(col) {
                    Some(RTerm::Var(v)) => value_vars.push(*v),
                    // A constant or missing value column joins on exact
                    // values: intermediates are not subsumed.
                    _ => return false,
                }
            }
            RLiteral::Negated(a) if a.pred == p => return false,
            _ => {}
        }
    }
    if !reads_p {
        return true;
    }
    // Each value variable may appear in exactly one atom position (its
    // own), nowhere in the head, and only in monotone guards.
    for &v in &value_vars {
        let mut atom_occurrences = 0usize;
        for lit in &rule.body {
            match lit {
                RLiteral::Atom { atom } | RLiteral::Negated(atom) => {
                    for t in &atom.terms {
                        if term_uses_var(t, v) {
                            atom_occurrences += 1;
                        }
                    }
                }
                RLiteral::Cond(e) => {
                    if expr_uses_var(e, v) && !is_monotone_guard(e, v, keep_max) {
                        return false;
                    }
                }
                RLiteral::Let(_, e) => {
                    if expr_uses_var(e, v) {
                        return false;
                    }
                }
                RLiteral::Agg { agg, .. } => {
                    if expr_uses_var(&agg.expr, v) || agg.contributors.contains(&v) {
                        return false;
                    }
                }
            }
        }
        if atom_occurrences != 1 {
            return false;
        }
        for h in &rule.head {
            if h.terms.iter().any(|t| term_uses_var(t, v)) {
                return false;
            }
        }
    }
    true
}

fn term_uses_var(t: &RTerm, v: u32) -> bool {
    match t {
        RTerm::Var(u) => *u == v,
        RTerm::Const(_) => false,
        RTerm::Skolem { args, .. } => args.iter().any(|a| term_uses_var(a, v)),
    }
}

fn expr_uses_var(e: &RExpr, v: u32) -> bool {
    match e {
        RExpr::Var(u) => *u == v,
        RExpr::Const(_) => false,
        RExpr::Binary(_, a, b) | RExpr::Cmp(_, a, b) => expr_uses_var(a, v) || expr_uses_var(b, v),
        RExpr::Call { args, .. } => args.iter().any(|a| expr_uses_var(a, v)),
    }
}

/// `v >= e` / `v > e` (max-posted) or `v <= e` / `v < e` (min-posted),
/// in either orientation, with `v` absent from the other side.
fn is_monotone_guard(e: &RExpr, v: u32, keep_max: bool) -> bool {
    use crate::ast::CmpOp::*;
    let RExpr::Cmp(op, a, b) = e else {
        return false;
    };
    let var_left = matches!(**a, RExpr::Var(u) if u == v) && !expr_uses_var(b, v);
    let var_right = matches!(**b, RExpr::Var(u) if u == v) && !expr_uses_var(a, v);
    match (var_left, var_right) {
        (true, false) => {
            if keep_max {
                matches!(op, Gt | Ge)
            } else {
                matches!(op, Lt | Le)
            }
        }
        (false, true) => {
            if keep_max {
                matches!(op, Lt | Le)
            } else {
                matches!(op, Gt | Ge)
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::resolve::{compile, resolve_rules};

    fn graph_of(src: &str) -> (UnitGraph, Database, Vec<RRule>, Program) {
        let program = Program::parse(src).unwrap();
        let compiled = compile(&program).unwrap();
        let mut db = Database::new();
        let rules = resolve_rules(&program, &mut db).unwrap();
        let g = build_units(&program, &compiled, &rules, &db).unwrap();
        (g, db, rules, program)
    }

    fn unit_mode(g: &UnitGraph, db: &Database, pred: &str) -> Mode {
        let p = db.find_pred(pred).unwrap();
        g.units[g.unit_of_pred[&p]].mode
    }

    #[test]
    fn closelink_units_split_aggregate_from_pure_recursion() {
        let (g, db, _, _) = graph_of(
            "acc(X, Y, V) :- own(X, Y, W), X != Y, V = msum(W, <X, Y>).\n\
             acc(X, Y, V) :- own(X, Z, W1), Z != X, acc(Z, Y, W2), Y != X, V = msum(W1 * W2, <Z>).\n\
             cl(X, Y) :- acc(X, Y, V), th(T), V >= T.\n\
             cl(X, Y) :- cl(Y, X).",
        );
        assert!(!g.fallback_full);
        assert_eq!(unit_mode(&g, &db, "acc"), Mode::Replay);
        assert_eq!(unit_mode(&g, &db, "cl"), Mode::DRed);
        // acc (the replayed unit) evaluates before cl.
        let acc = g.unit_of_pred[&db.find_pred("acc").unwrap()];
        let cl = g.unit_of_pred[&db.find_pred("cl").unwrap()];
        assert!(acc < cl);
    }

    #[test]
    fn pure_programs_get_counting_and_dred() {
        let (g, db, _, _) = graph_of(
            "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).\n\
             summary(X) :- t(X, _), n(X).",
        );
        assert_eq!(unit_mode(&g, &db, "t"), Mode::DRed);
        assert_eq!(unit_mode(&g, &db, "summary"), Mode::Counting);
    }

    #[test]
    fn aggregate_feeder_is_tainted_to_replay() {
        // base is pure and non-recursive, but its row order feeds the
        // aggregate in total — so it must be replayed, not counted. The
        // negation pushes acc a stratum above base, so this exercises the
        // cross-stratum taint rule rather than intra-stratum coupling.
        let (g, db, _, _) = graph_of(
            "base(X, Y, W) :- e(X, Y, W).\n\
             acc(X, V) :- base(X, _, W), not skip(X), V = msum(W, <X>).",
        );
        assert_eq!(unit_mode(&g, &db, "base"), Mode::Replay);
        assert_eq!(unit_mode(&g, &db, "acc"), Mode::Replay);
        let b = g.unit_of_pred[&db.find_pred("base").unwrap()];
        let a = g.unit_of_pred[&db.find_pred("acc").unwrap()];
        assert!(g.units[b].stratum < g.units[a].stratum);
    }

    #[test]
    fn replayed_aggregate_taints_derived_inputs() {
        // The aggregate reads helper, a derived unit: replay correctness
        // needs helper's contents *and row order* to match the baseline,
        // so the taint escalation replays helper too. (Since strata now
        // split on every cross-component dependency, helper converges in
        // an earlier stratum than acc — two units of the same stratum can
        // never read each other, so the intra-stratum coupling escalation
        // is a defensive backstop rather than a reachable state here.)
        let (g, db, _, _) = graph_of(
            "helper(X, Y, W) :- e(X, Y, W), own(X).\n\
             acc(X, V) :- helper(X, _, W), V = msum(W, <X>).",
        );
        assert!(
            g.units[g.unit_of_pred[&db.find_pred("helper").unwrap()]].stratum
                < g.units[g.unit_of_pred[&db.find_pred("acc").unwrap()]].stratum
        );
        assert_eq!(unit_mode(&g, &db, "helper"), Mode::Replay);
        assert_eq!(unit_mode(&g, &db, "acc"), Mode::Replay);
    }

    #[test]
    fn downward_guard_on_max_posted_pred_forces_full_fallback() {
        // `V <= T` on a max-posted aggregate: intermediate emissions can
        // fire where the final value does not — no incremental strategy is
        // safe, fall back to full recomputation.
        let (g, _, _, _) = graph_of(
            "acc(X, V) :- own(X, W), V = msum(W, <X>).\n\
             small(X) :- acc(X, V), V <= 0.5.",
        );
        assert!(g.fallback_full);
    }

    #[test]
    fn upward_guard_on_max_posted_pred_is_safe() {
        let (g, _, _, _) = graph_of(
            "acc(X, V) :- own(X, W), V = msum(W, <X>).\n\
             big(X) :- acc(X, V), V >= 0.5.",
        );
        assert!(!g.fallback_full);
    }

    #[test]
    fn negation_introduces_separate_strata_units() {
        let (g, db, _, _) = graph_of(
            "reach(Y) :- start(Y). reach(Y) :- reach(X), e(X, Y).\n\
             unreach(X) :- node(X), not reach(X).",
        );
        assert_eq!(unit_mode(&g, &db, "reach"), Mode::DRed);
        assert_eq!(unit_mode(&g, &db, "unreach"), Mode::Counting);
        let ru = g.unit_of_pred[&db.find_pred("reach").unwrap()];
        let uu = g.unit_of_pred[&db.find_pred("unreach").unwrap()];
        assert!(g.units[ru].stratum < g.units[uu].stratum);
        assert_eq!(g.units[uu].neg_inputs.len(), 1);
    }
}
