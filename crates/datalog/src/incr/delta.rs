//! Delta enumeration for maintained units.
//!
//! The engine's executor evaluates rules against frozen relation snapshots
//! and deduplicates at emit time — exactly what derivation *counting* must
//! not do. This module provides a small interpretive enumerator that walks
//! a rule body in textual order against explicit per-atom [`RowsView`]s
//! (old state, new state, or a delta list), yielding every distinct
//! binding once. Counting maintenance and delete-and-rederive are built on
//! top of it.
//!
//! Views express the four states incremental maintenance needs without
//! materialising them. Physical deltas are applied to relations before the
//! maintained units that read them run, so for an input predicate with
//! delta `(ins, del)` the relation holds the NEW state and:
//!
//! * old state     = `AllMinusPlus(ins_set, del)`
//! * old ∖ del     = `AllMinus(ins_set)`
//! * new state     = `All`
//! * new ∖ ins     = `AllMinus(ins_set)` (same rows, different reading)
//! * the delta     = `List(del)` / `List(ins)`
//!
//! A maintained unit's *own* relations are only touched after its phases
//! complete, so inside DRed the unit predicates read as `All` (old) until
//! the overdeletion is applied.

use crate::db::{Database, Relation};
use crate::error::{DatalogError, Result};
use crate::eval::exec::eval_pure_expr;
use crate::eval::resolve::{RAtom, RLiteral, RRule, RTerm};
use crate::fx::FxHashSet;
use crate::value::{Const, Tuple};

/// Net membership change of one predicate: tuples that left and tuples
/// that entered, with set views for O(1) membership tests.
#[derive(Debug, Default, Clone)]
pub(crate) struct PredDelta {
    pub ins: Vec<Tuple>,
    pub ins_set: FxHashSet<Tuple>,
    pub del: Vec<Tuple>,
    pub del_set: FxHashSet<Tuple>,
}

impl PredDelta {
    pub fn push_ins(&mut self, t: Tuple) {
        if self.ins_set.insert(t.clone()) {
            self.ins.push(t);
        }
    }

    pub fn push_del(&mut self, t: Tuple) {
        if self.del_set.insert(t.clone()) {
            self.del.push(t);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }

    /// Delta taking `old_rows` to the current contents of `rel`.
    pub fn from_diff(old_rows: &[Tuple], rel: &Relation) -> Self {
        let old_set: FxHashSet<&[Const]> = old_rows.iter().map(|t| &t[..]).collect();
        let mut d = PredDelta::default();
        for row in rel.rows() {
            if !old_set.contains(row) {
                d.push_ins(Tuple::from(row));
            }
        }
        for t in old_rows {
            if rel.find(t).is_none() {
                d.push_del(t.clone());
            }
        }
        d
    }
}

/// How one positive atom's rows are produced during enumeration.
#[derive(Clone, Copy)]
pub(crate) enum RowsView<'a> {
    /// Every row of the relation.
    All,
    /// Relation rows not in the set.
    AllMinus(&'a FxHashSet<Tuple>),
    /// Relation rows not in the set, then the extra list.
    AllMinusPlus(&'a FxHashSet<Tuple>, &'a [Tuple]),
    /// Exactly the listed tuples.
    List(&'a [Tuple]),
}

/// A textual-order evaluation plan for one rule: positive atoms in source
/// order, with every non-atom literal scheduled at the earliest slot where
/// its variables are bound, and the per-atom bound-position mask for index
/// probes.
#[derive(Debug)]
pub(crate) struct RulePlan {
    /// Body literal index of each positive atom, textual order.
    pub atoms: Vec<usize>,
    /// Predicate of each atom (parallel to `atoms`).
    pub preds: Vec<u32>,
    /// Non-atom literals to evaluate before atom `k` (`slots[k]`) and
    /// after the last atom (`slots[atoms.len()]`).
    pub slots: Vec<Vec<usize>>,
    /// Bound-position mask of each atom given everything scheduled before
    /// it (plus the plan's initial bound set).
    pub masks: Vec<u64>,
}

impl RulePlan {
    /// Builds a plan. `initially_bound` is non-empty only for rederivation
    /// plans, where the head variables are pre-bound.
    pub fn build(rule: &RRule, initially_bound: &FxHashSet<u32>) -> Result<RulePlan> {
        let mut atoms = Vec::new();
        let mut preds = Vec::new();
        let mut pending: Vec<usize> = Vec::new();
        for (li, lit) in rule.body.iter().enumerate() {
            match lit {
                RLiteral::Atom { atom } => {
                    atoms.push(li);
                    preds.push(atom.pred);
                }
                RLiteral::Agg { .. } => {
                    return Err(DatalogError::Validation(
                        "aggregate rule in a maintained unit".into(),
                    ))
                }
                _ => pending.push(li),
            }
        }
        let mut bound: FxHashSet<u32> = initially_bound.clone();
        let mut slots: Vec<Vec<usize>> = Vec::with_capacity(atoms.len() + 1);
        let mut masks = Vec::with_capacity(atoms.len());
        for slot in 0..=atoms.len() {
            if slot > 0 {
                if let RLiteral::Atom { atom } = &rule.body[atoms[slot - 1]] {
                    collect_atom_vars(atom, &mut bound);
                }
            }
            let mut here = Vec::new();
            loop {
                let before = here.len();
                pending.retain(|&li| {
                    if lit_ready(&rule.body[li], &bound) {
                        if let RLiteral::Let(v, _) = &rule.body[li] {
                            bound.insert(*v);
                        }
                        here.push(li);
                        false
                    } else {
                        true
                    }
                });
                if here.len() == before {
                    break;
                }
            }
            slots.push(here);
            if slot < atoms.len() {
                let RLiteral::Atom { atom } = &rule.body[atoms[slot]] else {
                    unreachable!()
                };
                let mut mask = 0u64;
                for (i, t) in atom.terms.iter().enumerate() {
                    let is_bound = match t {
                        RTerm::Const(_) => true,
                        RTerm::Var(v) => bound.contains(v),
                        RTerm::Skolem { .. } => {
                            return Err(DatalogError::Validation(
                                "skolem term in a maintained unit".into(),
                            ))
                        }
                    };
                    if is_bound && i < 64 {
                        mask |= 1 << i;
                    }
                }
                masks.push(mask);
            }
        }
        if !pending.is_empty() {
            return Err(DatalogError::Validation(format!(
                "rule {}: body literal depends on variables no atom binds",
                rule.idx
            )));
        }
        Ok(RulePlan {
            atoms,
            preds,
            slots,
            masks,
        })
    }

    /// Registers this plan's probe masks on the relations it reads.
    pub fn register_indexes(&self, rule: &RRule, db: &mut Database) {
        for (k, &li) in self.atoms.iter().enumerate() {
            let RLiteral::Atom { atom } = &rule.body[li] else {
                unreachable!()
            };
            let mask = self.masks[k];
            if mask != 0 && (mask.count_ones() as usize) < atom.terms.len() {
                db.relation_mut(atom.pred).register_index(mask);
            }
        }
    }
}

fn lit_ready(lit: &RLiteral, bound: &FxHashSet<u32>) -> bool {
    let mut vars = Vec::new();
    match lit {
        RLiteral::Negated(a) => {
            for t in &a.terms {
                collect_term_vars(t, &mut vars);
            }
        }
        RLiteral::Cond(e) | RLiteral::Let(_, e) => collect_expr_vars(e, &mut vars),
        RLiteral::Atom { .. } | RLiteral::Agg { .. } => return false,
    }
    vars.iter().all(|v| bound.contains(v))
}

fn collect_atom_vars(atom: &RAtom, out: &mut FxHashSet<u32>) {
    let mut vars = Vec::new();
    for t in &atom.terms {
        collect_term_vars(t, &mut vars);
    }
    out.extend(vars);
}

fn collect_term_vars(t: &RTerm, out: &mut Vec<u32>) {
    match t {
        RTerm::Var(v) => out.push(*v),
        RTerm::Const(_) => {}
        RTerm::Skolem { args, .. } => {
            for a in args {
                collect_term_vars(a, out);
            }
        }
    }
}

fn collect_expr_vars(e: &crate::eval::resolve::RExpr, out: &mut Vec<u32>) {
    use crate::eval::resolve::RExpr;
    match e {
        RExpr::Var(v) => out.push(*v),
        RExpr::Const(_) => {}
        RExpr::Binary(_, a, b) | RExpr::Cmp(_, a, b) => {
            collect_expr_vars(a, out);
            collect_expr_vars(b, out);
        }
        RExpr::Call { args, .. } => {
            for a in args {
                collect_expr_vars(a, out);
            }
        }
    }
}

/// Enumerates every distinct binding of `rule` under the given per-atom
/// views, calling `on_match` once per full match. `on_match` returns
/// `false` to stop early; `enumerate` then returns `Ok(false)`.
///
/// `binding` must be `rule.nvars` long; entries for a rederivation plan's
/// head variables may be pre-set, everything else `None`. It is restored
/// on return.
pub(crate) fn enumerate<F>(
    plan: &RulePlan,
    rule: &RRule,
    db: &Database,
    views: &[RowsView<'_>],
    binding: &mut [Option<Const>],
    on_match: &mut F,
) -> Result<bool>
where
    F: FnMut(&[Option<Const>]) -> bool,
{
    debug_assert_eq!(views.len(), plan.atoms.len());
    walk(plan, rule, db, views, binding, 0, on_match)
}

fn walk<F>(
    plan: &RulePlan,
    rule: &RRule,
    db: &Database,
    views: &[RowsView<'_>],
    binding: &mut [Option<Const>],
    slot: usize,
    on_match: &mut F,
) -> Result<bool>
where
    F: FnMut(&[Option<Const>]) -> bool,
{
    // Non-atom literals scheduled at this slot: filters prune, lets bind.
    let mut let_trail: Vec<u32> = Vec::new();
    let mut pass = true;
    for &li in &plan.slots[slot] {
        match &rule.body[li] {
            RLiteral::Negated(atom) => {
                let tuple: Tuple = atom
                    .terms
                    .iter()
                    .map(|t| term_value(t, binding))
                    .collect::<Result<_>>()?;
                if db.relations[atom.pred as usize].find(&tuple).is_some() {
                    pass = false;
                    break;
                }
            }
            RLiteral::Cond(e) => match eval_pure_expr(e, binding)? {
                Const::Bool(true) => {}
                Const::Bool(false) => {
                    pass = false;
                    break;
                }
                other => {
                    return Err(DatalogError::Function(format!(
                        "condition evaluated to non-boolean {other}"
                    )))
                }
            },
            RLiteral::Let(v, e) => {
                let val = eval_pure_expr(e, binding)?;
                match binding[*v as usize] {
                    Some(existing) => {
                        if existing != val {
                            pass = false;
                            break;
                        }
                    }
                    None => {
                        binding[*v as usize] = Some(val);
                        let_trail.push(*v);
                    }
                }
            }
            _ => unreachable!("only filters and lets are scheduled in slots"),
        }
    }
    let mut keep_going = true;
    if pass {
        if slot == plan.atoms.len() {
            keep_going = on_match(binding);
        } else {
            keep_going = scan_atom(plan, rule, db, views, binding, slot, on_match)?;
        }
    }
    for v in let_trail {
        binding[v as usize] = None;
    }
    Ok(keep_going)
}

fn scan_atom<F>(
    plan: &RulePlan,
    rule: &RRule,
    db: &Database,
    views: &[RowsView<'_>],
    binding: &mut [Option<Const>],
    slot: usize,
    on_match: &mut F,
) -> Result<bool>
where
    F: FnMut(&[Option<Const>]) -> bool,
{
    let RLiteral::Atom { atom } = &rule.body[plan.atoms[slot]] else {
        unreachable!()
    };
    let rel = &db.relations[atom.pred as usize];
    let mask = plan.masks[slot];
    let full_mask = atom.terms.len() < 64 && mask.count_ones() as usize == atom.terms.len();

    let mut try_tuple = |tuple: &[Const], binding: &mut [Option<Const>]| -> Result<bool> {
        let mut trail: Vec<u32> = Vec::new();
        let ok = unify(atom, tuple, binding, &mut trail);
        let keep = if ok {
            walk(plan, rule, db, views, binding, slot + 1, on_match)?
        } else {
            true
        };
        for v in trail {
            binding[v as usize] = None;
        }
        Ok(keep)
    };

    match views[slot] {
        RowsView::List(list) => {
            for t in list {
                if !try_tuple(t, binding)? {
                    return Ok(false);
                }
            }
        }
        RowsView::All | RowsView::AllMinus(_) | RowsView::AllMinusPlus(..) => {
            let minus: Option<&FxHashSet<Tuple>> = match views[slot] {
                RowsView::AllMinus(s) | RowsView::AllMinusPlus(s, _) => Some(s),
                _ => None,
            };
            let skip = |t: &[Const]| minus.is_some_and(|s| s.contains(t));
            if mask != 0 {
                // All masked positions are bound: probe (or point lookup).
                let key: Tuple = {
                    let mut k = Vec::with_capacity(mask.count_ones() as usize);
                    for (i, t) in atom.terms.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            k.push(term_value(t, binding)?);
                        }
                    }
                    k.into()
                };
                if full_mask {
                    if rel.find(&key).is_some() && !skip(&key) && !try_tuple(&key, binding)? {
                        return Ok(false);
                    }
                } else {
                    for &row in rel.probe(mask, &key) {
                        let t = rel.row(row);
                        if !skip(t) && !try_tuple(t, binding)? {
                            return Ok(false);
                        }
                    }
                }
            } else {
                for row in 0..rel.len() as u32 {
                    let t = rel.row(row);
                    if !skip(t) && !try_tuple(t, binding)? {
                        return Ok(false);
                    }
                }
            }
            if let RowsView::AllMinusPlus(_, plus) = views[slot] {
                for t in plus {
                    if !try_tuple(t, binding)? {
                        return Ok(false);
                    }
                }
            }
        }
    }
    Ok(true)
}

fn unify(
    atom: &RAtom,
    tuple: &[Const],
    binding: &mut [Option<Const>],
    trail: &mut Vec<u32>,
) -> bool {
    if atom.terms.len() != tuple.len() {
        return false;
    }
    for (t, &c) in atom.terms.iter().zip(tuple.iter()) {
        match t {
            RTerm::Const(k) => {
                if *k != c {
                    return false;
                }
            }
            RTerm::Var(v) => match binding[*v as usize] {
                Some(existing) => {
                    if existing != c {
                        return false;
                    }
                }
                None => {
                    binding[*v as usize] = Some(c);
                    trail.push(*v);
                }
            },
            RTerm::Skolem { .. } => return false,
        }
    }
    true
}

fn term_value(t: &RTerm, binding: &[Option<Const>]) -> Result<Const> {
    match t {
        RTerm::Const(c) => Ok(*c),
        RTerm::Var(v) => binding[*v as usize].ok_or_else(|| {
            DatalogError::Validation("unbound variable during delta enumeration".into())
        }),
        RTerm::Skolem { .. } => Err(DatalogError::Validation(
            "skolem term in a maintained unit".into(),
        )),
    }
}

/// Instantiates a head atom under a full binding.
pub(crate) fn head_tuple(atom: &RAtom, binding: &[Option<Const>]) -> Result<Tuple> {
    atom.terms.iter().map(|t| term_value(t, binding)).collect()
}
