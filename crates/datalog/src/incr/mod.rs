//! Incremental view maintenance.
//!
//! An [`IncrementalEngine`] wraps an [`Engine`] and a [`Database`] into a
//! long-lived session: after one initial fixpoint, base-fact insertions
//! *and deletions* are propagated through the stratified program instead
//! of re-running it from scratch. The contract is exact: after
//! [`IncrementalEngine::apply_update`] the database is set-identical to
//! replaying the whole update log against a fresh database and running
//! the engine once (the *log-replay baseline* — the differential suites
//! compare against exactly that, via [`Database::dump_canonical`] so
//! labelled nulls are compared structurally).
//!
//! Strategy selection is per dependency unit (see [`units`]):
//! non-recursive pure units are maintained by derivation counting,
//! recursive pure units by delete-and-rederive (DRed), and
//! order-sensitive units (aggregates, Skolem invention, external calls,
//! `@post`) by scoped replay through the engine's own stratum evaluator —
//! which is byte-faithful because the session keeps symbol interning,
//! seed rows, and input row order identical to the baseline. Programs
//! whose readers of compacted aggregate predicates fail the subsumption
//! check fall back to full recomputation per update: slower, never wrong.
//!
//! Sessions do not support provenance tracking (`EngineOptions::provenance`
//! is rejected at construction): replayed relations would lose the row
//! provenance of the initial run.

mod delta;
mod units;

use std::time::{Duration, Instant};

use crate::ast::{Lit, Program, Term};
use crate::db::Database;
use crate::error::{DatalogError, Result};
use crate::eval::agg::AggStore;
use crate::eval::exec::Workspace;
use crate::eval::resolve::{resolve_rules, RRule};
use crate::eval::{apply_post, run_stratum, Engine, RunStats};
use crate::fx::{FxHashMap, FxHashSet};
use crate::value::{Const, Tuple};

use delta::{enumerate, head_tuple, PredDelta, RowsView, RulePlan};
use units::{build_units, Mode, UnitGraph};

/// A transactional base-fact update: deletions are applied first, then
/// insertions. Deleting an absent fact or inserting a present one is a
/// no-op; a fact both deleted and inserted ends up present and derives
/// nothing new. Only extensional (non-derived) predicates may be updated.
#[derive(Debug, Clone, Default)]
pub struct Update {
    /// Facts to insert, as (predicate, tuple).
    pub insert: Vec<(String, Vec<Const>)>,
    /// Facts to delete, as (predicate, tuple).
    pub delete: Vec<(String, Vec<Const>)>,
}

impl Update {
    /// True when the update contains no operations.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }
}

/// How an update was propagated.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateStats {
    /// Units maintained by derivation counting.
    pub counting_units: usize,
    /// Units maintained by delete-and-rederive.
    pub dred_units: usize,
    /// Units (or whole strata) re-run through the engine.
    pub replayed_units: usize,
    /// Units skipped because no input of theirs changed.
    pub skipped_units: usize,
    /// Facts rederived after overdeletion (DRed phase B).
    pub rederived: usize,
    /// True when the whole program was recomputed (subsumption fallback).
    pub full_recompute: bool,
    /// Wall-clock duration of the update.
    pub duration: Duration,
}

/// Net fact-level effect of one update, base and derived, in canonical
/// (predicate name, tuple) form sorted by predicate then tuple.
#[derive(Debug, Clone, Default)]
pub struct ChangeSet {
    /// Facts that entered the database.
    pub inserted: Vec<(String, Vec<Const>)>,
    /// Facts that left the database.
    pub deleted: Vec<(String, Vec<Const>)>,
    /// Propagation statistics.
    pub stats: UpdateStats,
}

impl ChangeSet {
    /// True when the update changed nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

/// Which maintenance strategies a session selected (diagnostics).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionInfo {
    /// Units maintained by derivation counting.
    pub counting_units: usize,
    /// Units maintained by delete-and-rederive.
    pub dred_units: usize,
    /// Units replayed standalone.
    pub replay_units: usize,
    /// Units replayed jointly with their stratum.
    pub stratum_replay_units: usize,
    /// True when every update recomputes from scratch (subsumption
    /// fallback).
    pub full_fallback: bool,
}

/// A long-lived incremental reasoning session over one program and one
/// database.
pub struct IncrementalEngine {
    engine: Engine,
    db: Database,
    rules: Vec<RRule>,
    graph: UnitGraph,
    /// Forward enumeration plans for rules of maintained units.
    plans: FxHashMap<usize, RulePlan>,
    /// Rederivation plans for DRed units, keyed by (rule, head index).
    rederive_plans: FxHashMap<(usize, usize), RulePlan>,
    /// Derivation counts of counting-unit facts.
    counts: FxHashMap<(u32, Tuple), u64>,
    /// Derived-predicate facts asserted before the initial run: they are
    /// axioms, never deleted by maintenance, and restored on replay.
    seeds: FxHashSet<(u32, Tuple)>,
    /// Seed rows per predicate in original insertion order.
    seed_rows: FxHashMap<u32, Vec<Tuple>>,
    threads: usize,
}

impl IncrementalEngine {
    /// Opens a session with default engine options: runs the initial
    /// fixpoint on `db` and prepares maintenance state.
    pub fn new(program: &Program, db: Database) -> Result<Self> {
        Self::with(Engine::new(program)?, db)
    }

    /// Opens a session around a pre-configured engine.
    pub fn with(engine: Engine, mut db: Database) -> Result<Self> {
        if engine.options().provenance {
            return Err(DatalogError::Validation(
                "incremental sessions do not support provenance tracking".into(),
            ));
        }
        let threads = par::resolve(engine.options().threads);
        // Resolve before the initial run so seed rows of derived
        // predicates can be captured. The engine re-resolves internally;
        // interning is idempotent, so the ids agree.
        let rules = resolve_rules(engine.program(), &mut db)?;
        let mut derived: FxHashSet<u32> = FxHashSet::default();
        for rule in &rules {
            for h in &rule.head {
                derived.insert(h.pred);
            }
        }
        let mut seeds = FxHashSet::default();
        let mut seed_rows: FxHashMap<u32, Vec<Tuple>> = FxHashMap::default();
        for &p in &derived {
            let rel = &db.relations[p as usize];
            if rel.is_empty() {
                continue;
            }
            let rows: Vec<Tuple> = rel.rows().map(Tuple::from).collect();
            for t in &rows {
                seeds.insert((p, t.clone()));
            }
            seed_rows.insert(p, rows);
        }
        engine.run(&mut db)?;
        let graph = build_units(engine.program(), engine.compiled(), &rules, &db)?;
        let mut session = IncrementalEngine {
            engine,
            db,
            rules,
            graph,
            plans: FxHashMap::default(),
            rederive_plans: FxHashMap::default(),
            counts: FxHashMap::default(),
            seeds,
            seed_rows,
            threads,
        };
        session.build_plans()?;
        session.init_counts()?;
        Ok(session)
    }

    /// The session database (post initial run / last update).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Interns a symbol for building update tuples.
    pub fn sym(&mut self, s: &str) -> Const {
        self.db.sym(s)
    }

    /// Strategy summary for diagnostics.
    pub fn info(&self) -> SessionInfo {
        let mut info = SessionInfo {
            full_fallback: self.graph.fallback_full,
            ..SessionInfo::default()
        };
        for u in &self.graph.units {
            match u.mode {
                Mode::Counting => info.counting_units += 1,
                Mode::DRed => info.dred_units += 1,
                Mode::Replay => info.replay_units += 1,
                Mode::StratumReplay => info.stratum_replay_units += 1,
            }
        }
        info
    }

    /// Parses an update file: one ground fact per line, prefixed with `+`
    /// (insert) or `-` (delete). `%` starts a comment; blank lines are
    /// skipped. A trailing `.` on the fact is optional.
    pub fn parse_update(&mut self, src: &str) -> Result<Update> {
        let mut update = Update::default();
        for (lineno, raw) in src.lines().enumerate() {
            let line = match raw.find('%') {
                Some(i) => raw[..i].trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (sign, rest) = match line.chars().next() {
                Some('+') => (true, &line[1..]),
                Some('-') => (false, &line[1..]),
                _ => {
                    return Err(DatalogError::Parse {
                        line: lineno + 1,
                        message: "update line must start with '+' or '-'".into(),
                    })
                }
            };
            let fact_src = {
                let r = rest.trim();
                if r.ends_with('.') {
                    r.to_string()
                } else {
                    format!("{r}.")
                }
            };
            let parsed = Program::parse(&fact_src).map_err(|e| DatalogError::Parse {
                line: lineno + 1,
                message: format!("bad update fact: {e}"),
            })?;
            let bad = |message: String| DatalogError::Parse {
                line: lineno + 1,
                message,
            };
            if parsed.rules.len() != 1 {
                return Err(bad("expected exactly one fact per line".into()));
            }
            let rule = &parsed.rules[0];
            if !rule.body.is_empty() || rule.head.len() != 1 {
                return Err(bad("update lines must be ground facts".into()));
            }
            let atom = &rule.head[0];
            let mut tuple = Vec::with_capacity(atom.terms.len());
            for term in &atom.terms {
                match term {
                    Term::Lit(Lit::Str(s)) => tuple.push(self.db.sym(s)),
                    Term::Lit(Lit::Int(i)) => tuple.push(Const::Int(*i)),
                    Term::Lit(Lit::Float(f)) => tuple.push(Const::float(*f)),
                    Term::Lit(Lit::Bool(b)) => tuple.push(Const::Bool(*b)),
                    _ => return Err(bad("update facts must be ground".into())),
                }
            }
            let entry = (atom.pred.clone(), tuple);
            if sign {
                update.insert.push(entry);
            } else {
                update.delete.push(entry);
            }
        }
        Ok(update)
    }

    /// Applies a base-fact update and propagates it through the program.
    ///
    /// On error the session state is unspecified; discard it.
    pub fn apply_update(&mut self, update: &Update) -> Result<ChangeSet> {
        let start = Instant::now();
        // Validate everything before touching state.
        for (name, tuple) in update.delete.iter().chain(update.insert.iter()) {
            if let Some(p) = self.db.find_pred(name) {
                if self.graph.derived.contains(&p) {
                    return Err(DatalogError::BadFact(format!(
                        "cannot update derived predicate '{name}'"
                    )));
                }
                self.db.check_arity(p, tuple.len())?;
            }
        }
        // Apply EDB deletions, then insertions; record raw per-pred deltas.
        let mut raw: FxHashMap<u32, PredDelta> = FxHashMap::default();
        for (name, tuple) in &update.delete {
            let Some(p) = self.db.find_pred(name) else {
                continue;
            };
            let t: Tuple = tuple.clone().into();
            if self.db.relations[p as usize].find(&t).is_some() {
                raw.entry(p).or_default().push_del(t);
            }
        }
        for (p, d) in raw.iter() {
            self.db.relation_mut(*p).remove_tuples(&d.del_set);
        }
        for (name, tuple) in &update.insert {
            let p = self.db.pred_id(name);
            self.db.check_arity(p, tuple.len())?;
            if self.graph.derived.contains(&p) {
                return Err(DatalogError::BadFact(format!(
                    "cannot update derived predicate '{name}'"
                )));
            }
            let t: Tuple = tuple.clone().into();
            if self.db.relations[p as usize].find(&t).is_none() {
                self.db.relation_mut(p).insert(t.clone(), None);
                raw.entry(p).or_default().push_ins(t);
            }
        }
        // Net per-pred deltas (delete+reinsert cancels out).
        let mut changed: FxHashMap<u32, PredDelta> = FxHashMap::default();
        for (p, d) in raw {
            let net = normalize(d);
            if !net.is_empty() {
                changed.insert(p, net);
            }
        }
        let mut stats = UpdateStats::default();
        if changed.is_empty() {
            stats.duration = start.elapsed();
            return Ok(ChangeSet {
                stats,
                ..ChangeSet::default()
            });
        }

        if self.graph.fallback_full {
            self.full_recompute(&mut changed, &mut stats)?;
        } else {
            self.sweep_units(&mut changed, &mut stats)?;
        }
        stats.duration = start.elapsed();
        Ok(self.changeset(changed, stats))
    }

    // ---------------------------------------------------------------
    // session construction helpers
    // ---------------------------------------------------------------

    fn build_plans(&mut self) -> Result<()> {
        let empty = FxHashSet::default();
        for unit in &self.graph.units {
            if !matches!(unit.mode, Mode::Counting | Mode::DRed) {
                continue;
            }
            let pset: FxHashSet<u32> = unit.preds.iter().copied().collect();
            for &ri in &unit.rules {
                let rule = &self.rules[ri];
                let plan = RulePlan::build(rule, &empty)?;
                plan.register_indexes(rule, &mut self.db);
                self.plans.insert(ri, plan);
                if unit.mode == Mode::DRed {
                    for (hi, h) in rule.head.iter().enumerate() {
                        if !pset.contains(&h.pred) {
                            continue;
                        }
                        let mut head_vars = FxHashSet::default();
                        for t in &h.terms {
                            collect_rterm_vars(t, &mut head_vars);
                        }
                        let plan = RulePlan::build(rule, &head_vars)?;
                        plan.register_indexes(rule, &mut self.db);
                        self.rederive_plans.insert((ri, hi), plan);
                    }
                }
            }
        }
        Ok(())
    }

    /// Initial derivation counts: enumerate every counting rule against
    /// the post-run state. For non-recursive pure units this reproduces
    /// exactly the engine's derivations.
    fn init_counts(&mut self) -> Result<()> {
        for unit in &self.graph.units {
            if unit.mode != Mode::Counting {
                continue;
            }
            for &ri in &unit.rules {
                let rule = &self.rules[ri];
                let plan = &self.plans[&ri];
                let views = vec![RowsView::All; plan.atoms.len()];
                let mut binding = vec![None; rule.nvars];
                let mut err = None;
                enumerate(plan, rule, &self.db, &views, &mut binding, &mut |b| {
                    for h in &rule.head {
                        match head_tuple(h, b) {
                            Ok(t) => *self.counts.entry((h.pred, t)).or_insert(0) += 1,
                            Err(e) => {
                                err = Some(e);
                                return false;
                            }
                        }
                    }
                    true
                })?;
                if let Some(e) = err {
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // propagation
    // ---------------------------------------------------------------

    fn sweep_units(
        &mut self,
        changed: &mut FxHashMap<u32, PredDelta>,
        stats: &mut UpdateStats,
    ) -> Result<()> {
        let mut done = vec![false; self.graph.units.len()];
        for i in 0..self.graph.units.len() {
            if done[i] {
                continue;
            }
            done[i] = true;
            match self.graph.units[i].mode {
                Mode::StratumReplay => {
                    let stratum = self.graph.units[i].stratum;
                    let members: Vec<usize> = (0..self.graph.units.len())
                        .filter(|&j| self.graph.units[j].stratum == stratum)
                        .collect();
                    for &m in &members {
                        done[m] = true;
                    }
                    if !members
                        .iter()
                        .any(|&m| self.graph.units[m].reads_any(changed))
                    {
                        stats.skipped_units += members.len();
                        continue;
                    }
                    let rules: Vec<usize> = {
                        let mut rs: Vec<usize> = members
                            .iter()
                            .flat_map(|&m| self.graph.units[m].rules.iter().copied())
                            .collect();
                        rs.sort_unstable();
                        rs
                    };
                    let preds: Vec<u32> = members
                        .iter()
                        .flat_map(|&m| self.graph.units[m].preds.iter().copied())
                        .collect();
                    let deltas = self.replay_scope(&rules, &preds, stratum)?;
                    merge_deltas(changed, deltas);
                    stats.replayed_units += members.len();
                }
                Mode::Replay => {
                    if !self.graph.units[i].reads_any(changed) {
                        stats.skipped_units += 1;
                        continue;
                    }
                    let rules = self.graph.units[i].rules.clone();
                    let preds = self.graph.units[i].preds.clone();
                    let stratum = self.graph.units[i].stratum;
                    let deltas = self.replay_scope(&rules, &preds, stratum)?;
                    merge_deltas(changed, deltas);
                    stats.replayed_units += 1;
                }
                Mode::Counting => {
                    if !self.graph.units[i].reads_any(changed) {
                        stats.skipped_units += 1;
                        continue;
                    }
                    let deltas = if self.graph.units[i].negated_input_changed(changed) {
                        // Propagation through negation flips signs; replay
                        // the unit set-level and rebuild its counts.
                        let d = self.replay_and_recount(i)?;
                        stats.replayed_units += 1;
                        d
                    } else {
                        stats.counting_units += 1;
                        self.counting_maintain(i, changed)?
                    };
                    merge_deltas(changed, deltas);
                }
                Mode::DRed => {
                    if !self.graph.units[i].reads_any(changed) {
                        stats.skipped_units += 1;
                        continue;
                    }
                    let deltas = if self.graph.units[i].negated_input_changed(changed) {
                        let rules = self.graph.units[i].rules.clone();
                        let preds = self.graph.units[i].preds.clone();
                        let stratum = self.graph.units[i].stratum;
                        stats.replayed_units += 1;
                        self.replay_scope(&rules, &preds, stratum)?
                    } else {
                        stats.dred_units += 1;
                        self.dred_maintain(i, changed, stats)?
                    };
                    merge_deltas(changed, deltas);
                }
            }
        }
        Ok(())
    }

    /// Clears the scope's relations (restoring seed rows) and re-runs its
    /// rules through the engine's stratum evaluator, returning the diff.
    fn replay_scope(
        &mut self,
        rule_indices: &[usize],
        preds: &[u32],
        stratum_label: usize,
    ) -> Result<Vec<(u32, PredDelta)>> {
        let old: Vec<(u32, Vec<Tuple>)> = preds
            .iter()
            .map(|&p| {
                let rows = self.db.relations[p as usize]
                    .rows()
                    .map(Tuple::from)
                    .collect();
                (p, rows)
            })
            .collect();
        for &p in preds {
            let seed = self.seed_rows.get(&p).cloned().unwrap_or_default();
            self.db.relation_mut(p).replace_all(seed);
        }
        let mut agg = AggStore::default();
        let mut ws = Workspace::default();
        let mut scratch = RunStats::default();
        run_stratum(
            &self.rules,
            rule_indices,
            stratum_label,
            &mut self.db,
            self.engine.registry(),
            self.engine.options(),
            &FxHashSet::default(),
            self.threads,
            &mut agg,
            &mut ws,
            &mut scratch,
        )?;
        if self.engine.options().apply_post {
            for (p, name, op) in &self.graph.posted {
                if preds.contains(p) {
                    apply_post(&mut self.db, name, op);
                }
            }
        }
        Ok(old
            .into_iter()
            .map(|(p, rows)| {
                (
                    p,
                    normalize(PredDelta::from_diff(&rows, &self.db.relations[p as usize])),
                )
            })
            .collect())
    }

    /// Replays a counting unit (negation path) and rebuilds its counts.
    fn replay_and_recount(&mut self, i: usize) -> Result<Vec<(u32, PredDelta)>> {
        let rules = self.graph.units[i].rules.clone();
        let preds = self.graph.units[i].preds.clone();
        let stratum = self.graph.units[i].stratum;
        let deltas = self.replay_scope(&rules, &preds, stratum)?;
        self.counts.retain(|(p, _), _| !preds.contains(p));
        for &ri in &rules {
            let rule = &self.rules[ri];
            let plan = &self.plans[&ri];
            let views = vec![RowsView::All; plan.atoms.len()];
            let mut binding = vec![None; rule.nvars];
            enumerate(plan, rule, &self.db, &views, &mut binding, &mut |b| {
                for h in &rule.head {
                    if let Ok(t) = head_tuple(h, b) {
                        *self.counts.entry((h.pred, t)).or_insert(0) += 1;
                    }
                }
                true
            })?;
        }
        Ok(deltas)
    }

    /// Counting maintenance: leftmost-pinned delta enumeration over the
    /// old state for losses and the new state for gains, then zero
    /// crossings of the derivation counts become physical changes.
    fn counting_maintain(
        &mut self,
        i: usize,
        changed: &FxHashMap<u32, PredDelta>,
    ) -> Result<Vec<(u32, PredDelta)>> {
        let unit = &self.graph.units[i];
        let mut lost: FxHashMap<(u32, Tuple), u64> = FxHashMap::default();
        let mut gained: FxHashMap<(u32, Tuple), u64> = FxHashMap::default();
        for &ri in &unit.rules {
            let rule = &self.rules[ri];
            let plan = &self.plans[&ri];
            let n = plan.atoms.len();
            // Losses: instantiations of the OLD state using ≥1 deleted row,
            // partitioned by the leftmost deleted-row position.
            for k in 0..n {
                let Some(dk) = changed.get(&plan.preds[k]) else {
                    continue;
                };
                if dk.del.is_empty() {
                    continue;
                }
                let views: Vec<RowsView<'_>> = (0..n)
                    .map(|j| {
                        let dj = changed.get(&plan.preds[j]);
                        match (j.cmp(&k), dj) {
                            (std::cmp::Ordering::Equal, _) => RowsView::List(&dk.del),
                            (std::cmp::Ordering::Less, Some(d)) => RowsView::AllMinus(&d.ins_set),
                            (std::cmp::Ordering::Greater, Some(d)) => {
                                RowsView::AllMinusPlus(&d.ins_set, &d.del)
                            }
                            (_, None) => RowsView::All,
                        }
                    })
                    .collect();
                let mut binding = vec![None; rule.nvars];
                enumerate(plan, rule, &self.db, &views, &mut binding, &mut |b| {
                    for h in &rule.head {
                        if let Ok(t) = head_tuple(h, b) {
                            *lost.entry((h.pred, t)).or_insert(0) += 1;
                        }
                    }
                    true
                })?;
            }
            // Gains: instantiations of the NEW state using ≥1 inserted row.
            for k in 0..n {
                let Some(dk) = changed.get(&plan.preds[k]) else {
                    continue;
                };
                if dk.ins.is_empty() {
                    continue;
                }
                let views: Vec<RowsView<'_>> = (0..n)
                    .map(|j| {
                        let dj = changed.get(&plan.preds[j]);
                        match (j.cmp(&k), dj) {
                            (std::cmp::Ordering::Equal, _) => RowsView::List(&dk.ins),
                            (std::cmp::Ordering::Less, Some(d)) => RowsView::AllMinus(&d.ins_set),
                            _ => RowsView::All,
                        }
                    })
                    .collect();
                let mut binding = vec![None; rule.nvars];
                enumerate(plan, rule, &self.db, &views, &mut binding, &mut |b| {
                    for h in &rule.head {
                        if let Ok(t) = head_tuple(h, b) {
                            *gained.entry((h.pred, t)).or_insert(0) += 1;
                        }
                    }
                    true
                })?;
            }
        }
        // Zero crossings.
        let mut keys: Vec<(u32, Tuple)> = lost.keys().chain(gained.keys()).cloned().collect();
        keys.sort();
        keys.dedup();
        let mut out: FxHashMap<u32, PredDelta> = FxHashMap::default();
        for key in keys {
            let l = lost.get(&key).copied().unwrap_or(0);
            let g = gained.get(&key).copied().unwrap_or(0);
            let seed = self.seeds.contains(&key);
            let entry = self.counts.entry(key.clone()).or_insert(0);
            let before = *entry > 0 || seed;
            debug_assert!(*entry + g >= l, "derivation count underflow");
            *entry = (*entry + g).saturating_sub(l);
            let after = *entry > 0 || seed;
            let gone = *entry == 0;
            let (p, t) = key;
            if before && !after {
                out.entry(p).or_default().push_del(t);
            } else if !before && after {
                out.entry(p).or_default().push_ins(t);
            } else if gone && !seed {
                self.counts.remove(&(p, t));
            }
        }
        // Physical application.
        for (p, d) in &out {
            if !d.del_set.is_empty() {
                self.db.relation_mut(*p).remove_tuples(&d.del_set);
            }
            for t in &d.ins {
                self.db.relation_mut(*p).insert(t.clone(), None);
            }
        }
        Ok(out.into_iter().collect())
    }

    /// Delete-and-rederive for a recursive pure unit.
    fn dred_maintain(
        &mut self,
        i: usize,
        changed: &FxHashMap<u32, PredDelta>,
        stats: &mut UpdateStats,
    ) -> Result<Vec<(u32, PredDelta)>> {
        let unit = &self.graph.units[i];
        let pset: FxHashSet<u32> = unit.preds.iter().copied().collect();
        let unit_rules = unit.rules.clone();

        // -- Phase A: overdeletion (semi-naive over the OLD state) -------
        // Unit relations are untouched until phase C, so unit atoms read
        // `All`; input atoms read their OLD views.
        let mut dset: FxHashMap<u32, FxHashSet<Tuple>> = FxHashMap::default();
        let mut dorder: FxHashMap<u32, Vec<Tuple>> = FxHashMap::default();
        let mut frontier: FxHashMap<u32, Vec<Tuple>> = FxHashMap::default();
        let overdelete = |dset: &mut FxHashMap<u32, FxHashSet<Tuple>>,
                          dorder: &mut FxHashMap<u32, Vec<Tuple>>,
                          frontier: &mut FxHashMap<u32, Vec<Tuple>>,
                          db: &Database,
                          rule: &RRule,
                          plan: &RulePlan,
                          views: &[RowsView<'_>],
                          seeds: &FxHashSet<(u32, Tuple)>|
         -> Result<()> {
            let mut binding = vec![None; rule.nvars];
            let mut found: Vec<(u32, Tuple)> = Vec::new();
            enumerate(plan, rule, db, views, &mut binding, &mut |b| {
                for h in &rule.head {
                    if let Ok(t) = head_tuple(h, b) {
                        found.push((h.pred, t));
                    }
                }
                true
            })?;
            for (p, t) in found {
                if db.relations[p as usize].find(&t).is_none() {
                    continue;
                }
                if seeds.contains(&(p, t.clone())) {
                    continue;
                }
                if dset.entry(p).or_default().insert(t.clone()) {
                    dorder.entry(p).or_default().push(t.clone());
                    frontier.entry(p).or_default().push(t);
                }
            }
            Ok(())
        };
        // Round 0: pin on input deletions.
        for &ri in &unit_rules {
            let rule = &self.rules[ri];
            let plan = &self.plans[&ri];
            let n = plan.atoms.len();
            for k in 0..n {
                let pk = plan.preds[k];
                if pset.contains(&pk) {
                    continue;
                }
                let Some(dk) = changed.get(&pk) else { continue };
                if dk.del.is_empty() {
                    continue;
                }
                let views: Vec<RowsView<'_>> = (0..n)
                    .map(|j| {
                        if j == k {
                            RowsView::List(&dk.del)
                        } else {
                            old_view(plan.preds[j], &pset, changed)
                        }
                    })
                    .collect();
                overdelete(
                    &mut dset,
                    &mut dorder,
                    &mut frontier,
                    &self.db,
                    rule,
                    plan,
                    &views,
                    &self.seeds,
                )?;
            }
        }
        // Later rounds: pin on newly overdeleted unit facts.
        while !frontier.is_empty() {
            let cur = std::mem::take(&mut frontier);
            for &ri in &unit_rules {
                let rule = &self.rules[ri];
                let plan = &self.plans[&ri];
                let n = plan.atoms.len();
                for k in 0..n {
                    let pk = plan.preds[k];
                    let Some(pins) = cur.get(&pk) else { continue };
                    if pins.is_empty() {
                        continue;
                    }
                    let views: Vec<RowsView<'_>> = (0..n)
                        .map(|j| {
                            if j == k {
                                RowsView::List(pins)
                            } else {
                                old_view(plan.preds[j], &pset, changed)
                            }
                        })
                        .collect();
                    overdelete(
                        &mut dset,
                        &mut dorder,
                        &mut frontier,
                        &self.db,
                        rule,
                        plan,
                        &views,
                        &self.seeds,
                    )?;
                }
            }
        }

        // -- Phase B: rederivation (top-down, early exit) ----------------
        let mut alive: FxHashMap<u32, FxHashSet<Tuple>> = FxHashMap::default();
        loop {
            let dead: FxHashMap<u32, FxHashSet<Tuple>> = dset
                .iter()
                .map(|(p, s)| {
                    let a = alive.get(p);
                    let d: FxHashSet<Tuple> = s
                        .iter()
                        .filter(|t| !a.is_some_and(|a| a.contains(*t)))
                        .cloned()
                        .collect();
                    (*p, d)
                })
                .collect();
            let mut progress = false;
            for (&p, order) in &dorder {
                for t in order {
                    if alive.get(&p).is_some_and(|a| a.contains(t)) {
                        continue;
                    }
                    if self.rederivable(p, t, &pset, &dead, &unit_rules)? {
                        alive.entry(p).or_default().insert(t.clone());
                        progress = true;
                    }
                }
            }
            if !progress {
                break;
            }
        }

        // -- Phase C: apply surviving deletions --------------------------
        let mut out: FxHashMap<u32, PredDelta> = FxHashMap::default();
        for (&p, order) in &dorder {
            let a = alive.get(&p);
            let d = out.entry(p).or_default();
            for t in order {
                if !a.is_some_and(|a| a.contains(t)) {
                    d.push_del(t.clone());
                }
            }
            stats.rederived += a.map_or(0, |a| a.len());
            if !d.del_set.is_empty() {
                self.db.relation_mut(p).remove_tuples(&d.del_set);
            }
        }

        // -- Phase D: insertion (semi-naive over the NEW state) ----------
        let mut frontier: FxHashMap<u32, Vec<Tuple>> = FxHashMap::default();
        for (&p, d) in changed.iter() {
            if !pset.contains(&p) && !d.ins.is_empty() {
                frontier.insert(p, d.ins.clone());
            }
        }
        let mut first_round = true;
        while !frontier.is_empty() {
            let cur = std::mem::take(&mut frontier);
            let mut queued: Vec<(u32, Tuple)> = Vec::new();
            let mut queued_set: FxHashSet<(u32, Tuple)> = FxHashSet::default();
            for &ri in &unit_rules {
                let rule = &self.rules[ri];
                let plan = &self.plans[&ri];
                let n = plan.atoms.len();
                for k in 0..n {
                    let pk = plan.preds[k];
                    // After round 0 only unit-pred frontiers exist.
                    if first_round && pset.contains(&pk) {
                        continue;
                    }
                    let Some(pins) = cur.get(&pk) else { continue };
                    let views: Vec<RowsView<'_>> = (0..n)
                        .map(|j| {
                            if j == k {
                                RowsView::List(pins)
                            } else {
                                RowsView::All
                            }
                        })
                        .collect();
                    let mut binding = vec![None; rule.nvars];
                    enumerate(plan, rule, &self.db, &views, &mut binding, &mut |b| {
                        for h in &rule.head {
                            if let Ok(t) = head_tuple(h, b) {
                                if self.db.relations[h.pred as usize].find(&t).is_none() {
                                    let key = (h.pred, t);
                                    if queued_set.insert(key.clone()) {
                                        queued.push(key);
                                    }
                                }
                            }
                        }
                        true
                    })?;
                }
            }
            first_round = false;
            for (p, t) in queued {
                self.db.relation_mut(p).insert(t.clone(), None);
                out.entry(p).or_default().push_ins(t.clone());
                frontier.entry(p).or_default().push(t);
            }
        }

        Ok(out
            .into_iter()
            .map(|(p, d)| (p, normalize(d)))
            .filter(|(_, d)| !d.is_empty())
            .collect())
    }

    /// True when `t` of unit predicate `p` has a derivation avoiding dead
    /// facts: the DRed rederivation test.
    fn rederivable(
        &self,
        p: u32,
        t: &Tuple,
        pset: &FxHashSet<u32>,
        dead: &FxHashMap<u32, FxHashSet<Tuple>>,
        unit_rules: &[usize],
    ) -> Result<bool> {
        for &ri in unit_rules {
            let rule = &self.rules[ri];
            for (hi, h) in rule.head.iter().enumerate() {
                if h.pred != p {
                    continue;
                }
                let Some(plan) = self.rederive_plans.get(&(ri, hi)) else {
                    continue;
                };
                let mut binding: Vec<Option<Const>> = vec![None; rule.nvars];
                if !bind_head(h, t, &mut binding) {
                    continue;
                }
                let views: Vec<RowsView<'_>> = plan
                    .preds
                    .iter()
                    .map(|pj| {
                        if pset.contains(pj) {
                            match dead.get(pj) {
                                Some(d) if !d.is_empty() => RowsView::AllMinus(d),
                                _ => RowsView::All,
                            }
                        } else {
                            RowsView::All
                        }
                    })
                    .collect();
                let stopped =
                    !enumerate(plan, rule, &self.db, &views, &mut binding, &mut |_| false)?;
                if stopped {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Subsumption-fallback path: restore seed rows, clear derived
    /// relations, and re-run the whole program.
    fn full_recompute(
        &mut self,
        changed: &mut FxHashMap<u32, PredDelta>,
        stats: &mut UpdateStats,
    ) -> Result<()> {
        let mut derived: Vec<u32> = self.graph.derived.iter().copied().collect();
        derived.sort_unstable();
        let old: Vec<(u32, Vec<Tuple>)> = derived
            .iter()
            .map(|&p| {
                let rows = self.db.relations[p as usize]
                    .rows()
                    .map(Tuple::from)
                    .collect();
                (p, rows)
            })
            .collect();
        for &p in &derived {
            let seed = self.seed_rows.get(&p).cloned().unwrap_or_default();
            self.db.relation_mut(p).replace_all(seed);
        }
        self.engine.run(&mut self.db)?;
        for (p, rows) in old {
            let d = normalize(PredDelta::from_diff(&rows, &self.db.relations[p as usize]));
            if !d.is_empty() {
                changed.insert(p, d);
            }
        }
        stats.full_recompute = true;
        Ok(())
    }

    fn changeset(&self, changed: FxHashMap<u32, PredDelta>, stats: UpdateStats) -> ChangeSet {
        let mut inserted: Vec<(String, Vec<Const>)> = Vec::new();
        let mut deleted: Vec<(String, Vec<Const>)> = Vec::new();
        let mut preds: Vec<u32> = changed.keys().copied().collect();
        preds.sort_by(|a, b| self.db.pred_name(*a).cmp(self.db.pred_name(*b)));
        for p in preds {
            let name = self.db.pred_name(p);
            let d = &changed[&p];
            let mut ins: Vec<&Tuple> = d.ins.iter().collect();
            let mut del: Vec<&Tuple> = d.del.iter().collect();
            ins.sort();
            del.sort();
            for t in ins {
                inserted.push((name.to_string(), t.to_vec()));
            }
            for t in del {
                deleted.push((name.to_string(), t.to_vec()));
            }
        }
        ChangeSet {
            inserted,
            deleted,
            stats,
        }
    }
}

/// OLD view of a predicate during DRed phase A: unit relations are still
/// physically old (`All`); inputs have their deltas already applied, so
/// OLD = relation ∖ ins ∪ del.
fn old_view<'a>(
    pred: u32,
    pset: &FxHashSet<u32>,
    changed: &'a FxHashMap<u32, PredDelta>,
) -> RowsView<'a> {
    if pset.contains(&pred) {
        return RowsView::All;
    }
    match changed.get(&pred) {
        Some(d) => RowsView::AllMinusPlus(&d.ins_set, &d.del),
        None => RowsView::All,
    }
}

/// Unifies a head atom against a concrete tuple, pre-binding its
/// variables for a rederivation plan.
fn bind_head(h: &crate::eval::resolve::RAtom, t: &Tuple, binding: &mut [Option<Const>]) -> bool {
    use crate::eval::resolve::RTerm;
    if h.terms.len() != t.len() {
        return false;
    }
    for (term, &c) in h.terms.iter().zip(t.iter()) {
        match term {
            RTerm::Const(k) => {
                if *k != c {
                    return false;
                }
            }
            RTerm::Var(v) => match binding[*v as usize] {
                Some(existing) => {
                    if existing != c {
                        return false;
                    }
                }
                None => binding[*v as usize] = Some(c),
            },
            RTerm::Skolem { .. } => return false,
        }
    }
    true
}

fn collect_rterm_vars(t: &crate::eval::resolve::RTerm, out: &mut FxHashSet<u32>) {
    use crate::eval::resolve::RTerm;
    match t {
        RTerm::Var(v) => {
            out.insert(*v);
        }
        RTerm::Const(_) => {}
        RTerm::Skolem { args, .. } => {
            for a in args {
                collect_rterm_vars(a, out);
            }
        }
    }
}

/// Cancels overlapping insert/delete pairs (e.g. delete + rederive-insert
/// of the same tuple) so deltas record net membership changes only.
fn normalize(d: PredDelta) -> PredDelta {
    if d.ins.iter().all(|t| !d.del_set.contains(t)) && d.del.iter().all(|t| !d.ins_set.contains(t))
    {
        return d;
    }
    let mut out = PredDelta::default();
    for t in &d.ins {
        if !d.del_set.contains(t) {
            out.push_ins(t.clone());
        }
    }
    for t in &d.del {
        if !d.ins_set.contains(t) {
            out.push_del(t.clone());
        }
    }
    out
}

fn merge_deltas(changed: &mut FxHashMap<u32, PredDelta>, deltas: Vec<(u32, PredDelta)>) {
    for (p, d) in deltas {
        if d.is_empty() {
            continue;
        }
        debug_assert!(
            !changed.contains_key(&p),
            "each derived predicate is produced by exactly one unit"
        );
        changed.insert(p, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A symbol-table-independent constant spec for building the same
    /// fact in the session and the baseline database.
    #[derive(Debug, Clone)]
    enum V {
        S(&'static str),
        I(i64),
        F(f64),
    }

    fn tuple(db: &mut Database, vals: &[V]) -> Vec<Const> {
        vals.iter()
            .map(|v| match v {
                V::S(s) => db.sym(s),
                V::I(i) => Const::Int(*i),
                V::F(f) => Const::float(*f),
            })
            .collect()
    }

    type Facts = Vec<(&'static str, Vec<V>)>;

    #[derive(Debug, Clone, Default)]
    struct Step {
        del: Facts,
        ins: Facts,
    }

    /// Replays the full op log against a fresh database and runs the
    /// engine once: the from-scratch reference for the session state.
    fn baseline(program: &Program, init: &Facts, steps: &[Step]) -> Database {
        let mut db = Database::new();
        for (p, vals) in init {
            let t = tuple(&mut db, vals);
            db.assert_fact(p, &t).unwrap();
        }
        for step in steps {
            for (p, vals) in &step.del {
                let t = tuple(&mut db, vals);
                db.retract_fact(p, &t);
            }
            for (p, vals) in &step.ins {
                let t = tuple(&mut db, vals);
                db.assert_fact(p, &t).unwrap();
            }
        }
        Engine::new(program).unwrap().run(&mut db).unwrap();
        db
    }

    fn assert_same(session: &IncrementalEngine, fresh: &Database, ctx: &str) {
        for pid in 0..session.db().pred_count() as u32 {
            let name = session.db().pred_name(pid).to_string();
            assert_eq!(
                session.db().dump_canonical(&name),
                fresh.dump_canonical(&name),
                "{ctx}: mismatch on '{name}'"
            );
        }
    }

    /// Opens a session on the init facts, applies each step
    /// incrementally, and after every step compares the session database
    /// with a from-scratch run over the replayed log.
    fn differential(src: &str, init: Facts, steps: Vec<Step>) -> IncrementalEngine {
        let program = Program::parse(src).unwrap();
        let mut db = Database::new();
        for (p, vals) in &init {
            let t = tuple(&mut db, vals);
            db.assert_fact(p, &t).unwrap();
        }
        let mut session = IncrementalEngine::new(&program, db).unwrap();
        assert_same(&session, &baseline(&program, &init, &[]), "initial run");
        let mut applied: Vec<Step> = Vec::new();
        for (i, step) in steps.into_iter().enumerate() {
            let mut update = Update::default();
            for (p, vals) in &step.del {
                let t = tuple(&mut session.db, vals);
                update.delete.push((p.to_string(), t));
            }
            for (p, vals) in &step.ins {
                let t = tuple(&mut session.db, vals);
                update.insert.push((p.to_string(), t));
            }
            session.apply_update(&update).unwrap();
            applied.push(step);
            assert_same(
                &session,
                &baseline(&program, &init, &applied),
                &format!("step {i}"),
            );
        }
        session
    }

    fn e(a: &'static str, b: &'static str) -> (&'static str, Vec<V>) {
        ("e", vec![V::S(a), V::S(b)])
    }

    #[test]
    fn transitive_closure_insert_and_delete() {
        // Delete the bridge a→b while a→c→b survives: overdeletion must
        // rederive t(a,b) through the alternate path; deleting c→b next
        // removes it for real.
        let src = "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).";
        let init = vec![e("a", "b"), e("b", "d"), e("a", "c"), e("c", "b")];
        let steps = vec![
            Step {
                del: vec![e("a", "b")],
                ins: vec![],
            },
            Step {
                del: vec![e("c", "b")],
                ins: vec![e("d", "a")],
            },
            Step {
                del: vec![e("b", "d")],
                ins: vec![e("b", "b")],
            },
        ];
        let session = differential(src, init, steps);
        assert_eq!(session.info().dred_units, 1);
    }

    #[test]
    fn counting_tracks_multiple_derivations() {
        // p(a) has two derivations through b; deleting one keeps it,
        // deleting the second removes it.
        let src = "p(X) :- a(X), b(X, _).";
        let init = vec![
            ("a", vec![V::S("a")]),
            ("b", vec![V::S("a"), V::I(1)]),
            ("b", vec![V::S("a"), V::I(2)]),
        ];
        let steps = vec![
            Step {
                del: vec![("b", vec![V::S("a"), V::I(1)])],
                ins: vec![],
            },
            Step {
                del: vec![("b", vec![V::S("a"), V::I(2)])],
                ins: vec![("b", vec![V::S("a"), V::I(3)])],
            },
            Step {
                del: vec![("b", vec![V::S("a"), V::I(3)])],
                ins: vec![],
            },
        ];
        let session = differential(src, init, steps);
        assert_eq!(session.info().counting_units, 1);
    }

    #[test]
    fn negation_stratum_is_maintained() {
        let src = "reach(Y) :- start(Y). reach(Y) :- reach(X), e(X, Y).\n\
                   unreach(X) :- node(X), not reach(X).";
        let init = vec![
            ("start", vec![V::S("a")]),
            ("node", vec![V::S("a")]),
            ("node", vec![V::S("b")]),
            ("node", vec![V::S("c")]),
            e("a", "b"),
        ];
        let steps = vec![
            Step {
                del: vec![],
                ins: vec![e("b", "c")],
            },
            Step {
                del: vec![e("a", "b")],
                ins: vec![],
            },
            Step {
                del: vec![],
                ins: vec![("node", vec![V::S("d")])],
            },
        ];
        differential(src, init, steps);
    }

    #[test]
    fn aggregate_program_replays_and_matches() {
        // Ownership accumulation with a recursive monotonic aggregate and
        // a pure reader above it — acc is replayed, cl is DRed-maintained.
        let src = "acc(X, Y, V) :- own(X, Y, W), X != Y, V = msum(W, <X, Y>).\n\
                   acc(X, Y, V) :- own(X, Z, W1), Z != X, acc(Z, Y, W2), Y != X, \
                   V = msum(W1 * W2, <Z>).\n\
                   cl(X, Y) :- acc(X, Y, V), th(T), V >= T.\n\
                   cl(X, Y) :- cl(Y, X).";
        let own =
            |a: &'static str, b: &'static str, w: f64| ("own", vec![V::S(a), V::S(b), V::F(w)]);
        let init = vec![
            ("th", vec![V::F(0.5)]),
            own("a", "b", 0.6),
            own("b", "c", 0.7),
            own("a", "d", 0.3),
            own("d", "c", 0.9),
        ];
        let steps = vec![
            Step {
                del: vec![],
                ins: vec![own("c", "e", 0.8)],
            },
            Step {
                del: vec![own("b", "c", 0.7)],
                ins: vec![],
            },
            Step {
                del: vec![own("a", "d", 0.3)],
                ins: vec![own("a", "d", 0.6)],
            },
        ];
        let session = differential(src, init, steps);
        let info = session.info();
        assert!(info.replay_units >= 1);
        assert_eq!(info.dred_units, 1);
        assert!(!info.full_fallback);
    }

    #[test]
    fn subsumption_fallback_recomputes_correctly() {
        // `V <= T` against a max-posted aggregate defeats incremental
        // maintenance; the session must detect it and recompute fully.
        let src = "acc(X, V) :- own(X, W), V = msum(W, <X>).\n\
                   small(X) :- acc(X, V), V <= 0.5.";
        let init = vec![
            ("own", vec![V::S("a"), V::F(0.2)]),
            ("own", vec![V::S("b"), V::F(0.7)]),
        ];
        let steps = vec![
            Step {
                del: vec![],
                ins: vec![("own", vec![V::S("a"), V::F(0.4)])],
            },
            Step {
                del: vec![("own", vec![V::S("b"), V::F(0.7)])],
                ins: vec![],
            },
        ];
        let session = differential(src, init, steps);
        assert!(session.info().full_fallback);
    }

    #[test]
    fn seed_facts_survive_deletion_and_replay() {
        // t(z,z) is asserted as a base fact of a derived predicate: it is
        // an axiom the maintenance must never delete.
        let program = Program::parse("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let mut db = Database::new();
        let (z, a, b) = (db.sym("z"), db.sym("a"), db.sym("b"));
        db.assert_fact("t", &[z, z]).unwrap();
        db.assert_fact("e", &[a, b]).unwrap();
        let mut session = IncrementalEngine::new(&program, db).unwrap();
        let update = Update {
            delete: vec![("e".into(), vec![a, b])],
            insert: vec![],
        };
        session.apply_update(&update).unwrap();
        assert!(session.db().relation("t").unwrap().find(&[z, z]).is_some());
        assert!(session.db().relation("t").unwrap().find(&[a, b]).is_none());
    }

    #[test]
    fn derived_predicate_updates_are_rejected() {
        let program = Program::parse("t(X, Y) :- e(X, Y).").unwrap();
        let mut db = Database::new();
        let (a, b) = (db.sym("a"), db.sym("b"));
        db.assert_fact("e", &[a, b]).unwrap();
        let mut session = IncrementalEngine::new(&program, db).unwrap();
        let update = Update {
            delete: vec![],
            insert: vec![("t".into(), vec![a, a])],
        };
        assert!(session.apply_update(&update).is_err());
    }

    #[test]
    fn delete_then_reinsert_is_a_net_noop() {
        let program = Program::parse("t(X, Y) :- e(X, Y).").unwrap();
        let mut db = Database::new();
        let (a, b) = (db.sym("a"), db.sym("b"));
        db.assert_fact("e", &[a, b]).unwrap();
        let mut session = IncrementalEngine::new(&program, db).unwrap();
        let update = Update {
            delete: vec![("e".into(), vec![a, b])],
            insert: vec![("e".into(), vec![a, b])],
        };
        let cs = session.apply_update(&update).unwrap();
        assert!(cs.is_empty(), "{cs:?}");
        assert!(session.db().relation("t").unwrap().find(&[a, b]).is_some());
    }

    #[test]
    fn changeset_lists_base_and_derived_changes() {
        let program = Program::parse("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let mut db = Database::new();
        let (a, b, c) = (db.sym("a"), db.sym("b"), db.sym("c"));
        db.assert_fact("e", &[a, b]).unwrap();
        let mut session = IncrementalEngine::new(&program, db).unwrap();
        let update = Update {
            delete: vec![],
            insert: vec![("e".into(), vec![b, c])],
        };
        let cs = session.apply_update(&update).unwrap();
        let names: Vec<&str> = cs.inserted.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["e", "t", "t"]);
        assert!(cs.deleted.is_empty());
    }

    #[test]
    fn parse_update_reads_signed_facts() {
        let program = Program::parse("t(X, Y) :- e(X, Y).").unwrap();
        let mut db = Database::new();
        let (a, b) = (db.sym("a"), db.sym("b"));
        db.assert_fact("e", &[a, b]).unwrap();
        let mut session = IncrementalEngine::new(&program, db).unwrap();
        let update = session
            .parse_update("% a comment\n+e(b, c).\n-e(a, b)\n")
            .unwrap();
        assert_eq!(update.insert.len(), 1);
        assert_eq!(update.delete.len(), 1);
        let cs = session.apply_update(&update).unwrap();
        assert_eq!(cs.inserted.len(), 2); // e(b,c), t(b,c)
        assert_eq!(cs.deleted.len(), 2); // e(a,b), t(a,b)
        assert!(session.parse_update("e(a, b).").is_err());
    }

    #[test]
    fn provenance_sessions_are_rejected() {
        let program = Program::parse("t(X, Y) :- e(X, Y).").unwrap();
        let engine = Engine::with(
            &program,
            crate::builtins::FunctionRegistry::default(),
            crate::eval::EngineOptions {
                provenance: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(IncrementalEngine::with(engine, Database::new()).is_err());
    }

    #[test]
    fn update_on_unknown_predicate_creates_edb_relation() {
        let program = Program::parse("t(X, Y) :- e(X, Y).").unwrap();
        let mut db = Database::new();
        let (a, b) = (db.sym("a"), db.sym("b"));
        db.assert_fact("e", &[a, b]).unwrap();
        let mut session = IncrementalEngine::new(&program, db).unwrap();
        let c = session.sym("c");
        let update = Update {
            delete: vec![("ghost".into(), vec![c])],
            insert: vec![("extra".into(), vec![c])],
        };
        let cs = session.apply_update(&update).unwrap();
        assert_eq!(cs.inserted.len(), 1);
        assert!(session.db().relation("extra").unwrap().find(&[c]).is_some());
    }
}
