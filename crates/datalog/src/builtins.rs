//! External function registry.
//!
//! Vadalog programs in the paper call out to library functions —
//! `#GraphEmbedClust`, `#GenerateBlocks`, `#LinkProbability` — from rule
//! bodies. The engine resolves `#name(args)` in body expressions against a
//! [`FunctionRegistry`]; unregistered functors fall back to Skolem
//! OID-invention (so `Z = #sk_c(N)` works with no registration, exactly as
//! in Algorithm 2 of the paper).

use std::collections::HashMap;

use crate::db::{SkolemTable, SymbolTable};
use crate::value::Const;

/// Evaluation context handed to external functions: access to the string
/// interner (to read and create symbols) and to the Skolem table.
pub struct FnCtx<'a> {
    /// String interner of the database being evaluated.
    pub symbols: &'a mut SymbolTable,
    /// Skolem OID table of the database being evaluated.
    pub skolems: &'a mut SkolemTable,
}

impl FnCtx<'_> {
    /// Resolves a symbol constant to its string.
    pub fn str_of(&self, c: Const) -> Option<&str> {
        match c {
            Const::Sym(s) => Some(self.symbols.resolve(s)),
            _ => None,
        }
    }

    /// Interns a string into a symbol constant.
    pub fn sym(&mut self, s: &str) -> Const {
        Const::Sym(self.symbols.intern(s))
    }
}

/// An external function: takes evaluated arguments, returns a constant.
pub type ExternalFn = Box<dyn Fn(&mut FnCtx<'_>, &[Const]) -> Result<Const, String> + Send + Sync>;

/// Registry of external functions callable as `#name(...)` in rule bodies.
pub struct FunctionRegistry {
    fns: HashMap<String, ExternalFn>,
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        Self::with_standard_library()
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("FunctionRegistry")
            .field("fns", &names)
            .finish()
    }
}

impl FunctionRegistry {
    /// An empty registry (every `#name` becomes a Skolem function).
    pub fn empty() -> Self {
        FunctionRegistry {
            fns: HashMap::new(),
        }
    }

    /// Registry pre-loaded with the standard library: `abs`, `min2`,
    /// `max2`, `pow`, `strlen`, `lower`, `concat`.
    pub fn with_standard_library() -> Self {
        let mut r = Self::empty();
        r.register("abs", |_, args| {
            let x = num(args, 0)?;
            Ok(Const::float(x.abs()))
        });
        r.register("min2", |_, args| {
            Ok(Const::float(num(args, 0)?.min(num(args, 1)?)))
        });
        r.register("max2", |_, args| {
            Ok(Const::float(num(args, 0)?.max(num(args, 1)?)))
        });
        r.register("pow", |_, args| {
            Ok(Const::float(num(args, 0)?.powf(num(args, 1)?)))
        });
        r.register("strlen", |ctx, args| {
            let s = ctx
                .str_of(*args.first().ok_or("strlen: missing arg")?)
                .ok_or("strlen: not a string")?;
            Ok(Const::Int(s.chars().count() as i64))
        });
        r.register("lower", |ctx, args| {
            let s = ctx
                .str_of(*args.first().ok_or("lower: missing arg")?)
                .ok_or("lower: not a string")?
                .to_lowercase();
            Ok(ctx.sym(&s))
        });
        r.register("concat", |ctx, args| {
            let mut out = String::new();
            for a in args {
                match a {
                    Const::Sym(s) => out.push_str(ctx.symbols.resolve(*s)),
                    Const::Int(i) => out.push_str(&i.to_string()),
                    Const::Float(f) => out.push_str(&f.to_string()),
                    Const::Bool(b) => out.push_str(&b.to_string()),
                    Const::Null(n) => out.push_str(&format!("_:{n}")),
                }
            }
            Ok(ctx.sym(&out))
        });
        r
    }

    /// Registers a function under `name` (callable as `#name`).
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&mut FnCtx<'_>, &[Const]) -> Result<Const, String> + Send + Sync + 'static,
    ) {
        self.fns.insert(name.to_owned(), Box::new(f));
    }

    /// Looks up a function.
    pub fn get(&self, name: &str) -> Option<&ExternalFn> {
        self.fns.get(name)
    }

    /// True iff `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }
}

fn num(args: &[Const], i: usize) -> Result<f64, String> {
    args.get(i)
        .and_then(|c| c.as_f64())
        .ok_or_else(|| format!("expected numeric argument at position {i}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_call(reg: &FunctionRegistry, name: &str, args: &[Const]) -> Result<Const, String> {
        let mut symbols = SymbolTable::default();
        let mut skolems = SkolemTable::default();
        let mut ctx = FnCtx {
            symbols: &mut symbols,
            skolems: &mut skolems,
        };
        (reg.get(name).expect("registered"))(&mut ctx, args)
    }

    #[test]
    fn standard_numeric_functions() {
        let r = FunctionRegistry::default();
        assert_eq!(
            ctx_call(&r, "abs", &[Const::Float(-2.5)]),
            Ok(Const::Float(2.5))
        );
        assert_eq!(
            ctx_call(&r, "min2", &[Const::Int(3), Const::Float(1.5)]),
            Ok(Const::Float(1.5))
        );
        assert_eq!(
            ctx_call(&r, "max2", &[Const::Int(3), Const::Float(1.5)]),
            Ok(Const::Float(3.0))
        );
        assert_eq!(
            ctx_call(&r, "pow", &[Const::Int(2), Const::Int(10)]),
            Ok(Const::Float(1024.0))
        );
    }

    #[test]
    fn string_functions_use_interner() {
        let r = FunctionRegistry::default();
        let mut symbols = SymbolTable::default();
        let mut skolems = SkolemTable::default();
        let hello = Const::Sym(symbols.intern("HeLLo"));
        let mut ctx = FnCtx {
            symbols: &mut symbols,
            skolems: &mut skolems,
        };
        let out = (r.get("lower").unwrap())(&mut ctx, &[hello]).unwrap();
        assert_eq!(ctx.str_of(out), Some("hello"));
        let n = (r.get("strlen").unwrap())(&mut ctx, &[hello]).unwrap();
        assert_eq!(n, Const::Int(5));
    }

    #[test]
    fn custom_registration() {
        let mut r = FunctionRegistry::empty();
        assert!(!r.contains("double"));
        r.register("double", |_, args| {
            Ok(Const::float(args[0].as_f64().unwrap_or(0.0) * 2.0))
        });
        assert!(r.contains("double"));
        assert_eq!(
            ctx_call(&r, "double", &[Const::Int(21)]),
            Ok(Const::Float(42.0))
        );
    }

    #[test]
    fn errors_propagate() {
        let r = FunctionRegistry::default();
        assert!(ctx_call(&r, "abs", &[Const::Bool(true)]).is_err());
    }
}
