//! Derivation-tree explanations.
//!
//! One of the paper's headline properties is that VADA-LINK decisions are
//! *explainable and unambiguous* because they come from Datalog semantics.
//! When an [`crate::Engine`] runs with `provenance: true`, every derived
//! fact records the rule and parent facts that first produced it;
//! [`explain`] reconstructs the derivation tree.
//!
//! For facts derived through a monotonic aggregate (`msum(...) > t`), the
//! recorded premises are the body match that pushed the running aggregate
//! past its threshold — one *witness* contributor, not the full contributor
//! set. This matches Vadalog's fact-level provenance granularity; the other
//! contributions can be recovered by explaining the premises recursively.

use crate::db::Database;
use crate::value::Const;

/// A derivation tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct Derivation {
    /// Rendered fact, e.g. `control(p1, c)`.
    pub fact: String,
    /// Index of the rule that derived it (`None` for extensional facts).
    pub rule: Option<u32>,
    /// Derivations of the parent facts.
    pub premises: Vec<Derivation>,
}

impl Derivation {
    /// Renders the tree with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.fact);
        match self.rule {
            Some(r) => out.push_str(&format!("   [rule {r}]\n")),
            None => out.push_str("   [fact]\n"),
        }
        for p in &self.premises {
            p.render_into(out, depth + 1);
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.premises.iter().map(Derivation::size).sum::<usize>()
    }
}

fn render_fact(db: &Database, pred: u32, tuple: &[Const]) -> String {
    let args: Vec<String> = tuple.iter().map(|c| db.display(*c)).collect();
    format!("{}({})", db.pred_name(pred), args.join(", "))
}

/// Explains a fact of `pred` matching `tuple`, up to `max_depth` levels.
///
/// Returns `None` if the fact is absent. Requires the engine to have run
/// with provenance enabled; facts without provenance render as leaves.
pub fn explain(db: &Database, pred: &str, tuple: &[Const], max_depth: usize) -> Option<Derivation> {
    let p = db.find_pred(pred)?;
    let rel = &db.relations[p as usize];
    let row = rel.find(tuple)?;
    Some(explain_row(db, p, row, max_depth))
}

fn explain_row(db: &Database, pred: u32, row: u32, depth: usize) -> Derivation {
    let rel = &db.relations[pred as usize];
    let fact = render_fact(db, pred, rel.row(row));
    match rel.provenance(row) {
        Some(prov) if depth > 0 => Derivation {
            fact,
            rule: Some(prov.rule),
            premises: prov
                .parents
                .iter()
                .map(|&(pp, pr)| explain_row(db, pp, pr, depth - 1))
                .collect(),
        },
        Some(prov) => Derivation {
            fact,
            rule: Some(prov.rule),
            premises: Vec::new(),
        },
        None => Derivation {
            fact,
            rule: None,
            premises: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineOptions, FunctionRegistry, Program};

    fn provenance_db() -> Database {
        let program = Program::parse("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).").unwrap();
        let opts = EngineOptions {
            provenance: true,
            ..Default::default()
        };
        let engine = Engine::with(&program, FunctionRegistry::default(), opts).unwrap();
        let mut db = Database::new();
        db.assert_str_facts("e", &[&["a", "b"], &["b", "c"]]);
        engine.run(&mut db).unwrap();
        db
    }

    #[test]
    fn explains_recursive_derivation() {
        let mut db = provenance_db();
        let a = db.sym("a");
        let c = db.sym("c");
        let d = explain(&db, "t", &[a, c], 10).expect("t(a,c) derived");
        assert_eq!(d.rule, Some(1), "derived by the recursive rule");
        assert!(d.fact.starts_with("t(a, c)"));
        // Premises: t(a,b) (rule 0) and e(b,c) (extensional).
        assert_eq!(d.premises.len(), 2);
        let rendered = d.render();
        assert!(rendered.contains("e(a, b)   [fact]"), "{rendered}");
        assert!(rendered.contains("[rule 0]"), "{rendered}");
        assert!(d.size() >= 4);
    }

    #[test]
    fn depth_limit_truncates() {
        let mut db = provenance_db();
        let a = db.sym("a");
        let c = db.sym("c");
        let d = explain(&db, "t", &[a, c], 0).unwrap();
        assert!(d.premises.is_empty());
        assert_eq!(d.rule, Some(1));
    }

    #[test]
    fn absent_fact_is_none() {
        let mut db = provenance_db();
        let a = db.sym("a");
        assert!(explain(&db, "t", &[a, a], 5).is_none());
        assert!(explain(&db, "nosuch", &[a], 5).is_none());
    }

    #[test]
    fn extensional_facts_are_leaves() {
        let mut db = provenance_db();
        let a = db.sym("a");
        let b = db.sym("b");
        let d = explain(&db, "e", &[a, b], 5).unwrap();
        assert_eq!(d.rule, None);
        assert!(d.premises.is_empty());
    }
}
