//! Ground constants of the reasoning engine.
//!
//! The engine works over the domain of Section 3 of the paper: countably
//! infinite disjoint sets of *constants* and *labelled nulls*. Strings are
//! interned into symbols by the [`crate::db::Database`]; nulls carry the id
//! assigned by the Skolem table, which guarantees determinism, injectivity
//! and disjoint ranges across functors (the paper's OID-invention
//! properties).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A ground term: constant or labelled null.
#[derive(Clone, Copy, Debug)]
pub enum Const {
    /// Interned string constant (symbol id into the database interner).
    Sym(u32),
    /// Integer constant.
    Int(i64),
    /// Float constant; `NaN` must not be constructed (see [`Const::float`]).
    Float(f64),
    /// Boolean constant.
    Bool(bool),
    /// Labelled null (OID invented by a Skolem function or the chase).
    Null(u64),
}

impl Const {
    /// Builds a float constant, mapping `NaN` to `0.0` to preserve the
    /// total-order/hash invariants (reasoning over `NaN` is meaningless).
    pub fn float(f: f64) -> Self {
        if f.is_nan() {
            Const::Float(0.0)
        } else {
            Const::Float(f)
        }
    }

    /// Numeric view (Int and Float only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Const::Int(i) => Some(*i as f64),
            Const::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Const::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Symbol view.
    pub fn as_sym(&self) -> Option<u32> {
        match self {
            Const::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// True for labelled nulls.
    pub fn is_null(&self) -> bool {
        matches!(self, Const::Null(_))
    }

    fn rank(&self) -> u8 {
        match self {
            Const::Bool(_) => 0,
            Const::Int(_) => 1,
            Const::Float(_) => 1, // numerics compare cross-type
            Const::Sym(_) => 2,
            Const::Null(_) => 3,
        }
    }
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Const {}

impl PartialOrd for Const {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Const {
    fn cmp(&self, other: &Self) -> Ordering {
        use Const::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Sym(a), Sym(b)) => a.cmp(b),
            (Null(a), Null(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Const {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Const::Bool(b) => {
                0u8.hash(state);
                b.hash(state);
            }
            // Numerics that compare equal must hash equal.
            Const::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Const::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Const::Sym(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Const::Null(n) => {
                3u8.hash(state);
                n.hash(state);
            }
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(s) => write!(f, "s{s}"),
            Const::Int(i) => write!(f, "{i}"),
            Const::Float(x) => write!(f, "{x}"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Null(n) => write!(f, "_:{n}"),
        }
    }
}

/// A ground tuple (fact payload).
///
/// Shared (`Arc`) so the row store, the dedup map and any index keys all
/// point at one allocation — and so cloning a [`crate::Database`] (the
/// scratch copies of goal-directed queries, incremental sessions and
/// before/after differentials) bumps refcounts instead of reallocating
/// every stored fact.
pub type Tuple = std::sync::Arc<[Const]>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(c: &Const) -> u64 {
        let mut s = DefaultHasher::new();
        c.hash(&mut s);
        s.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Const::Int(2), Const::Float(2.0));
        assert_eq!(h(&Const::Int(2)), h(&Const::Float(2.0)));
        assert!(Const::Int(2) < Const::Float(2.5));
    }

    #[test]
    fn nan_is_normalized() {
        assert_eq!(Const::float(f64::NAN), Const::Float(0.0));
    }

    #[test]
    fn nulls_are_distinct_from_everything() {
        assert_ne!(Const::Null(0), Const::Int(0));
        assert_ne!(Const::Null(0), Const::Sym(0));
        assert_eq!(Const::Null(7), Const::Null(7));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Const::Null(1),
            Const::Sym(0),
            Const::Float(1.5),
            Const::Bool(false),
            Const::Int(3),
        ];
        v.sort();
        assert_eq!(v[0], Const::Bool(false));
        assert!(v.last().unwrap().is_null());
    }
}
