//! Property test: random *legal* body reorderings never change the
//! derived fact set.
//!
//! The planner's legality rule is that positive atoms may be permuted
//! freely, while negations and conditions only need their variables bound
//! at the point they run. Here proptest permutes the positive atoms of a
//! fixed rule template (keeping negations/conditions textually last, which
//! is always legal), evaluates the permuted program with planning both off
//! (the permuted textual order is the evaluation order) and on (the
//! planner re-derives its own order from the permuted text), and asserts
//! the derived fact *set* per predicate is identical to the canonical
//! program's. Insertion order may differ across textual permutations —
//! that freedom is exactly what the planner exploits — but the set of
//! facts may not.

use datalog::{Database, Engine, EngineOptions, Program};
use proptest::prelude::*;

/// The rule skeletons: positive atoms listed separately so the test can
/// permute them; trailing literals (filters, negation, bindings) are
/// appended after the atoms in every permutation.
struct RuleTemplate {
    head: &'static str,
    atoms: &'static [&'static str],
    trailing: &'static [&'static str],
}

const TEMPLATES: &[RuleTemplate] = &[
    RuleTemplate {
        head: "p(X, Z, S)",
        atoms: &["e(X, Y, V)", "e(Y, Z, W)", "f(Z)"],
        trailing: &["X != Z", "V >= 2", "S = V + W"],
    },
    RuleTemplate {
        head: "q(X)",
        atoms: &["p(X, Y, W)", "e(Y, _, _)"],
        trailing: &["W >= 6"],
    },
    RuleTemplate {
        head: "lone(X)",
        atoms: &["f(X)"],
        trailing: &["not q(X)"],
    },
    RuleTemplate {
        head: "tc(X, Y)",
        atoms: &["e(X, Y, W)"],
        trailing: &["W >= 11"],
    },
    RuleTemplate {
        head: "tc(X, Z)",
        atoms: &["tc(X, Y)", "e(Y, Z, W)"],
        trailing: &["W >= 11"],
    },
];

const OUT_PREDS: &[&str] = &["p", "q", "lone", "tc"];

/// Renders the template program with each rule's atoms permuted by the
/// corresponding entry of `perms` (an arbitrary u64 per rule, reduced to a
/// permutation index mod n!).
fn permuted_program(perms: &[u64]) -> String {
    let mut src = String::new();
    for (t, &code) in TEMPLATES.iter().zip(perms) {
        let mut atoms: Vec<&str> = t.atoms.to_vec();
        // Lehmer-code style decode: pick index (code % k) among remaining.
        let mut picked = Vec::with_capacity(atoms.len());
        let mut c = code;
        while !atoms.is_empty() {
            let i = (c % atoms.len() as u64) as usize;
            c /= atoms.len().max(1) as u64;
            picked.push(atoms.remove(i));
        }
        let body: Vec<&str> = picked
            .into_iter()
            .chain(t.trailing.iter().copied())
            .collect();
        src.push_str(&format!("{} :- {}.\n", t.head, body.join(", ")));
    }
    src
}

fn facts(db: &mut Database, seed: u64) {
    // SplitMix64 over the proptest-provided seed.
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for _ in 0..60 {
        let a = format!("v{}", next() % 25);
        let b = format!("v{}", next() % 25);
        db.fact("e")
            .sym(&a)
            .sym(&b)
            .int((next() % 16) as i64)
            .assert();
    }
    for i in 0..25 {
        if next() % 2 == 0 {
            db.fact("f").sym(&format!("v{i}")).assert();
        }
    }
}

/// Sorted per-predicate fact sets — the order-free semantics.
fn fact_sets(db: &Database) -> Vec<(String, Vec<String>)> {
    OUT_PREDS
        .iter()
        .map(|p| (p.to_string(), db.dump(p)))
        .collect()
}

fn run(src: &str, seed: u64, plan: bool) -> Vec<(String, Vec<String>)> {
    let program = Program::parse(src).expect("template program parses");
    let options = EngineOptions {
        plan,
        ..EngineOptions::default()
    };
    let engine = Engine::with(&program, Default::default(), options).expect("compiles");
    let mut db = Database::new();
    facts(&mut db, seed);
    engine.run(&mut db).expect("fixpoint");
    fact_sets(&db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any legal permutation of rule-body atoms — run in that textual
    /// order (plan off) or re-planned (plan on) — derives exactly the
    /// canonical program's fact set.
    #[test]
    fn legal_reorderings_preserve_the_fact_set(
        seed in 0u64..1_000_000,
        perms in prop::collection::vec(any::<u64>(), TEMPLATES.len()),
    ) {
        let canonical = run(&permuted_program(&vec![0; TEMPLATES.len()]), seed, false);
        let permuted = permuted_program(&perms);
        let textual = run(&permuted, seed, false);
        prop_assert_eq!(&textual, &canonical, "textual-order evaluation of a permuted body diverged:\n{}", permuted);
        let planned = run(&permuted, seed, true);
        prop_assert_eq!(&planned, &canonical, "planned evaluation of a permuted body diverged:\n{}", permuted);
    }

    /// Planning is also invisible at the fact-set level for every seed on
    /// the canonical ordering (cheap extra angle: catches planner bugs
    /// whose textual-order twin is also wrong).
    #[test]
    fn planning_preserves_the_fact_set(seed in 0u64..1_000_000) {
        let src = permuted_program(&vec![0; TEMPLATES.len()]);
        prop_assert_eq!(run(&src, seed, true), run(&src, seed, false));
    }
}
