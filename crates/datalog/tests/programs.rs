//! Integration tests: complete Vadalog programs from the paper and
//! engine corner cases exercised through the public API.

use datalog::{Database, Engine, EngineOptions, FunctionRegistry, Program};

fn run(src: &str, setup: impl FnOnce(&mut Database)) -> Database {
    let program = Program::parse(src).unwrap();
    let engine = Engine::new(&program).unwrap();
    let mut db = Database::new();
    setup(&mut db);
    engine.run(&mut db).unwrap();
    db
}

#[test]
fn paper_example_3_2_influence() {
    // Example 3.2: persons affect companies they own; spouses inherit the
    // influence; Spouse edges (with validity interval) derive from Married.
    let db = run(
        r#"
        influence(X, C) :- person(X), own(X, C, _).
        influence(Y, C) :- own(X, C, _), spouse(X, Y, _, _).
        spouse(X, Y, 0, 99999) :- married(X, Y).
        spouse(Y, X, T1, T2) :- spouse(X, Y, T1, T2).
        "#,
        |db| {
            db.assert_str_facts("person", &[&["p1"], &["p2"]]);
            db.fact("own").sym("p1").sym("c").float(0.3).assert();
            db.assert_str_facts("married", &[&["p1", "p2"]]);
        },
    );
    assert!(db.contains_str_fact("influence", &["p1", "c"]));
    // p2's influence flows through the symmetric spouse edge.
    assert!(db.contains_str_fact("influence", &["p2", "c"]));
    assert_eq!(
        db.fact_count("spouse"),
        2,
        "symmetry materialized once each way"
    );
}

#[test]
fn ancestors_with_stratified_negation() {
    let db = run(
        r#"
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
        root(X) :- person(X), not has_parent(X).
        has_parent(X) :- parent(_, X).
        "#,
        |db| {
            db.assert_str_facts("person", &[&["a"], &["b"], &["c"]]);
            db.assert_str_facts("parent", &[&["a", "b"], &["b", "c"]]);
        },
    );
    assert!(db.contains_str_fact("ancestor", &["a", "c"]));
    assert_eq!(db.dump("root"), vec!["a"]);
}

#[test]
fn mmin_aggregate_tracks_minimum() {
    let db = run(
        "cheapest(I, V) :- offer(I, _, P), V = mmin(P, <I>).",
        |db| {
            db.fact("offer").sym("widget").sym("s1").float(9.0).assert();
            db.fact("offer").sym("widget").sym("s2").float(4.5).assert();
            db.fact("offer").sym("widget").sym("s3").float(7.0).assert();
        },
    );
    // Auto-compaction keeps the extremal (minimum) row per group.
    let rel = db.relation("cheapest").unwrap();
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.row(0)[1].as_f64(), Some(4.5));
}

#[test]
fn mprod_aggregate_multiplies() {
    let db = run(
        "@post(\"chainprob\", \"min(1)\").\n\
         chainprob(C, V) :- hop(C, _, P), V = mprod(P, <C, P>).",
        |db| {
            db.fact("hop").sym("c").int(1).float(0.5).assert();
            db.fact("hop").sym("c").int(2).float(0.4).assert();
        },
    );
    let rel = db.relation("chainprob").unwrap();
    // Contributors are (C, P) pairs: 0.5 · 0.4 = 0.2; the explicit
    // @post(min) keeps the converged product.
    assert_eq!(rel.len(), 1);
    assert!((rel.row(0)[1].as_f64().unwrap() - 0.2).abs() < 1e-9);
}

#[test]
fn external_function_errors_are_reported() {
    let program = Program::parse("q(Y) :- p(X), Y = #fail(X).").unwrap();
    let mut engine = Engine::new(&program).unwrap();
    engine.register_function("fail", |_, _| Err("boom".to_owned()));
    let mut db = Database::new();
    db.assert_str_facts("p", &[&["a"]]);
    let err = engine.run(&mut db).unwrap_err();
    assert!(err.to_string().contains("boom"), "{err}");
}

#[test]
fn round_budget_guards_diverging_numeric_recursion() {
    // succ generates an unbounded chain of integers: the fact budget stops
    // it instead of looping forever.
    let program = Program::parse("n(0). n(Y) :- n(X), Y = X + 1.").unwrap();
    let opts = EngineOptions {
        max_facts: 1_000,
        ..Default::default()
    };
    let engine = Engine::with(&program, FunctionRegistry::default(), opts).unwrap();
    let mut db = Database::new();
    let err = engine.run(&mut db).unwrap_err();
    assert!(matches!(err, datalog::DatalogError::BudgetExceeded(_)));
}

#[test]
fn same_generation_classic() {
    let db = run(
        r#"
        sg(X, X) :- person(X).
        sg(X, Y) :- parent(PX, X), sg(PX, PY), parent(PY, Y).
        "#,
        |db| {
            for p in ["gp", "f", "u", "c1", "c2"] {
                db.assert_str_facts("person", &[&[p]]);
            }
            // gp is parent of f and u; f parent of c1; u parent of c2.
            db.assert_str_facts(
                "parent",
                &[&["gp", "f"], &["gp", "u"], &["f", "c1"], &["u", "c2"]],
            );
        },
    );
    assert!(db.contains_str_fact("sg", &["f", "u"]));
    assert!(db.contains_str_fact("sg", &["c1", "c2"]));
    assert!(!db.contains_str_fact("sg", &["f", "c1"]));
}

#[test]
fn outputs_and_program_display() {
    let program =
        Program::parse(r#"@output("t"). t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z)."#)
            .unwrap();
    assert_eq!(program.outputs().collect::<Vec<_>>(), vec!["t"]);
    let printed = program.to_string();
    assert!(printed.contains("@output(\"t\")"));
    let reparsed = Program::parse(&printed).unwrap();
    assert_eq!(program, reparsed);
}

#[test]
fn skolems_align_across_separate_rules_and_runs() {
    let program = Program::parse(
        r#"
        n1(Z, X) :- p(X), Z = #node(X).
        n2(Z, X) :- q(X), Z = #node(X).
        joined(X, Y) :- n1(Z, X), n2(Z, Y).
        "#,
    )
    .unwrap();
    let engine = Engine::new(&program).unwrap();
    let mut db = Database::new();
    db.assert_str_facts("p", &[&["a"], &["b"]]);
    db.assert_str_facts("q", &[&["a"]]);
    engine.run(&mut db).unwrap();
    // #node("a") from both rules is the same OID → the join fires.
    assert_eq!(db.dump("joined"), vec!["a,a"]);
    // Re-running is stable: determinism across runs of one database.
    engine.run(&mut db).unwrap();
    assert_eq!(db.dump("joined"), vec!["a,a"]);
}

#[test]
fn comparisons_work_on_symbols_and_numbers() {
    let db = run(
        r#"
        older(X, Y) :- person(X, AX), person(Y, AY), AX > AY.
        alpha(X, Y) :- person(X, _), person(Y, _), X < Y.
        "#,
        |db| {
            db.fact("person").sym("anna").int(64).assert();
            db.fact("person").sym("bruno").int(31).assert();
        },
    );
    assert!(db.contains_str_fact("older", &["anna", "bruno"]));
    assert!(!db.contains_str_fact("older", &["bruno", "anna"]));
    // Symbol order is interning order (anna first), not lexicographic —
    // but for distinct symbols exactly one direction holds.
    assert_eq!(db.fact_count("alpha"), 1);
}

#[test]
fn provenance_spans_aggregate_rules() {
    let program = Program::parse(
        "control(X, X) :- company(X).\n\
         control(X, Y) :- control(X, Z), own(Z, Y, W), X != Y, msum(W, <Z>) > 0.5.",
    )
    .unwrap();
    let opts = EngineOptions {
        provenance: true,
        ..Default::default()
    };
    let engine = Engine::with(&program, FunctionRegistry::default(), opts).unwrap();
    let mut db = Database::new();
    db.assert_str_facts("company", &[&["a"], &["b"]]);
    db.fact("own").sym("a").sym("b").float(0.8).assert();
    engine.run(&mut db).unwrap();
    let a = db.sym("a");
    let b = db.sym("b");
    let tree = datalog::explain::explain(&db, "control", &[a, b], 5).unwrap();
    assert_eq!(tree.rule, Some(1));
    let rendered = tree.render();
    assert!(rendered.contains("own"), "{rendered}");
}

mod parser_robustness {
    use datalog::Program;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The parser must never panic: any input yields Ok or a
        /// structured parse error.
        #[test]
        fn parser_never_panics(src in ".{0,200}") {
            let _ = Program::parse(&src);
        }

        /// Inputs built from the grammar's own token alphabet stress the
        /// recursive-descent paths harder than arbitrary unicode.
        #[test]
        fn parser_never_panics_on_tokenish_soup(
            parts in prop::collection::vec(
                prop::sample::select(vec![
                    "a", "X", "(", ")", ",", ".", ":-", "->", "not", "msum",
                    "<", ">", "=", "!=", "0.5", "3", "#f", "@output", "\"s\"",
                    "%c\n", "_",
                ]),
                0..40,
            )
        ) {
            let src: String = parts.join(" ");
            let _ = Program::parse(&src);
        }
    }
}

#[test]
fn control_boundary_exactly_half_is_not_control() {
    let db = run(
        "control(X, X) :- company(X).\n\
         control(X, Y) :- control(X, Z), own(Z, Y, W), X != Y, msum(W, <Z>) > 0.5.",
        |db| {
            db.assert_str_facts("company", &[&["a"], &["b"], &["c"]]);
            db.fact("own").sym("a").sym("b").float(0.5).assert();
            db.fact("own").sym("a").sym("c").float(0.500001).assert();
        },
    );
    assert!(
        !db.contains_str_fact("control", &["a", "b"]),
        "0.5 is not > 0.5"
    );
    assert!(db.contains_str_fact("control", &["a", "c"]));
}

#[test]
fn mixed_plain_and_aggregate_rules_for_one_head() {
    // `big` is derived both directly and via a threshold aggregate; the
    // relation is the union, deduplicated.
    let db = run(
        "big(X) :- huge(X).\n\
         big(X) :- part(X, W), msum(W, <X, W>) >= 1.0.",
        |db| {
            db.assert_str_facts("huge", &[&["h"]]);
            db.fact("part").sym("p").float(0.6).assert();
            db.fact("part").sym("p").float(0.5).assert();
            db.fact("part").sym("q").float(0.3).assert();
            db.fact("part").sym("h").float(2.0).assert();
        },
    );
    assert_eq!(db.dump("big"), vec!["h", "p"]);
}

#[test]
fn anonymous_variables_do_not_join() {
    let db = run("seen(X) :- e(X, _), e(_, X).", |db| {
        db.assert_str_facts("e", &[&["a", "b"], &["c", "a"]]);
    });
    // a has an outgoing AND an incoming edge (through different partners).
    assert_eq!(db.dump("seen"), vec!["a"]);
}
