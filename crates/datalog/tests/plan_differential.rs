//! Planner on/off differential tests over *generated* synthetic programs.
//!
//! The bundled paper programs exercise one shape of rule body; this suite
//! generates families of random — but legal and type-uniform — Datalog
//! programs and checks the planner's core contract on each: evaluating
//! with cost-based planning on or off, sequentially or on 4 threads, must
//! produce byte-identical databases (tuples, insertion order / row ids,
//! provenance).
//!
//! Programs are generated, not sampled from a corpus: random join chains
//! over a ternary edge relation, random comparison/inequality filters,
//! random arithmetic bindings, stratified negation over derived
//! predicates, and a recursive closure rule. Bodies always list atoms
//! first, then negations, then conditions — every permutation of the
//! *atoms* is legal, and the generator shuffles them so the planner sees
//! textual orders both better and worse than its own choice.

use datalog::{Database, Engine, EngineOptions, Program};

/// SplitMix64: deterministic generation without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Random type-uniform program: `k` chain-join rules over `e/3`
/// (sym, sym, int), a derived unary predicate, a stratified negation rule
/// and a bounded recursive closure. Returns the program text.
fn synth_program(rng: &mut Rng) -> String {
    let mut src = String::new();
    let n_chain = 2 + rng.below(3); // 2..=4 chain rules
    for r in 0..n_chain {
        let len = 2 + rng.below(3) as usize; // 2..=4 atoms
                                             // Chain variables N0..Nlen, weights W0..W(len-1).
        let mut atoms: Vec<String> = (0..len)
            .map(|i| format!("e(N{i}, N{}, W{i})", i + 1))
            .collect();
        rng.shuffle(&mut atoms);
        let mut body = atoms;
        // Random filters over bound variables; always satisfiable for
        // some rows (weights are 0..=16).
        if rng.below(2) == 0 {
            body.push(format!("W{} >= {}", rng.below(len as u64), rng.below(9)));
        }
        if rng.below(2) == 0 {
            body.push(format!("N0 != N{len}"));
        }
        // Random arithmetic binding folded into the head.
        let head = if rng.below(2) == 0 {
            let a = rng.below(len as u64);
            let b = rng.below(len as u64);
            body.push(format!("S = W{a} + W{b} * 2"));
            format!("r{r}(N0, N{len}, S)")
        } else {
            format!("r{r}(N0, N{len}, W0)")
        };
        src.push_str(&format!("{head} :- {}.\n", body.join(", ")));
    }
    // Derived unary predicate over a random chain head.
    let pick = rng.below(n_chain);
    src.push_str(&format!("hit(X) :- r{pick}(X, _, _).\n"));
    // Stratified negation over the derived predicate.
    src.push_str("quiet(X) :- node(X), not hit(X).\n");
    // Bounded recursion with a random weight gate: big enough to iterate,
    // small enough to terminate fast.
    let gate = 8 + rng.below(6);
    src.push_str("tc(X, Y) :- e(X, Y, W), W >= ");
    src.push_str(&format!("{gate}.\n"));
    src.push_str(&format!("tc(X, Z) :- tc(X, Y), e(Y, Z, W), W >= {gate}.\n"));
    src
}

/// Random edge facts: `nodes` symbols, `edges` weighted edges.
fn synth_facts(db: &mut Database, rng: &mut Rng, nodes: u64, edges: u64) {
    for i in 0..nodes {
        db.fact("node").sym(&format!("v{i}")).assert();
    }
    for _ in 0..edges {
        let a = format!("v{}", rng.below(nodes));
        let b = format!("v{}", rng.below(nodes));
        db.fact("e")
            .sym(&a)
            .sym(&b)
            .int(rng.below(17) as i64)
            .assert();
    }
}

/// Full database image: every predicate (name order), rows in insertion
/// order, provenance included.
fn full_snapshot(db: &Database) -> Vec<String> {
    let mut preds: Vec<String> = (0..db.pred_count() as u32)
        .map(|p| db.pred_name(p).to_owned())
        .collect();
    preds.sort();
    let mut out = Vec::new();
    for pred in &preds {
        let Some(rel) = db.relation(pred) else {
            continue;
        };
        for (row, tuple) in rel.rows().enumerate() {
            let cells: Vec<String> = tuple.iter().map(|c| db.display(*c)).collect();
            let prov = rel
                .provenance(row as u32)
                .map(|p| format!(" by rule {} from {:?}", p.rule, p.parents))
                .unwrap_or_default();
            out.push(format!("{pred}[{row}]({}){prov}", cells.join(",")));
        }
    }
    out
}

fn run_once(src: &str, seed: u64, plan: bool, threads: usize) -> Vec<String> {
    let program =
        Program::parse(src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let options = EngineOptions {
        plan,
        threads,
        provenance: true,
        ..EngineOptions::default()
    };
    let engine = Engine::with(&program, Default::default(), options)
        .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));
    let mut db = Database::new();
    synth_facts(&mut db, &mut Rng(seed ^ 0xFAC7), 80, 240);
    engine
        .run(&mut db)
        .unwrap_or_else(|e| panic!("fixpoint failed: {e}\n{src}"));
    full_snapshot(&db)
}

fn assert_plan_invisible(seed: u64) {
    let src = synth_program(&mut Rng(seed));
    let reference = run_once(&src, seed, true, 1);
    assert!(
        !reference.is_empty(),
        "seed {seed}: generated program derived nothing\n{src}"
    );
    for (plan, threads) in [(false, 1), (true, 4), (false, 4)] {
        let got = run_once(&src, seed, plan, threads);
        assert_eq!(
            got, reference,
            "seed {seed}: plan={plan} threads={threads} diverged\n{src}"
        );
    }
}

#[test]
fn synthetic_programs_are_plan_invariant() {
    for seed in 0..6u64 {
        assert_plan_invisible(seed);
    }
}

#[test]
fn synthetic_programs_are_plan_invariant_more_seeds() {
    // A second batch under a different seed stripe, so a planner change
    // that happens to keep batch one identical still gets fresh shapes.
    for seed in 100..104u64 {
        assert_plan_invisible(seed);
    }
}

#[test]
fn generated_programs_cover_the_interesting_literal_kinds() {
    // Meta-test on the generator itself: across the tested seed range the
    // programs must include shuffled joins, filters, bindings, negation
    // and recursion — otherwise the differential tests above are weaker
    // than they look.
    let mut saw_cmp = false;
    let mut saw_neq = false;
    let mut saw_let = false;
    for seed in 0..6u64 {
        let src = synth_program(&mut Rng(seed));
        saw_cmp |= src.contains(">=");
        saw_neq |= src.contains("!=");
        saw_let |= src.contains("S = ");
        assert!(src.contains("not hit(X)"), "negation rule missing");
        assert!(src.contains("tc(X, Z)"), "recursive rule missing");
    }
    assert!(
        saw_cmp && saw_neq && saw_let,
        "generator lost a literal kind"
    );
}
