//! Compiled-execution on/off differential tests over *generated*
//! synthetic programs.
//!
//! The bundled paper programs pin six real workloads; this suite generates
//! random — but legal and type-uniform — programs and checks the closure-
//! chain compiler's contract on each: evaluating with compilation on or
//! off, sequentially or on 4 threads, must produce byte-identical
//! databases (tuples, insertion order / row ids, provenance).
//!
//! Two generators feed it. A SplitMix64 generator builds join chains with
//! shuffled atoms, filters, arithmetic bindings, stratified negation,
//! recursion and *aggregation in both syntactic positions* (condition-form
//! `msum(..) >= g` and binding-form `S = msum(..)`) — the aggregate stages
//! are the compiled path's most intricate code, so they get dedicated
//! coverage here. A proptest wrapper then drives the same check over
//! arbitrary seeds and atom permutations, shrinking to a minimal failing
//! program shape on divergence.

use datalog::{Database, Engine, EngineOptions, Program};
use proptest::prelude::*;

/// SplitMix64: deterministic generation without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Random type-uniform program: chain-join rules over `e/3`, a derived
/// unary predicate, stratified negation, bounded recursion, and two
/// aggregate rules (condition-form and binding-form) over a chain head.
fn synth_program(rng: &mut Rng) -> String {
    let mut src = String::new();
    let n_chain = 2 + rng.below(3); // 2..=4 chain rules
    for r in 0..n_chain {
        let len = 2 + rng.below(3) as usize; // 2..=4 atoms
        let mut atoms: Vec<String> = (0..len)
            .map(|i| format!("e(N{i}, N{}, W{i})", i + 1))
            .collect();
        rng.shuffle(&mut atoms);
        let mut body = atoms;
        if rng.below(2) == 0 {
            body.push(format!("W{} >= {}", rng.below(len as u64), rng.below(9)));
        }
        if rng.below(2) == 0 {
            body.push(format!("N0 != N{len}"));
        }
        let head = if rng.below(2) == 0 {
            let a = rng.below(len as u64);
            let b = rng.below(len as u64);
            body.push(format!("S = W{a} + W{b} * 2"));
            format!("r{r}(N0, N{len}, S)")
        } else {
            format!("r{r}(N0, N{len}, W0)")
        };
        src.push_str(&format!("{head} :- {}.\n", body.join(", ")));
    }
    let pick = rng.below(n_chain);
    src.push_str(&format!("hit(X) :- r{pick}(X, _, _).\n"));
    src.push_str("quiet(X) :- node(X), not hit(X).\n");
    // Aggregation over a chain head, in both syntactic positions the
    // compiler lowers differently: a guarded condition aggregate and a
    // head-bound Let aggregate.
    let apick = rng.below(n_chain);
    let gate = 4 + rng.below(20);
    src.push_str(&format!(
        "heavy(X) :- r{apick}(X, Z, W), msum(W, <Z>) >= {gate}.\n"
    ));
    src.push_str(&format!(
        "total(X, S) :- r{apick}(X, Z, W), S = msum(W, <Z>).\n"
    ));
    // Bounded recursion with a random weight gate.
    let rgate = 8 + rng.below(6);
    src.push_str(&format!("tc(X, Y) :- e(X, Y, W), W >= {rgate}.\n"));
    src.push_str(&format!(
        "tc(X, Z) :- tc(X, Y), e(Y, Z, W), W >= {rgate}.\n"
    ));
    src
}

/// Random edge facts: `nodes` symbols, `edges` weighted edges.
fn synth_facts(db: &mut Database, rng: &mut Rng, nodes: u64, edges: u64) {
    for i in 0..nodes {
        db.fact("node").sym(&format!("v{i}")).assert();
    }
    for _ in 0..edges {
        let a = format!("v{}", rng.below(nodes));
        let b = format!("v{}", rng.below(nodes));
        db.fact("e")
            .sym(&a)
            .sym(&b)
            .int(rng.below(17) as i64)
            .assert();
    }
}

/// Full database image: every predicate (name order), rows in insertion
/// order, provenance included.
fn full_snapshot(db: &Database) -> Vec<String> {
    let mut preds: Vec<String> = (0..db.pred_count() as u32)
        .map(|p| db.pred_name(p).to_owned())
        .collect();
    preds.sort();
    let mut out = Vec::new();
    for pred in &preds {
        let Some(rel) = db.relation(pred) else {
            continue;
        };
        for (row, tuple) in rel.rows().enumerate() {
            let cells: Vec<String> = tuple.iter().map(|c| db.display(*c)).collect();
            let prov = rel
                .provenance(row as u32)
                .map(|p| format!(" by rule {} from {:?}", p.rule, p.parents))
                .unwrap_or_default();
            out.push(format!("{pred}[{row}]({}){prov}", cells.join(",")));
        }
    }
    out
}

fn run_once(src: &str, seed: u64, compile: bool, threads: usize) -> Vec<String> {
    let program =
        Program::parse(src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let options = EngineOptions {
        compile,
        threads,
        provenance: true,
        ..EngineOptions::default()
    };
    let engine = Engine::with(&program, Default::default(), options)
        .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));
    let mut db = Database::new();
    synth_facts(&mut db, &mut Rng(seed ^ 0xFAC7), 80, 240);
    engine
        .run(&mut db)
        .unwrap_or_else(|e| panic!("fixpoint failed: {e}\n{src}"));
    full_snapshot(&db)
}

fn assert_compile_invisible(src: &str, seed: u64) {
    let reference = run_once(src, seed, true, 1);
    assert!(
        !reference.is_empty(),
        "seed {seed}: generated program derived nothing\n{src}"
    );
    for (compile, threads) in [(false, 1), (true, 4), (false, 4)] {
        let got = run_once(src, seed, compile, threads);
        assert_eq!(
            got, reference,
            "seed {seed}: compile={compile} threads={threads} diverged\n{src}"
        );
    }
}

#[test]
fn synthetic_programs_are_compile_invariant() {
    for seed in 0..6u64 {
        assert_compile_invisible(&synth_program(&mut Rng(seed)), seed);
    }
}

#[test]
fn synthetic_programs_are_compile_invariant_more_seeds() {
    // A second stripe of shapes: a compiler change that happens to keep
    // batch one identical still gets fresh join orders and gates.
    for seed in 200..204u64 {
        assert_compile_invisible(&synth_program(&mut Rng(seed)), seed);
    }
}

#[test]
fn generated_programs_cover_both_aggregate_forms() {
    // Meta-test on the generator: every seed must produce both the
    // condition-form and binding-form aggregates plus negation and
    // recursion — otherwise the differentials above are weaker than they
    // look.
    for seed in 0..6u64 {
        let src = synth_program(&mut Rng(seed));
        assert!(src.contains("msum(W, <Z>) >="), "condition aggregate lost");
        assert!(src.contains("S = msum(W, <Z>)"), "binding aggregate lost");
        assert!(src.contains("not hit(X)"), "negation rule missing");
        assert!(src.contains("tc(X, Z)"), "recursive rule missing");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary generator seeds and fact seeds: the compiled path must
    /// be invisible on every program shape the generator can produce.
    #[test]
    fn compiled_execution_is_invisible_on_arbitrary_seeds(
        program_seed in 0u64..1_000_000,
        fact_seed in 0u64..1_000_000,
    ) {
        let src = synth_program(&mut Rng(program_seed));
        let reference = run_once(&src, fact_seed, true, 1);
        let interpreted = run_once(&src, fact_seed, false, 1);
        prop_assert_eq!(&reference, &interpreted, "compiled diverged from interpreted:\n{}", src);
        let parallel = run_once(&src, fact_seed, true, 4);
        prop_assert_eq!(&reference, &parallel, "compiled parallel diverged:\n{}", src);
    }
}
