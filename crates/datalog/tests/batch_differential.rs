//! Batch-executor on/off differential tests over *generated* synthetic
//! programs.
//!
//! The bundled paper programs pin six real workloads; this suite
//! generates random — but legal — programs over a *mixed-arity* schema
//! and checks the batch tier's contract on each: evaluating with the
//! batch executor on or off, at 1, 2 or 8 threads, must produce
//! byte-identical databases (tuples and insertion order / row ids).
//! Run it again with `--features simd` to put the explicit SIMD
//! kernels under the same microscope.
//!
//! The generator deliberately hits the batch subset's edges: constants
//! pinned inside atom positions (probe keys and `Lead::Rows`
//! enumeration), comparison filters and inequality guards (selection
//! blocks — whose adaptive reordering must stay invisible), stratified
//! negation (membership steps), and a recursive rule whose delta
//! rounds *must* fall back to the tuple chain mid-fixpoint. Dedicated
//! tests then force the selection-vector edge cases end to end: a rule
//! that derives nothing (every batch filtered empty), a filter that
//! keeps every lane (all-selected), and fact counts straddling the
//! 1024-row batch width so the tail batch is partial.

use datalog::{Database, Engine, EngineOptions, Program};
use proptest::prelude::*;

/// SplitMix64: deterministic generation without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Random program over a mixed-arity schema — `e/3` (weighted edges)
/// and `f/2` (unweighted links) — with constants pinned into atom
/// positions, filters, negation and bounded recursion.
fn synth_program(rng: &mut Rng) -> String {
    let mut src = String::new();
    let n_chain = 2 + rng.below(3); // 2..=4 join rules
    for r in 0..n_chain {
        let len = 2 + rng.below(3) as usize; // 2..=4 atoms
        let mut atoms: Vec<String> = (0..len)
            .map(|i| {
                if rng.below(3) == 0 {
                    // Narrow link atom: random schema mix in one chain.
                    format!("f(N{i}, N{})", i + 1)
                } else if rng.below(4) == 0 {
                    // Constant pinned in the weight column: becomes a
                    // probe-key / lead-enumeration constant after
                    // lowering.
                    format!("e(N{i}, N{}, {})", i + 1, rng.below(17))
                } else {
                    format!("e(N{i}, N{}, W{i})", i + 1)
                }
            })
            .collect();
        rng.shuffle(&mut atoms);
        let mut body = atoms;
        // Every rule gets at least one selection step so batches are
        // actually refined, not just expanded.
        let wvar = (0..len).find(|i| body.iter().any(|a| a.contains(&format!("W{i}"))));
        if let Some(w) = wvar {
            body.push(format!("W{w} >= {}", rng.below(9)));
        }
        if rng.below(2) == 0 {
            body.push(format!("N0 != N{len}"));
        }
        if rng.below(3) == 0 {
            // Symbol constant in the first column: exercises
            // `Lead::Rows` / constant-key probes on the symbol side.
            body.push(format!(
                "f(\"v{}\", N{})",
                rng.below(6),
                rng.below(len as u64 + 1)
            ));
        }
        let head = match wvar {
            Some(w) => format!("r{r}(N0, N{len}, W{w})"),
            None => format!("r{r}(N0, N{len}, 0)"),
        };
        src.push_str(&format!("{head} :- {}.\n", body.join(", ")));
    }
    // Stratified negation: membership steps on both polarities.
    let pick = rng.below(n_chain);
    src.push_str(&format!("hit(X) :- r{pick}(X, _, _).\n"));
    src.push_str("quiet(X) :- node(X), not hit(X).\n");
    src.push_str(&format!("both(X, Y) :- r{pick}(X, Y, _), hit(Y).\n"));
    // Bounded recursion: delta rounds must fall back to tuple closures
    // while round 1 of the same stratum ran batched.
    let rgate = 8 + rng.below(6);
    src.push_str(&format!("tc(X, Y) :- e(X, Y, W), W >= {rgate}.\n"));
    src.push_str(&format!(
        "tc(X, Z) :- tc(X, Y), e(Y, Z, W), W >= {rgate}.\n"
    ));
    src
}

/// Random facts: `nodes` symbols, `edges` weighted `e` rows plus half
/// as many unweighted `f` links.
fn synth_facts(db: &mut Database, rng: &mut Rng, nodes: u64, edges: u64) {
    for i in 0..nodes {
        db.fact("node").sym(&format!("v{i}")).assert();
    }
    for _ in 0..edges {
        let a = format!("v{}", rng.below(nodes));
        let b = format!("v{}", rng.below(nodes));
        db.fact("e")
            .sym(&a)
            .sym(&b)
            .int(rng.below(17) as i64)
            .assert();
    }
    for _ in 0..edges / 2 {
        let a = format!("v{}", rng.below(nodes));
        let b = format!("v{}", rng.below(nodes));
        db.fact("f").sym(&a).sym(&b).assert();
    }
}

/// Full database image: every predicate (name order), rows in
/// insertion order — row ids included, so an executor that derives the
/// same set in a different order still fails the diff.
fn full_snapshot(db: &Database) -> Vec<String> {
    let mut preds: Vec<String> = (0..db.pred_count() as u32)
        .map(|p| db.pred_name(p).to_owned())
        .collect();
    preds.sort();
    let mut out = Vec::new();
    for pred in &preds {
        let Some(rel) = db.relation(pred) else {
            continue;
        };
        for (row, tuple) in rel.rows().enumerate() {
            let cells: Vec<String> = tuple.iter().map(|c| db.display(*c)).collect();
            out.push(format!("{pred}[{row}]({})", cells.join(",")));
        }
    }
    out
}

fn run_once(src: &str, seed: u64, batch: bool, threads: usize, facts: (u64, u64)) -> Vec<String> {
    let program =
        Program::parse(src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let options = EngineOptions {
        compile: true,
        batch,
        threads,
        // Provenance forces the tuple path wholesale; keep it off so the
        // batch leg actually runs batched.
        provenance: false,
        ..EngineOptions::default()
    };
    let engine = Engine::with(&program, Default::default(), options)
        .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));
    let mut db = Database::new();
    synth_facts(&mut db, &mut Rng(seed ^ 0xBA7C), facts.0, facts.1);
    engine
        .run(&mut db)
        .unwrap_or_else(|e| panic!("fixpoint failed: {e}\n{src}"));
    full_snapshot(&db)
}

fn assert_batch_invisible(src: &str, seed: u64, facts: (u64, u64)) {
    let reference = run_once(src, seed, false, 1, facts);
    assert!(
        !reference.is_empty(),
        "seed {seed}: generated program derived nothing\n{src}"
    );
    for (batch, threads) in [(true, 1), (true, 2), (true, 8), (false, 8)] {
        let got = run_once(src, seed, batch, threads, facts);
        assert_eq!(
            got, reference,
            "seed {seed}: batch={batch} threads={threads} diverged\n{src}"
        );
    }
}

#[test]
fn synthetic_programs_are_batch_invariant() {
    for seed in 0..6u64 {
        assert_batch_invisible(&synth_program(&mut Rng(seed)), seed, (80, 240));
    }
}

#[test]
fn synthetic_programs_are_batch_invariant_more_seeds() {
    // A second stripe of shapes: a batch-tier change that happens to
    // keep stripe one identical still gets fresh join orders, schema
    // mixes and pinned constants.
    for seed in 300..304u64 {
        assert_batch_invisible(&synth_program(&mut Rng(seed)), seed, (80, 240));
    }
}

#[test]
fn generated_programs_cover_the_batch_boundaries() {
    // Meta-test on the generator: every seed must produce negation
    // (membership steps), recursion (tuple fallback for delta rounds)
    // and at least one comparison filter — otherwise the differentials
    // above are weaker than they look.
    for seed in 0..6u64 {
        let src = synth_program(&mut Rng(seed));
        assert!(src.contains("not hit(X)"), "negation rule missing:\n{src}");
        assert!(src.contains("tc(X, Z)"), "recursive rule missing:\n{src}");
        assert!(src.contains(">="), "comparison filter missing:\n{src}");
    }
}

/// A filter no row passes: every batch compacts to an empty selection
/// and the rule must emit nothing — under both executors.
#[test]
fn empty_selection_derives_nothing_identically() {
    let src = "dead(X, Y) :- e(X, Y, W), W >= 100.\n\
               alive(X, Y) :- e(X, Y, W), W >= 0.\n";
    // `alive` keeps the reference snapshot non-empty; `dead` must stay
    // empty everywhere (weights are 0..17).
    for facts in [(10, 40), (60, 1024), (60, 3000)] {
        assert_batch_invisible(src, 7, facts);
        let snap = run_once(src, 7, true, 1, facts);
        assert!(
            snap.iter().all(|row| !row.starts_with("dead[")),
            "impossible filter derived rows"
        );
    }
}

/// A filter every row passes (all-selected) and fact counts straddling
/// the 1024-row batch width: one exact full batch, one with a partial
/// tail, one smaller than a single batch.
#[test]
fn all_selected_and_tail_batches_match_tuple_execution() {
    let src = "keep(X, Y, W) :- e(X, Y, W), W >= 0.\n\
               pair(X, Z) :- e(X, Y, W), e(Y, Z, V), W >= V.\n";
    for edges in [37u64, 1024, 1024 + 511, 4096 + 1] {
        assert_batch_invisible(src, 11, (50, edges));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary generator seeds and fact seeds: the batch tier must be
    /// invisible on every program shape the generator can produce.
    #[test]
    fn batch_execution_is_invisible_on_arbitrary_seeds(
        program_seed in 0u64..1_000_000,
        fact_seed in 0u64..1_000_000,
    ) {
        let src = synth_program(&mut Rng(program_seed));
        let reference = run_once(&src, fact_seed, false, 1, (80, 240));
        let batched = run_once(&src, fact_seed, true, 1, (80, 240));
        prop_assert_eq!(&reference, &batched, "batched diverged from tuple:\n{}", src);
        let parallel = run_once(&src, fact_seed, true, 8, (80, 240));
        prop_assert_eq!(&reference, &parallel, "batched parallel diverged:\n{}", src);
    }
}
