//! Incremental-vs-from-scratch differential tests over generated update
//! logs.
//!
//! An [`IncrementalEngine`] session applies a sequence of base-fact
//! insertions and deletions; after every step its database must be
//! set-identical (per predicate, compared through the canonical dump so
//! labelled nulls are structural) to replaying the whole op log against a
//! fresh database and running the engine once. Programs come from the
//! PR 3 synthetic generator — shuffled chain joins, filters, arithmetic
//! bindings, stratified negation, bounded recursion — so the maintained
//! paths (counting, DRed, negation replay) all get exercised, including
//! deletions that sever one derivation path while another survives.

use datalog::incr::{IncrementalEngine, Update};
use datalog::{Database, Engine, Program};
use proptest::prelude::*;

/// SplitMix64: deterministic generation without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Random type-uniform program over `e/3` and `node/1`: chain joins,
/// filters, bindings, a negation stratum and a recursive closure — the
/// same family the planner differential suite uses.
fn synth_program(rng: &mut Rng) -> String {
    let mut src = String::new();
    let n_chain = 2 + rng.below(3);
    for r in 0..n_chain {
        let len = 2 + rng.below(3) as usize;
        let mut atoms: Vec<String> = (0..len)
            .map(|i| format!("e(N{i}, N{}, W{i})", i + 1))
            .collect();
        rng.shuffle(&mut atoms);
        let mut body = atoms;
        if rng.below(2) == 0 {
            body.push(format!("W{} >= {}", rng.below(len as u64), rng.below(9)));
        }
        if rng.below(2) == 0 {
            body.push(format!("N0 != N{len}"));
        }
        let head = if rng.below(2) == 0 {
            let a = rng.below(len as u64);
            let b = rng.below(len as u64);
            body.push(format!("S = W{a} + W{b} * 2"));
            format!("r{r}(N0, N{len}, S)")
        } else {
            format!("r{r}(N0, N{len}, W0)")
        };
        src.push_str(&format!("{head} :- {}.\n", body.join(", ")));
    }
    let pick = rng.below(n_chain);
    src.push_str(&format!("hit(X) :- r{pick}(X, _, _).\n"));
    src.push_str("quiet(X) :- node(X), not hit(X).\n");
    let gate = 8 + rng.below(6);
    src.push_str(&format!("tc(X, Y) :- e(X, Y, W), W >= {gate}.\n"));
    src.push_str(&format!("tc(X, Z) :- tc(X, Y), e(Y, Z, W), W >= {gate}.\n"));
    src
}

/// A base fact in database-independent form: predicate plus (symbolic)
/// tuple, buildable against any symbol table.
type Fact = (&'static str, Vec<FactVal>);

#[derive(Debug, Clone, PartialEq)]
enum FactVal {
    Sym(String),
    Int(i64),
}

fn build_tuple(db: &mut Database, vals: &[FactVal]) -> Vec<datalog::Const> {
    vals.iter()
        .map(|v| match v {
            FactVal::Sym(s) => db.sym(s),
            FactVal::Int(i) => datalog::Const::Int(*i),
        })
        .collect()
}

fn edge(rng: &mut Rng, nodes: u64) -> Fact {
    (
        "e",
        vec![
            FactVal::Sym(format!("v{}", rng.below(nodes))),
            FactVal::Sym(format!("v{}", rng.below(nodes))),
            FactVal::Int(rng.below(17) as i64),
        ],
    )
}

/// One update step: deletions (sampled from the live fact set, so they
/// usually hit) then insertions.
struct Step {
    del: Vec<Fact>,
    ins: Vec<Fact>,
}

/// Generates an op log: an initial fact set plus `steps` random update
/// steps over the same node universe. Deletions are drawn from the
/// currently-live facts, so recursive derivations genuinely lose support
/// and the delete-and-rederive path runs.
fn synth_log(rng: &mut Rng, nodes: u64, init_edges: u64, steps: usize) -> (Vec<Fact>, Vec<Step>) {
    let mut init: Vec<Fact> = (0..nodes)
        .map(|i| ("node", vec![FactVal::Sym(format!("v{i}"))] as Vec<FactVal>))
        .collect();
    let mut live: Vec<Fact> = Vec::new();
    for _ in 0..init_edges {
        let f = edge(rng, nodes);
        init.push(f.clone());
        live.push(f);
    }
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let mut del = Vec::new();
        for _ in 0..rng.below(4) {
            if live.is_empty() {
                break;
            }
            let i = rng.below(live.len() as u64) as usize;
            del.push(live.swap_remove(i));
        }
        let mut ins = Vec::new();
        for _ in 0..1 + rng.below(4) {
            let f = edge(rng, nodes);
            ins.push(f.clone());
            live.push(f);
        }
        out.push(Step { del, ins });
    }
    (init, out)
}

fn canonical_state(db: &Database) -> Vec<(String, Vec<String>)> {
    let mut preds: Vec<String> = (0..db.pred_count() as u32)
        .map(|p| db.pred_name(p).to_owned())
        .collect();
    preds.sort();
    preds
        .into_iter()
        .map(|p| {
            let rows = db.dump_canonical(&p);
            (p, rows)
        })
        .collect()
}

/// Replays the op log into a fresh database and runs the engine once.
fn from_scratch(program: &Program, init: &[Fact], steps: &[Step]) -> Database {
    let mut db = Database::new();
    for (p, vals) in init {
        let t = build_tuple(&mut db, vals);
        db.assert_fact(p, &t).unwrap();
    }
    for step in steps {
        for (p, vals) in &step.del {
            let t = build_tuple(&mut db, vals);
            db.retract_fact(p, &t);
        }
        for (p, vals) in &step.ins {
            let t = build_tuple(&mut db, vals);
            db.assert_fact(p, &t).unwrap();
        }
    }
    Engine::new(program).unwrap().run(&mut db).unwrap();
    db
}

/// The differential: incremental session vs from-scratch replay after
/// every step.
fn assert_incremental_matches(seed: u64, nodes: u64, init_edges: u64, nsteps: usize) {
    let src = synth_program(&mut Rng(seed));
    let program =
        Program::parse(&src).unwrap_or_else(|e| panic!("generated program invalid: {e}\n{src}"));
    let (init, steps) = synth_log(&mut Rng(seed ^ 0x5EED), nodes, init_edges, nsteps);

    let mut db = Database::new();
    for (p, vals) in &init {
        let t = build_tuple(&mut db, vals);
        db.assert_fact(p, &t).unwrap();
    }
    let mut session = IncrementalEngine::new(&program, db)
        .unwrap_or_else(|e| panic!("seed {seed}: session open failed: {e}\n{src}"));

    for upto in 0..=steps.len() {
        if upto > 0 {
            let step = &steps[upto - 1];
            let mut update = Update::default();
            for (p, vals) in &step.del {
                let mut t = Vec::with_capacity(vals.len());
                for v in vals {
                    t.push(match v {
                        FactVal::Sym(s) => session.sym(s),
                        FactVal::Int(i) => datalog::Const::Int(*i),
                    });
                }
                update.delete.push((p.to_string(), t));
            }
            for (p, vals) in &step.ins {
                let mut t = Vec::with_capacity(vals.len());
                for v in vals {
                    t.push(match v {
                        FactVal::Sym(s) => session.sym(s),
                        FactVal::Int(i) => datalog::Const::Int(*i),
                    });
                }
                update.insert.push((p.to_string(), t));
            }
            session
                .apply_update(&update)
                .unwrap_or_else(|e| panic!("seed {seed} step {upto}: update failed: {e}\n{src}"));
        }
        let fresh = from_scratch(&program, &init, &steps[..upto]);
        assert_eq!(
            canonical_state(session.db()),
            canonical_state(&fresh),
            "seed {seed}: diverged after step {upto}\n{src}"
        );
    }
}

#[test]
fn synthetic_update_logs_match_from_scratch() {
    for seed in 0..6u64 {
        assert_incremental_matches(seed, 24, 70, 6);
    }
}

#[test]
fn synthetic_update_logs_match_from_scratch_more_seeds() {
    for seed in 200..204u64 {
        assert_incremental_matches(seed, 16, 40, 8);
    }
}

#[test]
fn maintained_strategies_are_actually_used() {
    // Meta-test: across the tested seeds the sessions must select both
    // counting and DRed units — otherwise the differentials above are
    // exercising replay only.
    let mut saw_counting = false;
    let mut saw_dred = false;
    for seed in 0..6u64 {
        let src = synth_program(&mut Rng(seed));
        let program = Program::parse(&src).unwrap();
        let (init, _) = synth_log(&mut Rng(seed ^ 0x5EED), 24, 70, 0);
        let mut db = Database::new();
        for (p, vals) in &init {
            let t = build_tuple(&mut db, vals);
            db.assert_fact(p, &t).unwrap();
        }
        let session = IncrementalEngine::new(&program, db).unwrap();
        let info = session.info();
        saw_counting |= info.counting_units > 0;
        saw_dred |= info.dred_units > 0;
        assert!(!info.full_fallback, "pure programs never fall back");
    }
    assert!(saw_counting && saw_dred, "strategy coverage lost");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleaved insert/delete sequences (proptest-driven shape:
    /// seed, universe size, log length) stay equivalent to from-scratch
    /// evaluation at every prefix.
    #[test]
    fn random_update_logs_are_replay_equivalent(
        seed in 0u64..1u64 << 48,
        nodes in 6u64..20,
        edges in 10u64..50,
        steps in 1usize..6,
    ) {
        assert_incremental_matches(seed, nodes, edges, steps);
    }
}
