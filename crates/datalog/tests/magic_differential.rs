//! Property test: goal-directed evaluation is observationally equivalent
//! to full bottom-up evaluation.
//!
//! Proptest draws a random edge relation, one of several recursive program
//! shapes (left-/right-/doubly-recursive closure, same-generation, a
//! non-recursive join layer), and a random goal pattern (bound-first,
//! bound-second, fully bound, all-free, sometimes over a constant that no
//! fact mentions). For every thread count the canonical rows of
//! [`Engine::query`] must be byte-identical to filtering the goal out of a
//! full fixpoint with [`goal_matches`]. The generated programs are plain
//! Datalog — single-headed, negation-free, aggregate-free — so every
//! non-all-free pattern is demandable, and the test asserts `demanded` to
//! catch silent fallbacks.

use datalog::{goal_matches, Database, Engine, EngineOptions, Program, Query};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// Program shapes over an `e/2` edge relation. `goal_preds` lists the
/// intensional predicates (all binary) a goal may target.
struct Shape {
    src: &'static str,
    goal_preds: &'static [&'static str],
}

const SHAPES: &[Shape] = &[
    Shape {
        src: "@output(\"p\").\n\
              p(X, Y) :- e(X, Y).\n\
              p(X, Z) :- p(X, Y), e(Y, Z).",
        goal_preds: &["p"],
    },
    Shape {
        src: "@output(\"p\").\n\
              p(X, Y) :- e(X, Y).\n\
              p(X, Z) :- e(X, Y), p(Y, Z).",
        goal_preds: &["p"],
    },
    Shape {
        src: "@output(\"p\").\n\
              p(X, Y) :- e(X, Y).\n\
              p(X, Z) :- p(X, Y), p(Y, Z).",
        goal_preds: &["p"],
    },
    Shape {
        src: "@output(\"sg\").\n\
              sg(X, Y) :- e(Z, X), e(Z, Y).\n\
              sg(X, Y) :- e(Z, X), sg(Z, W), e(W, Y).",
        goal_preds: &["sg"],
    },
    Shape {
        src: "@output(\"q\").\n\
              p(X, Y) :- e(X, Y).\n\
              p(X, Z) :- p(X, Y), e(Y, Z).\n\
              q(X, Y) :- p(X, Z), p(Z, Y), X != Y.",
        goal_preds: &["p", "q"],
    },
];

/// Renders the goal for `pred` with the pattern selected by `kind`
/// (0 = bound-first, 1 = bound-second, 2 = fully bound, 3 = all-free)
/// over the symbol pool `s<i>`.
fn render_goal(pred: &str, kind: u8, ca: u8, cb: u8) -> (String, bool) {
    let a = format!("s{ca}");
    let b = format!("s{cb}");
    match kind % 4 {
        0 => (format!("{pred}(\"{a}\", Y)?"), true),
        1 => (format!("{pred}(X, \"{b}\")?"), true),
        2 => (format!("{pred}(\"{a}\", \"{b}\")?"), true),
        _ => (format!("{pred}(X, Y)?"), false),
    }
}

fn edge_db(edges: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    for &(x, y) in edges {
        let a = db.sym(&format!("s{x}"));
        let b = db.sym(&format!("s{y}"));
        db.assert_fact("e", &[a, b]).expect("arity");
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn demanded_queries_match_full_evaluation(
        edges in prop::collection::vec((0u8..12, 0u8..12), 8..48),
        shape_ix in 0usize..SHAPES.len(),
        pred_ix in 0usize..2,
        kind in 0u8..4,
        // Constants range past the edge-symbol pool so some goals mention
        // symbols no fact interned.
        ca in 0u8..14,
        cb in 0u8..14,
    ) {
        let shape = &SHAPES[shape_ix];
        let pred = shape.goal_preds[pred_ix % shape.goal_preds.len()];
        let (goal, bound) = render_goal(pred, kind, ca, cb);
        let program = Program::parse(shape.src).expect("valid shape");
        let q = Query::parse(&goal).expect("valid goal");
        let base = edge_db(&edges);

        for threads in THREADS {
            let options = EngineOptions { threads, ..EngineOptions::default() };
            let engine = Engine::with(&program, Default::default(), options)
                .expect("compiles");

            let mut full = base.clone();
            engine.run(&mut full).expect("full fixpoint");
            let reference = goal_matches(&full, &q);

            let answer = engine.query(&base, &goal).expect("goal-directed run");
            prop_assert_eq!(
                &answer.rows, &reference,
                "goal `{}` diverged (shape {}, threads {}, demanded={}, fallback={:?})",
                goal, shape_ix, threads, answer.demanded, answer.fallback_reason
            );
            prop_assert_eq!(
                answer.demanded, bound,
                "goal `{}` took the wrong path (shape {}, fallback={:?})",
                goal, shape_ix, answer.fallback_reason
            );
        }
    }
}
