//! Property tests for the static analyzer.
//!
//! Two families of guarantees:
//!
//! 1. **Total**: `analyze` never panics, whatever the parser hands it —
//!    checked on arbitrary strings and on token soup drawn from the
//!    grammar's own alphabet (the inputs most likely to parse and reach
//!    the deeper passes).
//! 2. **Sound as a gate**: any program the analyzer accepts under the
//!    default config constructs an `Engine` and evaluates on a small
//!    database without *structural* runtime errors. Unbound variables,
//!    arity mismatches, and non-stratifiable negation must be caught
//!    statically; the only runtime outcomes left are success, a budget
//!    stop (existential recursion is legal and may not terminate within
//!    the cap), or a dynamic type error from arithmetic on symbols —
//!    value-level typing is explicitly outside the analyzer's scope.

use datalog::{
    analyze_with, AnalysisConfig, Database, DatalogError, Engine, EngineOptions, FunctionRegistry,
    Program,
};
use proptest::prelude::*;

/// Head templates for generated rules. Predicate names encode their arity
/// so the extensional facts below always line up.
const HEADS: [&str; 6] = [
    "p(X)",
    "p(X, V)",
    "p(Z, X)",
    "p(#g(X))",
    "p(X), r(X)",
    "out(X, Y)",
];

/// Body literal templates: positive/negated atoms, comparisons, bindings,
/// aggregates, and recursion through the generated head predicates.
const BODIES: [&str; 12] = [
    "e2(X, Y)",
    "e2(X, X)",
    "e2(W, X)",
    "q1(X)",
    "not q1(X)",
    "not q1(Z)",
    "own3(X, Y, W)",
    "p(X)",
    "X != Y",
    "V = W + 1",
    "V = msum(W, <X>)",
    "msum(W, <Y>) > 0.5",
];

fn head() -> impl Strategy<Value = &'static str> {
    prop::sample::select(HEADS.to_vec())
}

fn body() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec(prop::sample::select(BODIES.to_vec()), 1..3)
}

fn program_source() -> impl Strategy<Value = String> {
    prop::collection::vec((head(), body()), 1..4).prop_map(|rules| {
        rules
            .iter()
            .map(|(h, b)| format!("{h} :- {}.\n", b.join(", ")))
            .collect()
    })
}

fn small_db() -> Database {
    let mut db = Database::new();
    db.assert_str_facts("q1", &[&["a"], &["b"]]);
    db.assert_str_facts("e2", &[&["a", "b"], &["b", "c"], &["c", "a"]]);
    db.fact("own3").sym("a").sym("b").float(0.6).assert();
    db.fact("own3").sym("b").sym("c").float(0.7).assert();
    db.fact("own3").sym("c").sym("a").float(0.5).assert();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analyzer is total: no parsed program makes it panic, under
    /// either the default or the strict configuration.
    #[test]
    fn analyzer_never_panics(src in ".{0,200}") {
        if let Ok(program) = Program::parse(&src) {
            let _ = analyze_with(&program, &AnalysisConfig::default());
            let _ = analyze_with(&program, &AnalysisConfig::strict());
        }
    }

    /// Token soup parses far more often than arbitrary unicode, driving
    /// the passes over genuinely weird (but syntactic) programs.
    #[test]
    fn analyzer_never_panics_on_tokenish_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "a", "X", "_", "(", ")", ",", ".", ":-", "not", "msum",
                "<", ">", "=", "!=", "0.5", "3", "#f", "\"s\"",
                "@output(\"a\").", "@post(\"a\", \"unique(0)\").",
            ]),
            0..40,
        )
    ) {
        let src: String = parts.join(" ");
        if let Ok(program) = Program::parse(&src) {
            let _ = analyze_with(&program, &AnalysisConfig::default());
            let _ = analyze_with(&program, &AnalysisConfig::strict());
        }
    }

    /// Analyzer-clean programs construct an engine and evaluate without
    /// structural errors: everything V001–V016 promises to catch
    /// statically must not resurface at runtime.
    #[test]
    fn clean_programs_evaluate_without_structural_errors(src in program_source()) {
        let program = Program::parse(&src).expect("generated source is syntactic");
        if analyze_with(&program, &AnalysisConfig::default()).has_errors() {
            return Ok(());
        }
        let opts = EngineOptions {
            max_facts: 20_000,
            max_rounds: 2_000,
            ..EngineOptions::default()
        };
        let engine = Engine::with(&program, FunctionRegistry::default(), opts)
            .unwrap_or_else(|e| panic!("analyzer-clean program rejected by engine: {src}\n{e}"));
        let mut db = small_db();
        match engine.run(&mut db) {
            Ok(_) => {}
            // Existential recursion may legitimately hit the cap.
            Err(DatalogError::BudgetExceeded(_)) => {}
            // `V = W + 1` with W bound to a symbol: dynamic typing is out
            // of the analyzer's scope.
            Err(DatalogError::Function(_)) => {}
            Err(e) => panic!("structural runtime error on clean program: {src}\n{e}"),
        }
    }
}
