//! Sequential-vs-parallel differential tests for the fixpoint engine.
//!
//! The parallel round scheduler promises *byte-identical* results for every
//! thread count: same derived tuples, same insertion order (hence row ids),
//! same provenance. These tests run the same program on the same facts at
//! threads 1, 2 and 8 and compare the complete relation contents in
//! insertion order. Fact sets are sized above the scheduler's sequential
//! cutoff so the parallel path genuinely executes.

use datalog::{Database, Engine, EngineOptions, Program};

/// SplitMix64: deterministic fact generation without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Full database image: per relation, the rows in insertion order (row id
/// order), each rendered with provenance if recorded.
fn snapshot(db: &Database, preds: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for pred in preds {
        let Some(rel) = db.relation(pred) else {
            out.push(format!("{pred}: <absent>"));
            continue;
        };
        for (row, tuple) in rel.rows().enumerate() {
            let cells: Vec<String> = tuple.iter().map(|c| db.display(*c)).collect();
            let prov = rel
                .provenance(row as u32)
                .map(|p| format!(" by rule {} from {:?}", p.rule, p.parents))
                .unwrap_or_default();
            out.push(format!("{pred}[{row}]({}){prov}", cells.join(",")));
        }
    }
    out
}

fn run_at(src: &str, threads: usize, provenance: bool, setup: &dyn Fn(&mut Database)) -> Database {
    let program = Program::parse(src).unwrap();
    let options = EngineOptions {
        threads,
        provenance,
        ..EngineOptions::default()
    };
    let engine = Engine::with(&program, Default::default(), options).unwrap();
    let mut db = Database::new();
    setup(&mut db);
    engine.run(&mut db).unwrap();
    db
}

fn assert_identical_across_threads(
    src: &str,
    preds: &[&str],
    provenance: bool,
    setup: &dyn Fn(&mut Database),
) {
    let reference = snapshot(&run_at(src, 1, provenance, setup), preds);
    assert!(!reference.is_empty(), "reference run derived nothing");
    for threads in [2, 8] {
        let got = snapshot(&run_at(src, threads, provenance, setup), preds);
        assert_eq!(got, reference, "threads={threads} diverged from sequential");
    }
}

/// Layered random digraph: `layers` layers of `width` nodes, every node
/// wired forward to a few nodes of the next layer. Wide deltas per round,
/// small diameter — the shape the parallel scheduler is built for.
fn layered_edges(db: &mut Database, layers: u64, width: u64, out_deg: u64, seed: u64) {
    let mut rng = Rng(seed);
    for l in 0..layers - 1 {
        for i in 0..width {
            for _ in 0..out_deg {
                let j = rng.below(width);
                let a = format!("n{l}_{i}");
                let b = format!("n{}_{j}", l + 1);
                db.fact("e").sym(&a).sym(&b).assert();
            }
        }
    }
}

#[test]
fn reachability_is_identical_across_thread_counts() {
    let setup = |db: &mut Database| {
        layered_edges(db, 5, 400, 3, 7);
        for i in 0..50 {
            db.fact("source").sym(&format!("n0_{i}")).assert();
        }
    };
    assert_identical_across_threads(
        "reach(X, Y) :- source(X), e(X, Y).\n\
         reach(X, Z) :- reach(X, Y), e(Y, Z).",
        &["reach"],
        false,
        &setup,
    );
}

#[test]
fn provenance_is_identical_across_thread_counts() {
    // Row ids feed provenance parents, so identical provenance across
    // thread counts certifies identical insertion order too.
    let setup = |db: &mut Database| {
        layered_edges(db, 4, 300, 3, 11);
        for i in 0..40 {
            db.fact("source").sym(&format!("n0_{i}")).assert();
        }
    };
    assert_identical_across_threads(
        "reach(X, Y) :- source(X), e(X, Y).\n\
         reach(X, Z) :- reach(X, Y), e(Y, Z).",
        &["reach"],
        true,
        &setup,
    );
}

#[test]
fn negation_conditions_and_bindings_run_in_parallel() {
    // Mixed safe literals: joins, negation, arithmetic bindings and
    // comparisons — everything the par_full classification admits.
    let setup = |db: &mut Database| {
        let mut rng = Rng(23);
        for i in 0..1500u64 {
            let a = format!("v{}", rng.below(500));
            let b = format!("v{}", rng.below(500));
            db.fact("e").sym(&a).sym(&b).int(i as i64 % 17).assert();
        }
        for i in 0..500u64 {
            db.fact("node").sym(&format!("v{i}")).assert();
        }
    };
    assert_identical_across_threads(
        "out(X) :- e(X, _, _).\n\
         sink(X) :- node(X), not out(X).\n\
         heavy(X, Y, V) :- e(X, Y, W), V = W * 2 + 1, V > 20.\n\
         pair(X, Y) :- e(X, Y, W), W >= 8, X != Y.",
        &["out", "sink", "heavy", "pair"],
        false,
        &setup,
    );
}

#[test]
fn aggregates_interleave_deterministically_with_parallel_rules() {
    // Aggregate rules stay sequential (order-dependent accumulator state);
    // they must still splice deterministically between the parallel rules.
    let setup = |db: &mut Database| {
        let mut rng = Rng(41);
        for _ in 0..1200u64 {
            let a = format!("c{}", rng.below(300));
            let b = format!("c{}", rng.below(300));
            if a != b {
                let w = (1 + rng.below(99)) as f64 / 100.0;
                db.fact("own").sym(&a).sym(&b).float(w).assert();
            }
        }
        for i in 0..300u64 {
            db.fact("company").sym(&format!("c{i}")).assert();
        }
    };
    assert_identical_across_threads(
        "control(X, X) :- company(X).\n\
         control(X, Y) :- control(X, Z), own(Z, Y, W), X != Y, msum(W, <Z>) > 0.5.\n\
         linked(X, Y) :- own(X, Y, W), W >= 0.25.",
        &["control", "linked"],
        false,
        &setup,
    );
}

#[test]
fn same_thread_count_is_reproducible() {
    let setup = |db: &mut Database| {
        layered_edges(db, 4, 300, 3, 59);
        for i in 0..30 {
            db.fact("source").sym(&format!("n0_{i}")).assert();
        }
    };
    let src = "reach(X, Y) :- source(X), e(X, Y).\n\
               reach(X, Z) :- reach(X, Y), e(Y, Z).";
    let a = snapshot(&run_at(src, 4, true, &setup), &["reach"]);
    let b = snapshot(&run_at(src, 4, true, &setup), &["reach"]);
    assert_eq!(a, b);
}
