//! Dense node-embedding matrix.

/// A row-major `n × d` embedding matrix.
#[derive(Debug, Clone)]
pub struct Embedding {
    dims: usize,
    data: Vec<f32>,
}

impl Embedding {
    /// Creates a zeroed embedding for `n` nodes of `dims` dimensions.
    pub fn zeros(n: usize, dims: usize) -> Self {
        Embedding {
            dims,
            data: vec![0.0; n * dims],
        }
    }

    /// Wraps an existing buffer (must be `n * dims` long).
    pub fn from_vec(n: usize, dims: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * dims, "buffer size mismatch");
        Embedding { dims, data }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    /// True when there are no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The vector of node `i`.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Mutable vector of node `i`.
    pub fn vector_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Cosine similarity between the vectors of nodes `a` and `b`
    /// (0.0 when either has zero norm).
    pub fn cosine(&self, a: usize, b: usize) -> f32 {
        cosine(self.vector(a), self.vector(b))
    }

    /// L2-normalizes every vector in place (zero vectors left untouched).
    pub fn normalize(&mut self) {
        let d = self.dims;
        for i in 0..self.len() {
            let v = &mut self.data[i * d..(i + 1) * d];
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in v {
                    *x /= norm;
                }
            }
        }
    }
}

/// Cosine similarity of two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Squared Euclidean distance of two equal-length vectors.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_access() {
        let mut e = Embedding::zeros(3, 4);
        assert_eq!(e.len(), 3);
        assert_eq!(e.dims(), 4);
        e.vector_mut(1)[2] = 5.0;
        assert_eq!(e.vector(1), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn cosine_basics() {
        let e = Embedding::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0]);
        assert!((e.cosine(0, 2) - 1.0).abs() < 1e-6);
        assert!(e.cosine(0, 1).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        let e = Embedding::zeros(2, 3);
        assert_eq!(e.cosine(0, 1), 0.0);
    }

    #[test]
    fn normalize_unit_norms() {
        let mut e = Embedding::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        e.normalize();
        let v = e.vector(0);
        assert!((v[0] - 0.6).abs() < 1e-6 && (v[1] - 0.8).abs() < 1e-6);
        assert_eq!(e.vector(1), &[0.0, 0.0]);
    }

    #[test]
    fn sq_dist_works() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_checks_size() {
        Embedding::from_vec(2, 3, vec![0.0; 5]);
    }
}
