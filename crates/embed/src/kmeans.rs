//! k-means++ clustering of node embeddings.
//!
//! The first-level clustering of VADA-LINK's blocking scheme: after
//! node2vec, nodes are grouped into `k` clusters and pairwise `Candidate`
//! evaluation happens only inside a cluster. The number of clusters is the
//! central scalability/recall dial studied in Figures 4(c) and 4(e) of the
//! paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::embedding::{sq_dist, Embedding};

/// Clusters the embedding into `k` groups with k-means++ initialization and
/// at most `max_iters` Lloyd iterations. Returns the cluster id of each
/// node. `k` is clamped to the number of nodes; `k = 0` yields one cluster.
#[allow(clippy::needless_range_loop)] // index drives parallel arrays
pub fn kmeans(emb: &Embedding, k: usize, max_iters: usize, seed: u64) -> Vec<u32> {
    let n = emb.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let d = emb.dims();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centers: Vec<f32> = Vec::with_capacity(k * d);
    let first = rng.random_range(0..n);
    centers.extend_from_slice(emb.vector(first));
    let mut dist2: Vec<f32> = (0..n)
        .map(|i| sq_dist(emb.vector(i), &centers[0..d]))
        .collect();
    while centers.len() < k * d {
        let total: f64 = dist2.iter().map(|&x| x as f64).sum();
        let pick = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut u = rng.random::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &x) in dist2.iter().enumerate() {
                u -= x as f64;
                if u <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let start = centers.len();
        centers.extend_from_slice(emb.vector(pick));
        let c = &centers[start..start + d];
        for (i, slot) in dist2.iter_mut().enumerate() {
            let nd = sq_dist(emb.vector(i), c);
            if nd < *slot {
                *slot = nd;
            }
        }
    }

    // Lloyd iterations.
    let mut assign = vec![0u32; n];
    let mut counts = vec![0usize; k];
    for _ in 0..max_iters {
        let mut moved = false;
        for i in 0..n {
            let v = emb.vector(i);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let dd = sq_dist(v, &centers[c * d..(c + 1) * d]);
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if assign[i] != best as u32 {
                assign[i] = best as u32;
                moved = true;
            }
        }
        if !moved {
            break;
        }
        centers.iter_mut().for_each(|x| *x = 0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for i in 0..n {
            let c = assign[i] as usize;
            counts[c] += 1;
            let v = emb.vector(i);
            for j in 0..d {
                centers[c * d + j] += v[j];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..d {
                    centers[c * d + j] /= counts[c] as f32;
                }
            } else {
                // Re-seed empty clusters at a random point.
                let p = rng.random_range(0..n);
                centers[c * d..(c + 1) * d].copy_from_slice(emb.vector(p));
            }
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_embedding() -> Embedding {
        // Two well-separated 2-D blobs of 5 points each.
        let mut data = Vec::new();
        for i in 0..5 {
            data.extend_from_slice(&[0.0 + i as f32 * 0.01, 0.0]);
        }
        for i in 0..5 {
            data.extend_from_slice(&[10.0 + i as f32 * 0.01, 10.0]);
        }
        Embedding::from_vec(10, 2, data)
    }

    #[test]
    fn separates_blobs() {
        let emb = blob_embedding();
        let assign = kmeans(&emb, 2, 50, 3);
        assert_eq!(assign.len(), 10);
        let first = assign[0];
        assert!(assign[..5].iter().all(|&c| c == first));
        let second = assign[5];
        assert!(assign[5..].iter().all(|&c| c == second));
        assert_ne!(first, second);
    }

    #[test]
    fn k_clamped_to_n() {
        let emb = blob_embedding();
        let assign = kmeans(&emb, 100, 10, 1);
        assert!(assign.iter().all(|&c| (c as usize) < 10));
    }

    #[test]
    fn k_zero_is_one_cluster() {
        let emb = blob_embedding();
        let assign = kmeans(&emb, 0, 10, 1);
        assert!(assign.iter().all(|&c| c == 0));
    }

    #[test]
    fn empty_embedding() {
        let emb = Embedding::zeros(0, 4);
        assert!(kmeans(&emb, 3, 10, 1).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let emb = blob_embedding();
        assert_eq!(kmeans(&emb, 3, 25, 7), kmeans(&emb, 3, 25, 7));
    }

    #[test]
    fn identical_points_single_effective_cluster() {
        let emb = Embedding::zeros(6, 3);
        let assign = kmeans(&emb, 3, 10, 2);
        // All points identical: they all end in one cluster (the nearest
        // center is shared), clustering is still well-defined.
        let c = assign[0];
        assert!(assign.iter().all(|&x| x == c));
    }
}
