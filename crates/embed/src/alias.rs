//! Alias method for O(1) sampling from discrete distributions.
//!
//! Used for the unigram^0.75 negative-sampling table of SGNS and available
//! for walk-transition sampling. Construction is the classic Vose
//! algorithm: O(n) time, O(n) space, exact.

use rand::Rng;

/// A Vose alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table needs positive total weight");
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything remaining gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_weights_respect_ratios() {
        let t = AliasTable::new(&[3.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hit0 = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if t.sample(&mut rng) == 0 {
                hit0 += 1;
            }
        }
        let frac = hit0 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn singleton_table() {
        let t = AliasTable::new(&[0.5]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
