//! Second-order biased random walks (the node2vec walk strategy).
//!
//! At each step the walk at node `v`, having arrived from `t`, picks the
//! next node `x` among `v`'s (undirected) neighbours with unnormalized
//! probability `w(v,x) · α(t,x)` where
//!
//! * `α = 1/p` if `x = t` (return),
//! * `α = 1` if `x` is a neighbour of `t` (triangle),
//! * `α = 1/q` otherwise (exploration).
//!
//! Low `q` makes walks DFS-like (community structure), high `q` BFS-like
//! (structural roles) — the paper picks node2vec precisely because it
//! "optimizes both network vicinity and network role" (Section 4.1).
//! Ownership edges are traversed in both directions: shareholding proximity
//! is a symmetric signal for blocking purposes.
//!
//! # Seed splitting
//!
//! The walk corpus must not depend on how many threads generate it, so the
//! master seed is *split into one independent RNG stream per walk* rather
//! than shared sequentially:
//!
//! 1. walk `idx` (row `r·n + v` starts round `r` at node `v`) derives the
//!    64-bit value `cfg.seed ^ idx`;
//! 2. that value is passed through SplitMix64 (the mixer recommended for
//!    seeding by the xoshiro authors) so that consecutive indices — which
//!    differ in a handful of low bits — map to decorrelated states;
//! 3. the mixed value seeds a fresh `StdRng` used exclusively by that walk.
//!
//! A walk's randomness is therefore a pure function of `(seed, idx)`:
//! threads only decide *who* computes a walk, never *what* it contains.
//! Large corpora fan out over [`par`] scoped threads; any thread count
//! (including 1) yields byte-identical output.

use pgraph::{Csr, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Walk-generation parameters.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Nodes per walk.
    pub walk_length: usize,
    /// Walks started at each node.
    pub walks_per_node: usize,
    /// Return parameter `p`.
    pub p: f64,
    /// In-out parameter `q`.
    pub q: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads (`0` = the [`par::threads`] default). The corpus is
    /// identical for every value.
    pub threads: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walk_length: 20,
            walks_per_node: 5,
            p: 1.0,
            q: 1.0,
            seed: 0,
            threads: 0,
        }
    }
}

/// Minimum number of walks before threading pays for itself.
const PARALLEL_THRESHOLD: usize = 20_000;

/// SplitMix64: decorrelates per-walk seeds derived from (seed, index).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Generates the walk corpus; walk `r · n + v` starts round `r` at node
/// `v`. Isolated nodes yield length-1 walks (their vector still gets
/// trained against negatives, keeping them clusterable).
pub fn generate_walks(csr: &Csr, cfg: &WalkConfig) -> Vec<Vec<u32>> {
    let n = csr.node_count();
    let total = n * cfg.walks_per_node;
    let mut walks: Vec<Vec<u32>> = vec![Vec::new(); total];
    if total == 0 {
        return walks;
    }
    let threads = if total < PARALLEL_THRESHOLD {
        1
    } else {
        par::resolve(cfg.threads)
    };
    par::par_for_mut(&mut walks, threads, |idx, walk| {
        *walk = one_walk(csr, cfg, idx, n);
    });
    walks
}

/// Generates walk number `idx` (deterministic in `(cfg.seed, idx)`).
fn one_walk(csr: &Csr, cfg: &WalkConfig, idx: usize, n: usize) -> Vec<u32> {
    let start = (idx % n) as u32;
    let mut rng = StdRng::seed_from_u64(splitmix64(cfg.seed ^ (idx as u64)));
    let mut walk = Vec::with_capacity(cfg.walk_length);
    walk.push(start);
    let mut prev: Option<u32> = None;
    let mut cur = start;
    let mut neigh: Vec<u32> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    while walk.len() < cfg.walk_length {
        neigh.clear();
        weights.clear();
        collect_undirected(csr, cur, &mut neigh, &mut weights);
        if neigh.is_empty() {
            break;
        }
        let next = match prev {
            None => weighted_pick(&neigh, &weights, &mut rng),
            Some(t) => {
                // Apply the second-order bias α(t, x).
                for (i, &x) in neigh.iter().enumerate() {
                    let alpha = if x == t {
                        1.0 / cfg.p
                    } else if is_neighbor(csr, t, x) {
                        1.0
                    } else {
                        1.0 / cfg.q
                    };
                    weights[i] *= alpha;
                }
                weighted_pick(&neigh, &weights, &mut rng)
            }
        };
        walk.push(next);
        prev = Some(cur);
        cur = next;
    }
    walk
}

fn collect_undirected(csr: &Csr, v: u32, neigh: &mut Vec<u32>, weights: &mut Vec<f64>) {
    let id = NodeId(v);
    neigh.extend_from_slice(csr.out_neighbors(id));
    weights.extend_from_slice(csr.out_weights(id));
    neigh.extend_from_slice(csr.in_neighbors(id));
    weights.extend_from_slice(csr.in_weights(id));
}

fn is_neighbor(csr: &Csr, t: u32, x: u32) -> bool {
    let id = NodeId(t);
    csr.out_neighbors(id).contains(&x) || csr.in_neighbors(id).contains(&x)
}

fn weighted_pick<R: Rng>(items: &[u32], weights: &[f64], rng: &mut R) -> u32 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return items[rng.random_range(0..items.len())];
    }
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return items[i];
        }
    }
    items[items.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::PropertyGraph;

    fn line_graph(n: u32) -> Csr {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_node("C");
        }
        for i in 0..n - 1 {
            g.add_edge("S", NodeId(i), NodeId(i + 1));
        }
        Csr::from_graph(&g, "w")
    }

    #[test]
    fn corpus_shape() {
        let csr = line_graph(10);
        let cfg = WalkConfig {
            walk_length: 5,
            walks_per_node: 3,
            ..Default::default()
        };
        let walks = generate_walks(&csr, &cfg);
        assert_eq!(walks.len(), 30);
        for w in &walks {
            assert!(!w.is_empty() && w.len() <= 5);
        }
        // Walk r·n + v starts at node v.
        assert_eq!(walks[13][0], 3);
    }

    #[test]
    fn walks_follow_edges() {
        let csr = line_graph(10);
        let walks = generate_walks(&csr, &WalkConfig::default());
        for w in &walks {
            for pair in w.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                assert!(
                    (a as i64 - b as i64).abs() == 1,
                    "walk step {a}->{b} is not an edge"
                );
            }
        }
    }

    #[test]
    fn isolated_nodes_yield_singleton_walks() {
        let mut g = PropertyGraph::new();
        g.add_node("C");
        g.add_node("C");
        let csr = Csr::from_graph(&g, "w");
        let walks = generate_walks(&csr, &WalkConfig::default());
        assert!(walks.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn determinism_per_seed() {
        let csr = line_graph(20);
        let cfg = WalkConfig {
            seed: 99,
            ..Default::default()
        };
        assert_eq!(generate_walks(&csr, &cfg), generate_walks(&csr, &cfg));
        let other = WalkConfig {
            seed: 100,
            ..Default::default()
        };
        assert_ne!(generate_walks(&csr, &cfg), generate_walks(&csr, &other));
    }

    #[test]
    fn parallel_path_matches_sequential_seeding() {
        // Enough walks to cross the threading threshold: the corpus is
        // identical to what per-walk seeding would produce sequentially.
        let csr = line_graph(3_000);
        let cfg = WalkConfig {
            walk_length: 8,
            walks_per_node: 10,
            seed: 5,
            ..Default::default()
        };
        let walks = generate_walks(&csr, &cfg);
        assert_eq!(walks.len(), 30_000);
        let n = csr.node_count();
        for idx in [0usize, 17, 29_999, 15_000] {
            assert_eq!(walks[idx], one_walk(&csr, &cfg, idx, n));
        }
    }

    #[test]
    fn low_p_returns_more_often() {
        // On a line, with tiny p the walk oscillates; with huge p it runs.
        let csr = line_graph(50);
        let count_returns = |p: f64| {
            let cfg = WalkConfig {
                walk_length: 20,
                walks_per_node: 5,
                p,
                q: 1.0,
                seed: 5,
                threads: 0,
            };
            let walks = generate_walks(&csr, &cfg);
            walks
                .iter()
                .flat_map(|w| w.windows(3))
                .filter(|t| t[0] == t[2])
                .count()
        };
        let low = count_returns(0.05);
        let high = count_returns(20.0);
        assert!(low > high * 2, "low-p returns {low}, high-p returns {high}");
    }
}
