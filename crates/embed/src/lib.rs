//! # embed — node2vec embeddings and clustering
//!
//! This crate implements the `#GraphEmbedClust` primitive of the paper's
//! Algorithm 3 from scratch: **node2vec** \[Grover & Leskovec, KDD 2016\]
//! (second-order biased random walks with return parameter `p` and in-out
//! parameter `q`, trained with skip-gram and negative sampling) plus
//! **k-means++** clustering of the learned vectors.
//!
//! In VADA-LINK, the embedding provides the *first-level clustering* of the
//! two-level blocking scheme: nodes that share ownership neighbourhoods or
//! topological roles land in the same cluster and are then sub-blocked by
//! feature hashing before pairwise `Candidate` evaluation.
//!
//! Every stochastic component is seeded, so embeddings are reproducible
//! bit for bit.
//!
//! ```
//! use pgraph::{Csr, PropertyGraph};
//! use embed::{Node2VecConfig, node2vec, kmeans};
//!
//! let mut g = PropertyGraph::new();
//! let a = g.add_node("C");
//! let b = g.add_node("C");
//! g.add_edge("S", a, b);
//! let csr = Csr::from_graph(&g, "w");
//! let cfg = Node2VecConfig { dims: 8, ..Default::default() };
//! let emb = node2vec(&csr, &cfg);
//! let clusters = kmeans(&emb, 2, 10, 42);
//! assert_eq!(clusters.len(), 2);
//! ```

pub mod alias;
pub mod embedding;
pub mod kmeans;
pub mod sgns;
pub mod walks;

pub use embedding::Embedding;
pub use kmeans::kmeans;
pub use sgns::{train_sgns, SgnsConfig};
pub use walks::{generate_walks, WalkConfig};

use pgraph::Csr;

/// End-to-end node2vec configuration.
#[derive(Debug, Clone)]
pub struct Node2VecConfig {
    /// Embedding dimensionality.
    pub dims: usize,
    /// Walk length (number of nodes per walk).
    pub walk_length: usize,
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the walk corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub learning_rate: f32,
    /// node2vec return parameter `p` (likelihood of revisiting).
    pub p: f64,
    /// node2vec in-out parameter `q` (BFS- vs DFS-like exploration).
    pub q: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for SGNS training: `1` (default) is the exact
    /// sequential reference, `> 1` the sharded parallel mode, `0` resolves
    /// via [`par::threads`]. Walk generation always parallelizes (it is
    /// thread-count-invariant); see [`walks`] and [`sgns`].
    pub threads: usize,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            dims: 64,
            walk_length: 20,
            walks_per_node: 5,
            window: 4,
            negatives: 5,
            epochs: 2,
            learning_rate: 0.025,
            p: 1.0,
            q: 1.0,
            seed: 0xB0CCA,
            threads: 1,
        }
    }
}

/// Runs node2vec end to end: walks, then SGNS training.
pub fn node2vec(csr: &Csr, cfg: &Node2VecConfig) -> Embedding {
    let walks = generate_walks(
        csr,
        &WalkConfig {
            walk_length: cfg.walk_length,
            walks_per_node: cfg.walks_per_node,
            p: cfg.p,
            q: cfg.q,
            seed: cfg.seed,
            threads: 0,
        },
    );
    train_sgns(
        csr.node_count(),
        &walks,
        &SgnsConfig {
            dims: cfg.dims,
            window: cfg.window,
            negatives: cfg.negatives,
            epochs: cfg.epochs,
            learning_rate: cfg.learning_rate,
            seed: cfg.seed ^ 0x5EED,
            threads: cfg.threads,
        },
    )
}
