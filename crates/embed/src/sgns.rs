//! Skip-gram with negative sampling (SGNS) over walk corpora.
//!
//! The word2vec training objective specialized to node sequences: for each
//! (center, context) pair within a window, push the pair's vectors together
//! and push `negatives` random nodes (sampled ∝ degree^0.75 from corpus
//! frequency) away.
//!
//! Two training modes share the same initialization, negative-sampling
//! distribution and learning-rate schedule:
//!
//! * **Sequential reference** (`threads ≤ 1`, the default): plain
//!   single-threaded SGD, fully deterministic for a given seed. This is
//!   the seed implementation every parallel run is differentially tested
//!   against.
//! * **Sharded batch-synchronous** (`threads > 1`): deterministic local
//!   SGD, a Hogwild variant with the races removed. Walks are processed in
//!   fixed-size batches; each worker trains a contiguous chunk of the
//!   batch *sequentially, with fresh updates* on a copy-on-first-touch
//!   overlay of the frozen matrices, drawing negatives from per-walk RNG
//!   streams split from the master seed with SplitMix64, exactly like
//!   [`crate::walks`]. At the batch barrier the per-row deltas
//!   (`local − frozen`) are applied in worker/first-touch order, so
//!   training is *byte-reproducible for a given (seed, thread count)* and
//!   statistically equivalent to — but not bit-identical with — the
//!   sequential reference (workers don't see each other's updates until
//!   the barrier).
//!
//! The statistical equivalence holds for the corpora the sharded mode is
//! built for: graphs large enough that concurrent shards mostly touch
//! *different* embedding rows. On very small graphs (≲ 100 nodes) every
//! shard updates the same rows from the same frozen state, the summed
//! deltas overshoot, and high shard counts can degrade the optimum — use
//! the sequential mode there (it is also faster at that size).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alias::AliasTable;
use crate::embedding::Embedding;
use crate::walks::splitmix64;

/// SGNS hyperparameters.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dims: usize,
    /// Window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads: `1` (default) runs the exact sequential reference
    /// algorithm; `> 1` the sharded batch-synchronous mode; `0` resolves
    /// via [`par::threads`].
    pub threads: usize,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dims: 64,
            window: 4,
            negatives: 5,
            epochs: 2,
            learning_rate: 0.025,
            seed: 0,
            threads: 1,
        }
    }
}

/// Walks per synchronization batch in the sharded mode: small enough that
/// gradients stay near-fresh (quality), large enough to amortize the
/// per-batch thread spawn (throughput).
const BATCH_WALKS: usize = 64;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains node embeddings on a walk corpus; returns the input vectors.
pub fn train_sgns(n_nodes: usize, walks: &[Vec<u32>], cfg: &SgnsConfig) -> Embedding {
    let threads = par::resolve(cfg.threads);
    let d = cfg.dims;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Input and output (context) matrices. Inputs start small-random,
    // outputs at zero (word2vec convention). Both modes share this init.
    let mut input = Embedding::zeros(n_nodes, d);
    for i in 0..n_nodes {
        for x in input.vector_mut(i) {
            *x = (rng.random::<f32>() - 0.5) / d as f32;
        }
    }
    let mut output = vec![0.0f32; n_nodes * d];

    if n_nodes == 0 || walks.is_empty() {
        return input;
    }

    // Negative-sampling distribution: corpus frequency ^ 0.75.
    let mut freq = vec![0.0f64; n_nodes];
    for w in walks {
        for &v in w {
            freq[v as usize] += 1.0;
        }
    }
    for f in &mut freq {
        *f = f.powf(0.75);
    }
    if freq.iter().sum::<f64>() <= 0.0 {
        return input;
    }
    let neg_table = AliasTable::new(&freq);

    // Total update steps for the learning-rate schedule.
    let pairs_estimate: usize = walks.iter().map(|w| w.len() * 2 * cfg.window).sum();
    let total_steps = (pairs_estimate * cfg.epochs).max(1);

    if threads <= 1 {
        train_sequential(
            &mut input,
            &mut output,
            walks,
            cfg,
            &neg_table,
            total_steps,
            &mut rng,
        );
    } else {
        train_sharded(
            &mut input,
            &mut output,
            walks,
            cfg,
            &neg_table,
            total_steps,
            threads,
        );
    }
    input
}

/// The sequential reference: one global RNG stream, every update visible
/// to the next pair. Byte-for-byte the historical `train_sgns` behavior.
#[allow(clippy::too_many_arguments)]
fn train_sequential(
    input: &mut Embedding,
    output: &mut [f32],
    walks: &[Vec<u32>],
    cfg: &SgnsConfig,
    neg_table: &AliasTable,
    total_steps: usize,
    rng: &mut StdRng,
) {
    let d = cfg.dims;
    let mut step = 0usize;
    let mut grad = vec![0.0f32; d];
    for _epoch in 0..cfg.epochs {
        for walk in walks {
            for (ci, &center) in walk.iter().enumerate() {
                let lo = ci.saturating_sub(cfg.window);
                let hi = (ci + cfg.window + 1).min(walk.len());
                for (xi, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if xi == ci {
                        continue;
                    }
                    let progress = step as f32 / total_steps as f32;
                    let lr = cfg.learning_rate * (1.0 - progress).max(0.05);
                    step += 1;
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    let cvec_idx = center as usize * d;
                    // Positive pair + negatives.
                    for k in 0..=cfg.negatives {
                        let (target, label) = if k == 0 {
                            (context as usize, 1.0f32)
                        } else {
                            (neg_table.sample(rng) as usize, 0.0f32)
                        };
                        if k > 0 && target == context as usize {
                            continue;
                        }
                        let ovec_idx = target * d;
                        let mut dot = 0.0f32;
                        for j in 0..d {
                            dot += input_at(input, cvec_idx + j) * output[ovec_idx + j];
                        }
                        let g = (label - sigmoid(dot)) * lr;
                        for j in 0..d {
                            grad[j] += g * output[ovec_idx + j];
                            output[ovec_idx + j] += g * input_at(input, cvec_idx + j);
                        }
                    }
                    let cv = input.vector_mut(center as usize);
                    for j in 0..d {
                        cv[j] += grad[j];
                    }
                }
            }
        }
    }
}

/// One worker's copy-on-first-touch overlay of the frozen matrices.
///
/// The worker trains its walk chunk with plain *fresh* SGD on overlay rows
/// (local SGD); at the barrier each row contributes the delta
/// `local − frozen`. Rows live in a `Vec` in first-touch order — never a
/// `HashMap` — so the merge order, and with it every floating-point
/// rounding, is deterministic.
struct ShardBuf {
    /// Row id of slot `i` (input row `r`, or `n + r` for output row `r`).
    touched: Vec<u32>,
    /// Working copy of each touched row, updated in place by the worker.
    local: Vec<Vec<f32>>,
    /// Frozen snapshot of each touched row, captured at first touch.
    frozen: Vec<Vec<f32>>,
    /// Row → slot index + a generation stamp to reset in O(1).
    slot_of: Vec<(u32, u32)>,
    generation: u32,
}

impl ShardBuf {
    fn new(rows: usize) -> Self {
        ShardBuf {
            touched: Vec::new(),
            local: Vec::new(),
            frozen: Vec::new(),
            slot_of: vec![(0, u32::MAX); rows],
            generation: 1,
        }
    }

    /// The worker's live copy of `row`, initialized from `src` on first
    /// touch.
    fn row_mut(&mut self, row: u32, src: &[f32]) -> &mut [f32] {
        let (slot, stamp) = self.slot_of[row as usize];
        let slot = if stamp == self.generation {
            slot as usize
        } else {
            let s = self.touched.len();
            self.touched.push(row);
            self.local.push(src.to_vec());
            self.frozen.push(src.to_vec());
            self.slot_of[row as usize] = (s as u32, self.generation);
            s
        };
        &mut self.local[slot]
    }
}

/// The sharded batch-synchronous mode (deterministic local SGD). Walks are
/// cut into fixed [`BATCH_WALKS`]-sized batches; each worker takes one
/// contiguous chunk of the batch and trains it *sequentially, with fresh
/// updates* on a sparse overlay of the frozen matrices, drawing negatives
/// from per-walk RNG streams. At the barrier the per-row deltas
/// (`local − frozen`) are applied in worker/first-touch order. The result
/// is a pure function of `(corpus, cfg, thread count)`.
fn train_sharded(
    input: &mut Embedding,
    output: &mut [f32],
    walks: &[Vec<u32>],
    cfg: &SgnsConfig,
    neg_table: &AliasTable,
    total_steps: usize,
    threads: usize,
) {
    let d = cfg.dims;
    let n = input.len();
    // Pair-count prefix sums: walk `i`'s first update is global step
    // `prefix[i]`, keeping the learning-rate schedule aligned with the
    // sequential reference no matter how walks are sharded.
    let mut prefix = Vec::with_capacity(walks.len() + 1);
    let mut acc = 0usize;
    prefix.push(0);
    for w in walks {
        acc += pair_count(w.len(), cfg.window);
        prefix.push(acc);
    }
    let pairs_per_epoch = acc;

    for epoch in 0..cfg.epochs {
        let epoch_base = epoch * pairs_per_epoch;
        let mut batch_start = 0usize;
        while batch_start < walks.len() {
            let batch_end = (batch_start + BATCH_WALKS).min(walks.len());
            // Freeze the matrices for this batch.
            let input_ref = &*input;
            let output_ref = &*output;
            let prefix_ref = &prefix;
            let buffers: Vec<ShardBuf> = par::par_ranges(
                batch_end - batch_start,
                threads,
                0, // one contiguous chunk per worker: assignment is static
                |r| {
                    let mut buf = ShardBuf::new(2 * n);
                    let mut grad = vec![0.0f32; d];
                    let mut cvec = vec![0.0f32; d];
                    for off in r {
                        let wi = batch_start + off;
                        train_one_walk_sharded(
                            &walks[wi],
                            wi,
                            epoch,
                            epoch_base + prefix_ref[wi],
                            input_ref,
                            output_ref,
                            cfg,
                            neg_table,
                            total_steps,
                            &mut buf,
                            &mut grad,
                            &mut cvec,
                        );
                    }
                    buf
                },
            );
            // Deterministic merge: worker order, first-touch order within.
            for buf in buffers {
                for (slot, &row) in buf.touched.iter().enumerate() {
                    let local = &buf.local[slot];
                    let frozen = &buf.frozen[slot];
                    let dest = if (row as usize) < n {
                        input.vector_mut(row as usize)
                    } else {
                        let base = (row as usize - n) * d;
                        &mut output[base..base + d]
                    };
                    for j in 0..d {
                        dest[j] += local[j] - frozen[j];
                    }
                }
            }
            batch_start = batch_end;
        }
    }
}

/// Exact number of (center, context) updates the training loop performs on
/// a walk of `len` nodes.
fn pair_count(len: usize, window: usize) -> usize {
    (0..len)
        .map(|ci| (ci + window + 1).min(len) - ci.saturating_sub(window) - 1)
        .sum()
}

/// Trains one walk with fresh SGD on the worker's overlay. Negatives come
/// from an RNG stream split from the master seed by `(epoch, walk index)` —
/// the same SplitMix64 scheme as walk generation — so the draws do not
/// depend on which worker runs the walk.
#[allow(clippy::too_many_arguments)]
fn train_one_walk_sharded(
    walk: &[u32],
    wi: usize,
    epoch: usize,
    start_step: usize,
    input: &Embedding,
    output: &[f32],
    cfg: &SgnsConfig,
    neg_table: &AliasTable,
    total_steps: usize,
    buf: &mut ShardBuf,
    grad: &mut [f32],
    cvec: &mut [f32],
) {
    let d = cfg.dims;
    let n = input.len();
    let mut rng = StdRng::seed_from_u64(splitmix64(
        cfg.seed ^ (wi as u64) ^ ((epoch as u64) << 40) ^ 0x5A4D5,
    ));
    let mut step = start_step;
    for (ci, &center) in walk.iter().enumerate() {
        let lo = ci.saturating_sub(cfg.window);
        let hi = (ci + cfg.window + 1).min(walk.len());
        for (xi, &context) in walk.iter().enumerate().take(hi).skip(lo) {
            if xi == ci {
                continue;
            }
            let progress = step as f32 / total_steps as f32;
            let lr = cfg.learning_rate * (1.0 - progress).max(0.05);
            step += 1;
            grad.iter_mut().for_each(|g| *g = 0.0);
            // The center row cannot change during the k-loop (its gradient
            // is applied after), so a copy is exact, not an approximation.
            cvec.copy_from_slice(buf.row_mut(center, input.vector(center as usize)));
            for k in 0..=cfg.negatives {
                let (target, label) = if k == 0 {
                    (context as usize, 1.0f32)
                } else {
                    (neg_table.sample(&mut rng) as usize, 0.0f32)
                };
                if k > 0 && target == context as usize {
                    continue;
                }
                let ovec = buf.row_mut((n + target) as u32, &output[target * d..target * d + d]);
                let mut dot = 0.0f32;
                for j in 0..d {
                    dot += cvec[j] * ovec[j];
                }
                let g = (label - sigmoid(dot)) * lr;
                for j in 0..d {
                    grad[j] += g * ovec[j];
                    ovec[j] += g * cvec[j];
                }
            }
            let cv = buf.row_mut(center, input.vector(center as usize));
            for j in 0..d {
                cv[j] += grad[j];
            }
        }
    }
}

#[inline]
fn input_at(e: &Embedding, flat: usize) -> f32 {
    let d = e.dims();
    e.vector(flat / d)[flat % d]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::cosine;

    /// Corpus with two "communities" {0,1,2} and {3,4,5} that never co-occur.
    fn two_community_corpus() -> Vec<Vec<u32>> {
        let mut walks = Vec::new();
        for _ in 0..80 {
            walks.push(vec![0, 1, 2, 1, 0, 2, 1, 2]);
            walks.push(vec![3, 4, 5, 4, 3, 5, 4, 5]);
        }
        walks
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let cfg = SgnsConfig {
            dims: 16,
            epochs: 3,
            seed: 11,
            ..Default::default()
        };
        let emb = train_sgns(6, &two_community_corpus(), &cfg);
        // Intra-community similarity must exceed inter-community similarity.
        let intra =
            (cosine(emb.vector(0), emb.vector(1)) + cosine(emb.vector(3), emb.vector(4))) / 2.0;
        let inter =
            (cosine(emb.vector(0), emb.vector(3)) + cosine(emb.vector(2), emb.vector(5))) / 2.0;
        assert!(
            intra > inter + 0.2,
            "intra {intra} should clearly exceed inter {inter}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SgnsConfig {
            dims: 8,
            epochs: 1,
            seed: 5,
            ..Default::default()
        };
        let corpus = two_community_corpus();
        let a = train_sgns(6, &corpus, &cfg);
        let b = train_sgns(6, &corpus, &cfg);
        assert_eq!(a.vector(0), b.vector(0));
        assert_eq!(a.vector(5), b.vector(5));
    }

    #[test]
    fn empty_corpus_returns_init() {
        let cfg = SgnsConfig {
            dims: 4,
            ..Default::default()
        };
        let emb = train_sgns(3, &[], &cfg);
        assert_eq!(emb.len(), 3);
        assert_eq!(emb.dims(), 4);
    }

    #[test]
    fn zero_nodes_ok() {
        let emb = train_sgns(0, &[], &SgnsConfig::default());
        assert_eq!(emb.len(), 0);
    }

    #[test]
    fn pair_count_is_exact() {
        // Must match the number of (center, context) iterations the
        // training loops actually perform, or the lr schedules diverge.
        for (len, window) in [(0usize, 4usize), (1, 4), (5, 2), (8, 4), (20, 3)] {
            let walk: Vec<u32> = (0..len as u32).collect();
            let mut brute = 0usize;
            for ci in 0..walk.len() {
                let lo = ci.saturating_sub(window);
                let hi = (ci + window + 1).min(walk.len());
                brute += (lo..hi).filter(|&xi| xi != ci).count();
            }
            assert_eq!(pair_count(len, window), brute, "len {len} window {window}");
        }
    }

    #[test]
    fn sharded_mode_reproducible_per_seed_and_threads() {
        // Same seed + same thread count => byte-identical embeddings.
        let cfg = SgnsConfig {
            dims: 8,
            epochs: 2,
            seed: 7,
            threads: 2,
            ..Default::default()
        };
        let corpus = two_community_corpus();
        let a = train_sgns(6, &corpus, &cfg);
        let b = train_sgns(6, &corpus, &cfg);
        for i in 0..6 {
            assert_eq!(a.vector(i), b.vector(i), "node {i} diverged across runs");
        }
    }

    #[test]
    fn sharded_mode_separates_communities() {
        // The parallel mode must reach the same qualitative optimum as the
        // sequential reference, even though the trajectories differ.
        for threads in [2usize, 8] {
            // Eight shards over a six-node corpus is the worst case for
            // batch-synchronous staleness (see module docs), so give the
            // optimizer enough epochs that separation does not hinge on a
            // lucky initial stream.
            let cfg = SgnsConfig {
                dims: 16,
                epochs: 8,
                seed: 11,
                threads,
                ..Default::default()
            };
            let emb = train_sgns(6, &two_community_corpus(), &cfg);
            let intra =
                (cosine(emb.vector(0), emb.vector(1)) + cosine(emb.vector(3), emb.vector(4))) / 2.0;
            let inter =
                (cosine(emb.vector(0), emb.vector(3)) + cosine(emb.vector(2), emb.vector(5))) / 2.0;
            assert!(
                intra > inter + 0.2,
                "threads {threads}: intra {intra} should clearly exceed inter {inter}"
            );
        }
    }

    #[test]
    fn vectors_move_during_training() {
        let cfg = SgnsConfig {
            dims: 8,
            epochs: 1,
            seed: 2,
            ..Default::default()
        };
        let corpus = two_community_corpus();
        let trained = train_sgns(6, &corpus, &cfg);
        // Norm grows well beyond the tiny random init.
        let norm: f32 = trained.vector(1).iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm > 0.05, "norm {norm}");
    }
}
