//! Skip-gram with negative sampling (SGNS) over walk corpora.
//!
//! The word2vec training objective specialized to node sequences: for each
//! (center, context) pair within a window, push the pair's vectors together
//! and push `negatives` random nodes (sampled ∝ degree^0.75 from corpus
//! frequency) away. Plain single-threaded SGD with a linearly decaying
//! learning rate keeps training fully deterministic for a given seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alias::AliasTable;
use crate::embedding::Embedding;

/// SGNS hyperparameters.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dims: usize,
    /// Window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dims: 64,
            window: 4,
            negatives: 5,
            epochs: 2,
            learning_rate: 0.025,
            seed: 0,
        }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Trains node embeddings on a walk corpus; returns the input vectors.
pub fn train_sgns(n_nodes: usize, walks: &[Vec<u32>], cfg: &SgnsConfig) -> Embedding {
    let d = cfg.dims;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Input and output (context) matrices. Inputs start small-random,
    // outputs at zero (word2vec convention).
    let mut input = Embedding::zeros(n_nodes, d);
    for i in 0..n_nodes {
        for x in input.vector_mut(i) {
            *x = (rng.random::<f32>() - 0.5) / d as f32;
        }
    }
    let mut output = vec![0.0f32; n_nodes * d];

    if n_nodes == 0 || walks.is_empty() {
        return input;
    }

    // Negative-sampling distribution: corpus frequency ^ 0.75.
    let mut freq = vec![0.0f64; n_nodes];
    for w in walks {
        for &v in w {
            freq[v as usize] += 1.0;
        }
    }
    for f in &mut freq {
        *f = f.powf(0.75);
    }
    if freq.iter().sum::<f64>() <= 0.0 {
        return input;
    }
    let neg_table = AliasTable::new(&freq);

    // Total update steps for the learning-rate schedule.
    let pairs_estimate: usize = walks.iter().map(|w| w.len() * 2 * cfg.window).sum();
    let total_steps = (pairs_estimate * cfg.epochs).max(1);
    let mut step = 0usize;
    let mut grad = vec![0.0f32; d];

    for _epoch in 0..cfg.epochs {
        for walk in walks {
            for (ci, &center) in walk.iter().enumerate() {
                let lo = ci.saturating_sub(cfg.window);
                let hi = (ci + cfg.window + 1).min(walk.len());
                for (xi, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                    if xi == ci {
                        continue;
                    }
                    let progress = step as f32 / total_steps as f32;
                    let lr = cfg.learning_rate * (1.0 - progress).max(0.05);
                    step += 1;
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    let cvec_idx = center as usize * d;
                    // Positive pair + negatives.
                    for k in 0..=cfg.negatives {
                        let (target, label) = if k == 0 {
                            (context as usize, 1.0f32)
                        } else {
                            (neg_table.sample(&mut rng) as usize, 0.0f32)
                        };
                        if k > 0 && target == context as usize {
                            continue;
                        }
                        let ovec_idx = target * d;
                        let mut dot = 0.0f32;
                        for j in 0..d {
                            dot += input_at(&input, cvec_idx + j) * output[ovec_idx + j];
                        }
                        let g = (label - sigmoid(dot)) * lr;
                        for j in 0..d {
                            grad[j] += g * output[ovec_idx + j];
                            output[ovec_idx + j] += g * input_at(&input, cvec_idx + j);
                        }
                    }
                    let cv = input.vector_mut(center as usize);
                    for j in 0..d {
                        cv[j] += grad[j];
                    }
                }
            }
        }
    }
    input
}

#[inline]
fn input_at(e: &Embedding, flat: usize) -> f32 {
    let d = e.dims();
    e.vector(flat / d)[flat % d]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::cosine;

    /// Corpus with two "communities" {0,1,2} and {3,4,5} that never co-occur.
    fn two_community_corpus() -> Vec<Vec<u32>> {
        let mut walks = Vec::new();
        for _ in 0..80 {
            walks.push(vec![0, 1, 2, 1, 0, 2, 1, 2]);
            walks.push(vec![3, 4, 5, 4, 3, 5, 4, 5]);
        }
        walks
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let cfg = SgnsConfig {
            dims: 16,
            epochs: 3,
            seed: 11,
            ..Default::default()
        };
        let emb = train_sgns(6, &two_community_corpus(), &cfg);
        // Intra-community similarity must exceed inter-community similarity.
        let intra =
            (cosine(emb.vector(0), emb.vector(1)) + cosine(emb.vector(3), emb.vector(4))) / 2.0;
        let inter =
            (cosine(emb.vector(0), emb.vector(3)) + cosine(emb.vector(2), emb.vector(5))) / 2.0;
        assert!(
            intra > inter + 0.2,
            "intra {intra} should clearly exceed inter {inter}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SgnsConfig {
            dims: 8,
            epochs: 1,
            seed: 5,
            ..Default::default()
        };
        let corpus = two_community_corpus();
        let a = train_sgns(6, &corpus, &cfg);
        let b = train_sgns(6, &corpus, &cfg);
        assert_eq!(a.vector(0), b.vector(0));
        assert_eq!(a.vector(5), b.vector(5));
    }

    #[test]
    fn empty_corpus_returns_init() {
        let cfg = SgnsConfig {
            dims: 4,
            ..Default::default()
        };
        let emb = train_sgns(3, &[], &cfg);
        assert_eq!(emb.len(), 3);
        assert_eq!(emb.dims(), 4);
    }

    #[test]
    fn zero_nodes_ok() {
        let emb = train_sgns(0, &[], &SgnsConfig::default());
        assert_eq!(emb.len(), 0);
    }

    #[test]
    fn vectors_move_during_training() {
        let cfg = SgnsConfig {
            dims: 8,
            epochs: 1,
            seed: 2,
            ..Default::default()
        };
        let corpus = two_community_corpus();
        let trained = train_sgns(6, &corpus, &cfg);
        // Norm grows well beyond the tiny random init.
        let norm: f32 = trained.vector(1).iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm > 0.05, "norm {norm}");
    }
}
