//! Embedding quality: node2vec + k-means must separate graph communities
//! — the property the first-level clustering of VADA-LINK relies on.

use embed::{kmeans, node2vec, Node2VecConfig};
use pgraph::{Csr, NodeId, PropertyGraph};

/// Two dense cliques joined by a single bridge edge.
fn two_cliques(size: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    for _ in 0..2 * size {
        g.add_node("C");
    }
    for c in 0..2 {
        let base = c * size;
        for i in 0..size {
            for j in i + 1..size {
                g.add_edge("S", NodeId((base + i) as u32), NodeId((base + j) as u32));
            }
        }
    }
    g.add_edge("S", NodeId(0), NodeId(size as u32)); // bridge
    g
}

#[test]
fn node2vec_kmeans_separates_cliques() {
    let size = 12;
    let g = two_cliques(size);
    let csr = Csr::from_graph(&g, "w");
    let emb = node2vec(
        &csr,
        &Node2VecConfig {
            dims: 16,
            walk_length: 15,
            walks_per_node: 8,
            epochs: 3,
            seed: 7,
            ..Default::default()
        },
    );
    let assign = kmeans(&emb, 2, 50, 11);
    // Majority label per clique must differ, with few strays.
    let count = |lo: usize, hi: usize, label: u32| (lo..hi).filter(|&i| assign[i] == label).count();
    let a_label = assign[1]; // avoid the bridge endpoints 0 and `size`
    let b_label = assign[size + 1];
    assert_ne!(a_label, b_label, "cliques must land in different clusters");
    assert!(
        count(0, size, a_label) >= size - 2,
        "clique A impure: {assign:?}"
    );
    assert!(
        count(size, 2 * size, b_label) >= size - 2,
        "clique B impure: {assign:?}"
    );
}

#[test]
fn intra_clique_similarity_exceeds_inter() {
    let size = 10;
    let g = two_cliques(size);
    let csr = Csr::from_graph(&g, "w");
    let emb = node2vec(
        &csr,
        &Node2VecConfig {
            dims: 16,
            walk_length: 12,
            walks_per_node: 8,
            epochs: 3,
            seed: 3,
            ..Default::default()
        },
    );
    let mut intra = 0.0;
    let mut inter = 0.0;
    let mut n_intra = 0;
    let mut n_inter = 0;
    for i in 1..size {
        for j in i + 1..size {
            intra += emb.cosine(i, j);
            n_intra += 1;
        }
        for j in size + 1..2 * size {
            inter += emb.cosine(i, j);
            n_inter += 1;
        }
    }
    let intra = intra / n_intra as f32;
    let inter = inter / n_inter as f32;
    assert!(
        intra > inter + 0.15,
        "intra {intra} must clearly exceed inter {inter}"
    );
}
