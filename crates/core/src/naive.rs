//! Naive all-pairs baseline (the red quadratic line of Figure 4(a)).
//!
//! Compares every eligible node pair with every `Candidate` predicate —
//! no embedding, no blocking. This is the approach the paper's clustering
//! exists to avoid; it is kept as the baseline for the scalability plots
//! and as a ground-truth oracle for the recall protocol ("no cluster
//! mode", Section 6.2).

use std::time::Instant;

use pgraph::NodeId;

use crate::augment::{AugmentStats, CandidatePredicate};
use crate::model::CompanyGraph;

/// Exhaustively compares all pairs; adds predicted links in place.
pub fn naive_augment(g: &mut CompanyGraph, candidates: &[&dyn CandidatePredicate]) -> AugmentStats {
    let start = Instant::now();
    let mut stats = AugmentStats {
        rounds: 1,
        ..Default::default()
    };
    for cand in candidates {
        let eligible: Vec<NodeId> = g
            .graph()
            .node_ids()
            .filter(|&n| cand.applies(g, n))
            .collect();
        let mut new_links = Vec::new();
        for i in 0..eligible.len() {
            for j in i + 1..eligible.len() {
                stats.comparisons += 1;
                if let Some(class) = cand.decide(g, eligible[i], eligible[j]) {
                    new_links.push((class, eligible[i], eligible[j]));
                }
            }
        }
        for (class, a, b) in new_links {
            if g.find_link(&class, a, b).is_none() && g.find_link(&class, b, a).is_none() {
                g.add_link(&class, a, b);
                stats.links_added += 1;
            }
        }
    }
    stats.compare_time = start.elapsed();
    stats.total_time = start.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::PersonLinkCandidate;
    use crate::family::{FamilyDetector, FamilyDetectorConfig};
    use gen::company::{generate, CompanyGraphConfig};

    #[test]
    fn naive_is_exhaustive_and_superset_of_blocked() {
        let out = generate(&CompanyGraphConfig {
            persons: 200,
            companies: 100,
            seed: 5,
            ..Default::default()
        });
        let g = crate::model::CompanyGraph::new(out.graph);
        let det = FamilyDetector::train(&g, &out.truth, &FamilyDetectorConfig::default());
        let cand = PersonLinkCandidate::new(det);

        let mut g_naive = g.clone();
        let stats = naive_augment(&mut g_naive, &[&cand]);
        let n = g.persons().count();
        assert_eq!(stats.comparisons, n * (n - 1) / 2);

        let mut g_blocked = g.clone();
        crate::augment::augment(
            &mut g_blocked,
            &[&cand],
            &crate::augment::AugmentOptions {
                clusters: 1,
                max_rounds: 1,
                ..Default::default()
            },
        );
        // Every blocked prediction is also a naive prediction.
        for class in ["PartnerOf", "SiblingOf", "ParentOf"] {
            let naive: std::collections::HashSet<_> = g_naive
                .links_of(class)
                .into_iter()
                .map(|(a, b)| (a.0.min(b.0), a.0.max(b.0)))
                .collect();
            for (a, b) in g_blocked.links_of(class) {
                assert!(
                    naive.contains(&(a.0.min(b.0), a.0.max(b.0))),
                    "blocked found a pair naive missed"
                );
            }
        }
    }
}
