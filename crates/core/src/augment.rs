//! The KG augmentation loop (Algorithm 1 / Algorithm 3 of the paper).
//!
//! Each round:
//!
//! 1. **`#GraphEmbedClust`** — embed the current graph with node2vec and
//!    k-means the vectors into first-level clusters (skipped when
//!    `clusters ≤ 1`, the paper's "no cluster mode");
//! 2. **`#GenerateBlocks`** — partition each cluster into second-level
//!    blocks by a deterministic feature key (natural keys, or a fixed
//!    block count for the Figure 4(c)/(e) sweeps);
//! 3. **`Candidate`** — compare the node pairs inside each block for every
//!    link class and add the predicted typed edges.
//!
//! Newly added edges feed the next round's embedding — the paper's
//! *reinforcement principle*: "positively predicted edges in turn help new
//! predictions". The loop stops when a round adds no edges (bounded by
//! `|N|² · |C|` pairs, Section 4.4) or when `max_rounds` is reached.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use embed::{kmeans, node2vec, Node2VecConfig};
use gen::company::FamilyLink;
use linkage::blocking::FeatureBlocker;
use linkage::distance::soundex;
use pgraph::NodeId;

use crate::family::FamilyDetector;
use crate::model::CompanyGraph;

/// A polymorphic link-prediction predicate (the paper's `Candidate`).
///
/// `Sync` is a supertrait: [`augment`] evaluates the pairs of a block on
/// [`par`] scoped threads, which share the predicate by reference. Decisions
/// must be pure functions of `(g, a, b)` — interior mutability is allowed
/// only behind a lock (see `ControlCandidate`'s memo).
pub trait CandidatePredicate: Sync {
    /// The link classes this predicate can produce (for reporting).
    fn classes(&self) -> Vec<String>;

    /// Whether a node participates in this link class at all.
    fn applies(&self, g: &CompanyGraph, n: NodeId) -> bool;

    /// The natural second-level blocking keys of a node
    /// (`#GenerateBlocks`). A node may carry several keys (multi-pass
    /// blocking, standard in record linkage); two nodes are compared when
    /// they share at least one key.
    fn block_keys(&self, g: &CompanyGraph, n: NodeId) -> Vec<u64>;

    /// Decides whether a link exists between two nodes; returns the edge
    /// class label to add.
    fn decide(&self, g: &CompanyGraph, a: NodeId, b: NodeId) -> Option<String>;
}

/// Options of the augmentation loop.
#[derive(Debug, Clone)]
pub struct AugmentOptions {
    /// First-level cluster count (k-means `k`); `≤ 1` disables embedding
    /// ("no cluster mode").
    pub clusters: usize,
    /// Second-level override: hash natural keys into exactly this many
    /// blocks (the Figure 4(c)/(e) sweep dial). `None` = natural keys.
    pub block_count: Option<usize>,
    /// node2vec configuration for `#GraphEmbedClust`.
    pub node2vec: Node2VecConfig,
    /// Maximum reinforcement rounds.
    pub max_rounds: usize,
    /// Seed for k-means and block hashing.
    pub seed: u64,
    /// Worker threads for pair evaluation (`0` = the [`par::threads`]
    /// default). The result is identical for every value: pairs are
    /// enumerated deterministically before any thread runs.
    pub threads: usize,
}

impl Default for AugmentOptions {
    fn default() -> Self {
        AugmentOptions {
            clusters: 8,
            block_count: None,
            node2vec: fast_node2vec(),
            max_rounds: 3,
            seed: 0xA06,
            threads: 0,
        }
    }
}

/// A node2vec configuration sized for blocking (not representation
/// learning): short walks, few epochs, 32 dimensions.
pub fn fast_node2vec() -> Node2VecConfig {
    Node2VecConfig {
        dims: 32,
        walk_length: 10,
        walks_per_node: 2,
        window: 3,
        negatives: 3,
        epochs: 1,
        learning_rate: 0.05,
        p: 1.0,
        q: 0.5,
        seed: 0xE5B,
        threads: 1,
    }
}

/// Statistics of one augmentation run.
#[derive(Debug, Clone, Default)]
pub struct AugmentStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Pairwise `Candidate` evaluations performed.
    pub comparisons: usize,
    /// Typed edges added.
    pub links_added: usize,
    /// Time spent embedding + clustering.
    pub embed_time: Duration,
    /// Time spent blocking + comparing.
    pub compare_time: Duration,
    /// Total wall-clock time.
    pub total_time: Duration,
}

/// Runs the augmentation loop over `g`, adding predicted edges in place.
pub fn augment(
    g: &mut CompanyGraph,
    candidates: &[&dyn CandidatePredicate],
    opts: &AugmentOptions,
) -> AugmentStats {
    let start = Instant::now();
    let mut stats = AugmentStats::default();
    // Compared pairs, per candidate: Algorithm 1 evaluates every link
    // class c for a pair, so the dedup key includes the candidate index.
    let mut seen: HashSet<(usize, u32, u32)> = HashSet::new();
    let blocker = match opts.block_count {
        Some(k) => FeatureBlocker::with_block_count(k).with_salt(opts.seed),
        None => FeatureBlocker::natural().with_salt(opts.seed),
    };

    for _round in 0..opts.max_rounds.max(1) {
        stats.rounds += 1;
        // First-level clustering (#GraphEmbedClust).
        let t0 = Instant::now();
        let assign: Vec<u32> = if opts.clusters > 1 {
            let csr = g.csr();
            let emb = node2vec(&csr, &opts.node2vec);
            kmeans(&emb, opts.clusters, 20, opts.seed)
        } else {
            vec![0; g.node_count()]
        };
        stats.embed_time += t0.elapsed();

        // Second-level blocking + candidate evaluation.
        let t1 = Instant::now();
        let mut added_this_round = 0usize;
        let mut new_links: Vec<(String, NodeId, NodeId)> = Vec::new();
        for (ci, cand) in candidates.iter().enumerate() {
            // (cluster, block) → members.
            use std::collections::HashMap;
            let mut blocks: HashMap<(u32, u64), Vec<NodeId>> = HashMap::new();
            for n in g.graph().node_ids() {
                if !cand.applies(g, n) {
                    continue;
                }
                let mut keys: Vec<u64> = cand
                    .block_keys(g, n)
                    .into_iter()
                    .map(|k| blocker.block_of(&k))
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                for key in keys {
                    blocks.entry((assign[n.index()], key)).or_default().push(n);
                }
            }
            // Enumerate the candidate pairs deterministically *before* any
            // thread runs: blocks in sorted key order, members in list
            // order, deduplicated against every earlier round. The parallel
            // fan-out below then cannot affect which pairs are compared.
            let mut keys: Vec<&(u32, u64)> = blocks.keys().collect();
            keys.sort_unstable();
            let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
            for key in keys {
                let members = &blocks[key];
                for i in 0..members.len() {
                    for j in i + 1..members.len() {
                        let (a, b) = (members[i], members[j]);
                        if seen.insert((ci, a.0.min(b.0), a.0.max(b.0))) {
                            pairs.push((a, b));
                        }
                    }
                }
            }
            stats.comparisons += pairs.len();
            // Parallel `Candidate` evaluation; decisions are pure, and the
            // in-order zip keeps `new_links` independent of thread count.
            let gref = &*g;
            let decisions =
                par::par_map_with(&pairs, opts.threads, 0, |&(a, b)| cand.decide(gref, a, b));
            for ((a, b), class) in pairs.into_iter().zip(decisions) {
                if let Some(class) = class {
                    new_links.push((class, a, b));
                }
            }
        }
        // Insert in a canonical order: block iteration is hash-ordered,
        // and edge insertion order feeds the next round's random walks —
        // sorting keeps the whole loop seed-deterministic.
        new_links.sort_unstable_by(|(c1, a1, b1), (c2, a2, b2)| (c1, a1, b1).cmp(&(c2, a2, b2)));
        for (class, a, b) in new_links {
            if g.find_link(&class, a, b).is_none() && g.find_link(&class, b, a).is_none() {
                g.add_link(&class, a, b);
                added_this_round += 1;
            }
        }
        stats.compare_time += t1.elapsed();
        stats.links_added += added_this_round;
        if added_this_round == 0 {
            break;
        }
    }
    stats.total_time = start.elapsed();
    stats
}

/// Re-evaluates only the `Candidate` pairs a change can affect: blocks
/// are rebuilt from scratch (blocking is linear and cheap — comparisons
/// are the quadratic cost), but pairs are enumerated only when at least
/// one member is in `touched`. The embedding step is skipped: re-running
/// `#GraphEmbedClust` would reshuffle blocks far away from the change, so
/// the delta pass works in the paper's "no cluster mode". One round; the
/// reinforcement loop belongs to full [`augment`] runs.
///
/// With `touched` covering every node this degenerates to a single
/// `clusters = 1` round of [`augment`] — the differential tests pin that.
pub fn augment_delta(
    g: &mut CompanyGraph,
    candidates: &[&dyn CandidatePredicate],
    touched: &[NodeId],
    opts: &AugmentOptions,
) -> AugmentStats {
    use std::collections::HashMap;

    let start = Instant::now();
    let mut stats = AugmentStats {
        rounds: 1,
        ..AugmentStats::default()
    };
    let touched_set: HashSet<NodeId> = touched.iter().copied().collect();
    if touched_set.is_empty() {
        stats.total_time = start.elapsed();
        return stats;
    }
    let blocker = match opts.block_count {
        Some(k) => FeatureBlocker::with_block_count(k).with_salt(opts.seed),
        None => FeatureBlocker::natural().with_salt(opts.seed),
    };
    let t1 = Instant::now();
    let mut new_links: Vec<(String, NodeId, NodeId)> = Vec::new();
    for cand in candidates {
        let mut blocks: HashMap<u64, Vec<NodeId>> = HashMap::new();
        for n in g.graph().node_ids() {
            if !cand.applies(g, n) {
                continue;
            }
            let mut keys: Vec<u64> = cand
                .block_keys(g, n)
                .into_iter()
                .map(|k| blocker.block_of(&k))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            for key in keys {
                blocks.entry(key).or_default().push(n);
            }
        }
        // Same deterministic enumeration as the full loop, restricted to
        // pairs with a touched member; dedup is per candidate.
        let mut keys: Vec<&u64> = blocks.keys().collect();
        keys.sort_unstable();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for key in keys {
            let members = &blocks[key];
            if !members.iter().any(|m| touched_set.contains(m)) {
                continue;
            }
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    let (a, b) = (members[i], members[j]);
                    if !touched_set.contains(&a) && !touched_set.contains(&b) {
                        continue;
                    }
                    if seen.insert((a.0.min(b.0), a.0.max(b.0))) {
                        pairs.push((a, b));
                    }
                }
            }
        }
        stats.comparisons += pairs.len();
        let gref = &*g;
        let decisions =
            par::par_map_with(&pairs, opts.threads, 0, |&(a, b)| cand.decide(gref, a, b));
        for ((a, b), class) in pairs.into_iter().zip(decisions) {
            if let Some(class) = class {
                new_links.push((class, a, b));
            }
        }
    }
    new_links.sort_unstable_by(|(c1, a1, b1), (c2, a2, b2)| (c1, a1, b1).cmp(&(c2, a2, b2)));
    for (class, a, b) in new_links {
        if g.find_link(&class, a, b).is_none() && g.find_link(&class, b, a).is_none() {
            g.add_link(&class, a, b);
            stats.links_added += 1;
        }
    }
    stats.compare_time = t1.elapsed();
    stats.total_time = start.elapsed();
    stats
}

/// The personal-connection `Candidate` (Algorithm 7): persons only,
/// blocked by home address (family members overwhelmingly share one),
/// decided by the Bayesian detector and typed by surname/age structure.
pub struct PersonLinkCandidate {
    detector: FamilyDetector,
}

impl PersonLinkCandidate {
    /// Wraps a trained detector.
    pub fn new(detector: FamilyDetector) -> Self {
        PersonLinkCandidate { detector }
    }

    /// Access to the detector.
    pub fn detector(&self) -> &FamilyDetector {
        &self.detector
    }
}

impl CandidatePredicate for PersonLinkCandidate {
    fn classes(&self) -> Vec<String> {
        vec![
            FamilyLink::PartnerOf.name().to_owned(),
            FamilyLink::SiblingOf.name().to_owned(),
            FamilyLink::ParentOf.name().to_owned(),
        ]
    }

    fn applies(&self, g: &CompanyGraph, n: NodeId) -> bool {
        g.is_person(n)
    }

    fn block_keys(&self, g: &CompanyGraph, n: NodeId) -> Vec<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Two passes: home address (partners and cohabiting family) and
        // surname phonetics (parents, siblings, married-out children).
        // The surname pass is made composite with the birth place —
        // soundex blocks of common surnames otherwise grow linearly with
        // the population and comparisons quadratically; Section 6.1 of the
        // paper recommends exactly this ("resorting to specific features,
        // for example address vicinity or geographic area, could highly
        // reduce the search space").
        let mut keys = Vec::with_capacity(2);
        if let Some(a) = g.str_prop(n, "address") {
            let mut h = DefaultHasher::new();
            ("addr", a).hash(&mut h);
            keys.push(h.finish());
        }
        if let Some(s) = g.str_prop(n, "surname") {
            let mut h = DefaultHasher::new();
            let city = g.str_prop(n, "birth_city").unwrap_or("");
            ("surname", soundex(s), city).hash(&mut h);
            keys.push(h.finish());
        }
        keys
    }

    fn decide(&self, g: &CompanyGraph, a: NodeId, b: NodeId) -> Option<String> {
        self.detector.detect(g, a, b).map(|k| k.name().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::FamilyDetectorConfig;
    use gen::company::{generate, CompanyGraphConfig};

    fn setup(persons: usize) -> (CompanyGraph, gen::company::GroundTruth, PersonLinkCandidate) {
        let out = generate(&CompanyGraphConfig {
            persons,
            companies: persons / 2,
            seed: 21,
            ..Default::default()
        });
        let g = CompanyGraph::new(out.graph);
        let det = FamilyDetector::train(&g, &out.truth, &FamilyDetectorConfig::default());
        (g, out.truth, PersonLinkCandidate::new(det))
    }

    #[test]
    fn augmentation_adds_family_links() {
        let (mut g, truth, cand) = setup(400);
        let stats = augment(
            &mut g,
            &[&cand],
            &AugmentOptions {
                clusters: 1,
                block_count: None,
                ..Default::default()
            },
        );
        assert!(stats.links_added > 0);
        let partner_links = g.links_of("PartnerOf");
        assert!(!partner_links.is_empty());
        // Recall against ground truth with natural (address) blocking.
        let predicted: std::collections::HashSet<(u32, u32)> =
            ["PartnerOf", "SiblingOf", "ParentOf"]
                .iter()
                .flat_map(|c| g.links_of(c))
                .map(|(a, b)| (a.0.min(b.0), a.0.max(b.0)))
                .collect();
        let mut hit = 0;
        let mut total = 0;
        for (a, b, _) in &truth.links {
            total += 1;
            if predicted.contains(&(a.0.min(b.0), a.0.max(b.0))) {
                hit += 1;
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.5, "recall {recall} ({hit}/{total})");
    }

    #[test]
    fn blocking_reduces_comparisons() {
        let (g, _, cand) = setup(400);
        let naive_pairs = {
            let n = g.persons().count();
            n * (n - 1) / 2
        };
        let mut g1 = g.clone();
        let stats = augment(
            &mut g1,
            &[&cand],
            &AugmentOptions {
                clusters: 1,
                block_count: None,
                max_rounds: 1,
                ..Default::default()
            },
        );
        assert!(
            stats.comparisons < naive_pairs / 5,
            "blocking should cut comparisons: {} vs {naive_pairs}",
            stats.comparisons
        );
    }

    #[test]
    fn fixed_block_count_controls_comparisons() {
        let (g, _, cand) = setup(300);
        let count_with = |k: usize| {
            let mut gg = g.clone();
            augment(
                &mut gg,
                &[&cand],
                &AugmentOptions {
                    clusters: 1,
                    block_count: Some(k),
                    max_rounds: 1,
                    ..Default::default()
                },
            )
            .comparisons
        };
        let c1 = count_with(1);
        let c10 = count_with(10);
        let c100 = count_with(100);
        assert!(c1 > c10 && c10 > c100, "{c1} > {c10} > {c100} expected");
        let n = g.persons().count();
        assert_eq!(c1, n * (n - 1) / 2, "one block = exhaustive comparison");
    }

    #[test]
    fn clustering_path_runs_end_to_end() {
        let (mut g, _, cand) = setup(200);
        let stats = augment(
            &mut g,
            &[&cand],
            &AugmentOptions {
                clusters: 4,
                block_count: Some(20),
                max_rounds: 2,
                ..Default::default()
            },
        );
        assert!(stats.rounds >= 1);
        assert!(stats.embed_time > Duration::ZERO);
    }

    #[test]
    fn delta_pass_matches_one_full_round_when_everything_is_touched() {
        let (g, _, cand) = setup(300);
        let opts = AugmentOptions {
            clusters: 1,
            max_rounds: 1,
            ..Default::default()
        };
        let mut g_full = g.clone();
        let full = augment(&mut g_full, &[&cand], &opts);
        let mut g_delta = g.clone();
        let all: Vec<NodeId> = g.graph().node_ids().collect();
        let delta = augment_delta(&mut g_delta, &[&cand], &all, &opts);
        assert_eq!(delta.comparisons, full.comparisons);
        assert_eq!(delta.links_added, full.links_added);
        for class in ["PartnerOf", "SiblingOf", "ParentOf"] {
            let mut a = g_full.links_of(class);
            let mut b = g_delta.links_of(class);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{class} links diverged");
        }
    }

    #[test]
    fn delta_pass_narrows_to_the_touched_neighborhood() {
        let (g, _, cand) = setup(300);
        let opts = AugmentOptions {
            clusters: 1,
            max_rounds: 1,
            ..Default::default()
        };
        let mut g_full = g.clone();
        let full = augment(&mut g_full, &[&cand], &opts);
        // Empty delta: nothing compared, nothing added.
        let mut g0 = g.clone();
        let none = augment_delta(&mut g0, &[&cand], &[], &opts);
        assert_eq!(none.comparisons, 0);
        assert_eq!(none.links_added, 0);
        // A single touched person only compares pairs it participates in.
        let p = g.persons().next().unwrap();
        let one = augment_delta(&mut g0, &[&cand], &[p], &opts);
        assert!(
            one.comparisons < full.comparisons,
            "{} should be well below {}",
            one.comparisons,
            full.comparisons
        );
        // Every link it did add also appears in the full pass.
        for class in ["PartnerOf", "SiblingOf", "ParentOf"] {
            for (a, b) in g0.links_of(class) {
                assert!(
                    g_full.find_link(class, a, b).is_some()
                        || g_full.find_link(class, b, a).is_some(),
                    "spurious {class} link {a:?}-{b:?}"
                );
            }
        }
    }

    #[test]
    fn rerun_is_stable() {
        let (mut g, _, cand) = setup(200);
        let opts = AugmentOptions {
            clusters: 1,
            ..Default::default()
        };
        augment(&mut g, &[&cand], &opts);
        let links_before = g.graph().edge_count();
        // A second run compares the same pairs (deterministic decisions)
        // and must not duplicate edges.
        augment(&mut g, &[&cand], &opts);
        assert_eq!(g.graph().edge_count(), links_before);
    }
}
