//! The Figure 4(e) recall protocol.
//!
//! Section 6.2 of the paper: run VADA-LINK in *no-cluster mode* to obtain
//! all theoretically possible links `S⁺`; remove a random 20% edge set `Θ`
//! of those predictions; re-run with `c` clusters on the graph containing
//! the surviving 80% (whose presence improves the embedding — the
//! reinforcement effect); report which fraction of `Θ` is recovered.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::augment::{augment, AugmentOptions, CandidatePredicate};
use crate::model::CompanyGraph;
use crate::naive::naive_augment;

/// Result of one recall measurement.
#[derive(Debug, Clone)]
pub struct RecallOutcome {
    /// Number of links predicted in no-cluster mode (the ground set).
    pub ground: usize,
    /// Number of removed links (the recovery target Θ).
    pub removed: usize,
    /// Removed links re-predicted under clustering.
    pub recovered: usize,
    /// `recovered / removed` (1.0 when nothing was removed).
    pub recall: f64,
    /// Pairwise comparisons performed by the clustered run.
    pub comparisons: usize,
}

type Link = (String, u32, u32);

fn norm(class: &str, a: u32, b: u32) -> Link {
    (class.to_owned(), a.min(b), a.max(b))
}

/// Predicts all links in no-cluster mode (the ground set `S⁺`).
pub fn ground_links(base: &CompanyGraph, cand: &dyn CandidatePredicate) -> Vec<Link> {
    let mut g = base.clone();
    naive_augment(&mut g, &[cand]);
    let mut out = Vec::new();
    for class in cand.classes() {
        for (a, b) in g.links_of(&class) {
            out.push(norm(&class, a.0, b.0));
        }
    }
    out.sort();
    out
}

/// Runs the full protocol for one cluster configuration.
///
/// `block_count` is the second-level cluster count `c`; `removal_frac` is
/// the fraction of ground links withheld (the paper uses 0.2).
pub fn recall_protocol(
    base: &CompanyGraph,
    cand: &dyn CandidatePredicate,
    ground: &[Link],
    block_count: usize,
    removal_frac: f64,
    opts: &AugmentOptions,
    seed: u64,
) -> RecallOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled: Vec<&Link> = ground.iter().collect();
    shuffled.shuffle(&mut rng);
    let n_removed = ((ground.len() as f64) * removal_frac).round() as usize;
    let (removed, kept) = shuffled.split_at(n_removed.min(shuffled.len()));
    let removed_set: HashSet<&Link> = removed.iter().copied().collect();

    // S^Θ: the base graph plus the surviving predictions as typed edges.
    let mut g = base.clone();
    for (class, a, b) in kept.iter().copied() {
        g.add_link(class, pgraph::NodeId(*a), pgraph::NodeId(*b));
    }

    let stats = augment(
        &mut g,
        &[cand],
        &AugmentOptions {
            block_count: Some(block_count),
            ..opts.clone()
        },
    );

    // Which withheld links were re-predicted?
    let mut predicted: HashSet<Link> = HashSet::new();
    for class in cand.classes() {
        for (a, b) in g.links_of(&class) {
            predicted.insert(norm(&class, a.0, b.0));
        }
    }
    let recovered = removed_set
        .iter()
        .filter(|l| predicted.contains(**l))
        .count();
    let removed_n = removed_set.len();
    RecallOutcome {
        ground: ground.len(),
        removed: removed_n,
        recovered,
        recall: if removed_n == 0 {
            1.0
        } else {
            recovered as f64 / removed_n as f64
        },
        comparisons: stats.comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::PersonLinkCandidate;
    use crate::family::{FamilyDetector, FamilyDetectorConfig};
    use gen::company::{generate, CompanyGraphConfig};

    fn setup() -> (CompanyGraph, PersonLinkCandidate) {
        let out = generate(&CompanyGraphConfig {
            persons: 300,
            companies: 150,
            seed: 31,
            ..Default::default()
        });
        let g = crate::model::CompanyGraph::new(out.graph);
        let det = FamilyDetector::train(&g, &out.truth, &FamilyDetectorConfig::default());
        (g, PersonLinkCandidate::new(det))
    }

    #[test]
    fn single_block_recovers_everything() {
        let (g, cand) = setup();
        let ground = ground_links(&g, &cand);
        assert!(!ground.is_empty());
        let opts = AugmentOptions {
            clusters: 1,
            max_rounds: 1,
            ..Default::default()
        };
        let out = recall_protocol(&g, &cand, &ground, 1, 0.2, &opts, 1);
        assert_eq!(out.recovered, out.removed, "one block = exhaustive");
        assert!((out.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn many_blocks_lose_recall() {
        let (g, cand) = setup();
        let ground = ground_links(&g, &cand);
        let opts = AugmentOptions {
            clusters: 1,
            max_rounds: 1,
            ..Default::default()
        };
        let few = recall_protocol(&g, &cand, &ground, 2, 0.2, &opts, 1);
        let many = recall_protocol(&g, &cand, &ground, 400, 0.2, &opts, 1);
        assert!(
            few.recall >= many.recall,
            "recall must not improve with more blocks: {} vs {}",
            few.recall,
            many.recall
        );
        assert!(many.comparisons < few.comparisons);
    }

    #[test]
    fn removal_fraction_respected() {
        let (g, cand) = setup();
        let ground = ground_links(&g, &cand);
        let opts = AugmentOptions {
            clusters: 1,
            max_rounds: 1,
            ..Default::default()
        };
        let out = recall_protocol(&g, &cand, &ground, 10, 0.5, &opts, 3);
        let expected = (ground.len() as f64 * 0.5).round() as usize;
        assert_eq!(out.removed, expected);
        assert_eq!(out.ground, ground.len());
    }
}

/// The Section 6.1 *feature hijack*: the paper sweeps cluster counts by
/// "altering the value of k of such n features … extracted from a discrete
/// multivariate uniform distribution", i.e. the more clusters requested,
/// the more blocking features are replaced by synthetic uniform draws.
///
/// [`HijackedCandidate`] wraps any [`CandidatePredicate`] and replaces its
/// natural blocking keys one by one as `target_blocks` crosses the
/// per-feature thresholds: below the first threshold the natural keys are
/// intact (linked pairs almost always share a block → high recall); past
/// it the first key is replaced by a per-node uniform draw; past the last
/// threshold all keys are synthetic and co-location is pure chance
/// (~1/k) — the recall collapse the paper reports beyond ~400 clusters.
#[derive(Debug)]
pub struct HijackedCandidate<'a, C: CandidatePredicate> {
    inner: &'a C,
    target_blocks: usize,
    /// Cluster-count thresholds above which the i-th natural key is
    /// replaced by a uniform draw.
    thresholds: Vec<usize>,
}

impl<'a, C: CandidatePredicate> HijackedCandidate<'a, C> {
    /// Wraps `inner` for a sweep point of `target_blocks` clusters, with
    /// the paper-calibrated thresholds (first feature hijacked past 120
    /// clusters, second past 350).
    pub fn new(inner: &'a C, target_blocks: usize) -> Self {
        HijackedCandidate {
            inner,
            target_blocks,
            thresholds: vec![120, 350],
        }
    }

    /// Overrides the hijack thresholds.
    pub fn with_thresholds(mut self, thresholds: Vec<usize>) -> Self {
        self.thresholds = thresholds;
        self
    }
}

impl<C: CandidatePredicate> CandidatePredicate for HijackedCandidate<'_, C> {
    fn classes(&self) -> Vec<String> {
        self.inner.classes()
    }

    fn applies(&self, g: &CompanyGraph, n: pgraph::NodeId) -> bool {
        self.inner.applies(g, n)
    }

    fn block_keys(&self, g: &CompanyGraph, n: pgraph::NodeId) -> Vec<u64> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut keys = self.inner.block_keys(g, n);
        for (i, key) in keys.iter_mut().enumerate() {
            let threshold = self
                .thresholds
                .get(i)
                .copied()
                .unwrap_or_else(|| *self.thresholds.last().unwrap_or(&0));
            if self.target_blocks > threshold {
                // Synthetic uniform feature: a deterministic per-node draw.
                let mut h = DefaultHasher::new();
                ("hijack", i, n.0).hash(&mut h);
                *key = h.finish();
            }
        }
        keys
    }

    fn decide(&self, g: &CompanyGraph, a: pgraph::NodeId, b: pgraph::NodeId) -> Option<String> {
        self.inner.decide(g, a, b)
    }
}

#[cfg(test)]
mod hijack_tests {
    use super::*;
    use crate::augment::PersonLinkCandidate;
    use crate::family::{FamilyDetector, FamilyDetectorConfig};
    use gen::company::{generate, CompanyGraphConfig};

    #[test]
    fn hijack_preserves_keys_below_thresholds() {
        let out = generate(&CompanyGraphConfig {
            persons: 50,
            companies: 20,
            seed: 2,
            ..Default::default()
        });
        let g = crate::model::CompanyGraph::new(out.graph);
        let det = FamilyDetector::train(&g, &out.truth, &FamilyDetectorConfig::default());
        let cand = PersonLinkCandidate::new(det);
        let p = g.persons().next().unwrap();
        let natural = cand.block_keys(&g, p);
        let low = HijackedCandidate::new(&cand, 20).block_keys(&g, p);
        assert_eq!(natural, low, "below thresholds keys are untouched");
        let mid = HijackedCandidate::new(&cand, 200).block_keys(&g, p);
        assert_ne!(natural[0], mid[0], "first key hijacked past 120");
        assert_eq!(natural[1], mid[1], "second key intact until 350");
        let high = HijackedCandidate::new(&cand, 500).block_keys(&g, p);
        assert_ne!(natural[0], high[0]);
        assert_ne!(natural[1], high[1]);
    }

    #[test]
    fn hijacked_recall_collapses_at_high_cluster_counts() {
        let out = generate(&CompanyGraphConfig {
            persons: 300,
            companies: 150,
            seed: 4,
            ..Default::default()
        });
        let g = crate::model::CompanyGraph::new(out.graph);
        let det = FamilyDetector::train(&g, &out.truth, &FamilyDetectorConfig::default());
        let cand = PersonLinkCandidate::new(det);
        let ground = ground_links(&g, &cand);
        let opts = AugmentOptions {
            clusters: 1,
            max_rounds: 1,
            ..Default::default()
        };
        let low = {
            let h = HijackedCandidate::new(&cand, 20);
            recall_protocol(&g, &h, &ground, 20, 0.2, &opts, 7)
        };
        let high = {
            let h = HijackedCandidate::new(&cand, 450);
            recall_protocol(&g, &h, &ground, 450, 0.2, &opts, 7)
        };
        assert!(
            low.recall > 0.9,
            "low cluster count keeps recall: {}",
            low.recall
        );
        assert!(
            high.recall < 0.5,
            "hijacked keys collapse recall: {}",
            high.recall
        );
    }
}
