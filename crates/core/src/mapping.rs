//! Input/output mappings between company graphs and the reasoning engine
//! (Algorithms 2 and 4 of the paper).
//!
//! The *input mapping* loads the property graph into the extensional
//! component of the knowledge graph as the relational representation of
//! Section 3:
//!
//! * `person(id)` / `company(id)` — node membership;
//! * `person_attr(id, name, surname, birth, birth_city, sex, address)`;
//! * `company_attr(id, name, address, inc_date, legal_form, sector)`;
//! * `own(x, y, w)` — shareholding with its share fraction.
//!
//! Node identifiers are the stable symbols `n<index>`; [`node_of`] and
//! [`sym_of`] convert between them and [`pgraph::NodeId`]s. The *output
//! mapping* reads derived link predicates (e.g. `control`) back into typed
//! edges of the property graph.

use datalog::{Const, Database};
use pgraph::NodeId;

use crate::model::CompanyGraph;

/// Loads the extensional component (input mapping, Algorithm 2's source
/// relations). Returns nothing: node symbols are derivable via [`sym_of`].
pub fn load_facts(g: &CompanyGraph, db: &mut Database) {
    let str_or = |g: &CompanyGraph, n: NodeId, key: &str| -> String {
        g.str_prop(n, key).unwrap_or("").to_owned()
    };
    for p in g.persons() {
        let id = format!("n{}", p.index());
        let idc = sym(db, &id);
        db.assert_fact("person", &[idc]).expect("arity");
        let tuple = [
            sym(db, &id),
            sym(db, &str_or(g, p, "name")),
            sym(db, &str_or(g, p, "surname")),
            Const::Int(g.int_prop(p, "birth").unwrap_or(0)),
            sym(db, &str_or(g, p, "birth_city")),
            sym(db, &str_or(g, p, "sex")),
            sym(db, &str_or(g, p, "address")),
        ];
        db.assert_fact("person_attr", &tuple).expect("arity");
    }
    for c in g.companies() {
        let id = format!("n{}", c.index());
        let idc = sym(db, &id);
        db.assert_fact("company", &[idc]).expect("arity");
        let tuple = [
            sym(db, &id),
            sym(db, &str_or(g, c, "name")),
            sym(db, &str_or(g, c, "address")),
            Const::Int(g.int_prop(c, "inc_date").unwrap_or(0)),
            sym(db, &str_or(g, c, "legal_form")),
            sym(db, &str_or(g, c, "sector")),
        ];
        db.assert_fact("company_attr", &tuple).expect("arity");
    }
    for e in g.share_edges() {
        let (src, dst) = g.graph().endpoints(e);
        let tuple = [
            sym(db, &format!("n{}", src.index())),
            sym(db, &format!("n{}", dst.index())),
            Const::float(g.share(e)),
        ];
        db.assert_fact("own", &tuple).expect("arity");
    }
}

fn sym(db: &mut Database, s: &str) -> Const {
    db.sym(s)
}

/// The symbol constant of a node (`n<index>`).
pub fn sym_of(db: &mut Database, n: NodeId) -> Const {
    db.sym(&format!("n{}", n.index()))
}

/// Parses a node symbol (`n<index>`) back into a [`NodeId`].
pub fn node_of(db: &Database, c: Const) -> Option<NodeId> {
    let s = db.resolve(c)?;
    let idx: u32 = s.strip_prefix('n')?.parse().ok()?;
    Some(NodeId(idx))
}

/// Reads a binary derived relation back as node pairs (output mapping,
/// Algorithm 4): tuples whose first two terms are node symbols.
pub fn read_pairs(db: &Database, pred: &str) -> Vec<(NodeId, NodeId)> {
    let Some(rel) = db.relation(pred) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for row in rel.rows() {
        if let (Some(a), Some(b)) = (node_of(db, row[0]), node_of(db, row[1])) {
            if a != b {
                out.push((a, b));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Materializes a derived relation as typed edges in the property graph
/// (the final step of the output mapping). Returns the number of edges
/// added.
pub fn materialize_links(g: &mut CompanyGraph, db: &Database, pred: &str, class: &str) -> usize {
    let pairs = read_pairs(db, pred);
    let mut added = 0usize;
    for (a, b) in pairs {
        if g.find_link(class, a, b).is_none() {
            g.add_link(class, a, b);
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_graphs::figure1;

    #[test]
    fn facts_cover_the_graph() {
        let f = figure1();
        let mut db = Database::new();
        load_facts(&f.graph, &mut db);
        assert_eq!(db.fact_count("person"), 2);
        assert_eq!(db.fact_count("company"), 8);
        assert_eq!(db.fact_count("own"), 12);
        assert_eq!(db.fact_count("person_attr"), 2);
        assert_eq!(db.fact_count("company_attr"), 8);
    }

    #[test]
    fn node_symbols_roundtrip() {
        let f = figure1();
        let mut db = Database::new();
        load_facts(&f.graph, &mut db);
        let p1 = f.node("P1");
        let c = sym_of(&mut db, p1);
        assert_eq!(node_of(&db, c), Some(p1));
        assert_eq!(node_of(&db, Const::Int(3)), None);
        let bogus = db.sym("xyz");
        assert_eq!(node_of(&db, bogus), None);
    }

    #[test]
    fn read_pairs_skips_self_and_dedups() {
        let f = figure1();
        let mut db = Database::new();
        load_facts(&f.graph, &mut db);
        let a = sym_of(&mut db, f.node("P1"));
        let b = sym_of(&mut db, f.node("C"));
        db.assert_fact("x", &[a, b]).unwrap();
        db.assert_fact("x", &[a, a]).unwrap();
        let pairs = read_pairs(&db, "x");
        assert_eq!(pairs, vec![(f.node("P1"), f.node("C"))]);
        assert!(read_pairs(&db, "missing").is_empty());
    }

    #[test]
    fn materialize_adds_typed_edges_once() {
        let mut f = figure1();
        let mut db = Database::new();
        load_facts(&f.graph, &mut db);
        let a = sym_of(&mut db, f.node("P1"));
        let b = sym_of(&mut db, f.node("C"));
        db.assert_fact("ctl", &[a, b]).unwrap();
        assert_eq!(materialize_links(&mut f.graph, &db, "ctl", "Control"), 1);
        assert_eq!(materialize_links(&mut f.graph, &db, "ctl", "Control"), 0);
        assert_eq!(f.graph.links_of("Control").len(), 1);
    }
}
