//! The example graphs of the paper's Figure 1 and Figure 2.
//!
//! These are used throughout the tests and examples as golden fixtures:
//! the paper states exactly which control and close-link edges they
//! contain (Examples 2.4 and 2.7 and the Introduction).

use std::collections::HashMap;

use pgraph::NodeId;

use crate::model::{CompanyGraph, CompanyGraphBuilder};

/// A named example graph: the graph plus a name → node map.
#[derive(Debug)]
pub struct NamedGraph {
    /// The company graph.
    pub graph: CompanyGraph,
    names: HashMap<String, NodeId>,
}

impl NamedGraph {
    /// Builds a named graph from explicit name bindings (custom fixtures).
    pub fn from_names(graph: CompanyGraph, names: HashMap<String, NodeId>) -> Self {
        NamedGraph { graph, names }
    }

    /// Node id of a named node.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn node(&self, name: &str) -> NodeId {
        self.names[name]
    }

    /// Name of a node id (reverse lookup).
    pub fn name_of(&self, n: NodeId) -> &str {
        self.names
            .iter()
            .find(|(_, &v)| v == n)
            .map(|(k, _)| k.as_str())
            .unwrap_or("?")
    }
}

/// Figure 1: persons P1, P2 and companies C…L.
///
/// Ground truth (Introduction): P1 controls C, D, E, F; P2 controls G, H,
/// I; nobody alone controls L (but {P1, P2} jointly do); G and I are
/// closely linked via P2 (>20% of both).
pub fn figure1() -> NamedGraph {
    let mut b = CompanyGraphBuilder::new();
    let mut names = HashMap::new();
    for p in ["P1", "P2"] {
        names.insert(p.to_owned(), b.person(p));
    }
    for c in ["C", "D", "E", "F", "G", "H", "I", "L"] {
        names.insert(c.to_owned(), b.company(c));
    }
    let edges = [
        ("P1", "C", 0.8),
        ("P1", "D", 0.75),
        ("D", "E", 0.4),
        ("P1", "E", 0.2),
        ("D", "F", 0.2),
        ("E", "F", 0.4),
        ("P2", "G", 0.6),
        ("G", "H", 0.6),
        ("H", "I", 0.1),
        ("P2", "I", 0.5),
        ("F", "L", 0.2),
        ("I", "L", 0.4),
    ];
    for (x, y, w) in edges {
        let (a, c) = (names[x], names[y]);
        b.share(a, c, w);
    }
    NamedGraph {
        graph: b.build(),
        names,
    }
}

/// Figure 2: persons P1, P2, P3 and companies C1…C7.
///
/// Ground truth (Examples 2.4 and 2.7): P1 controls C4 via a direct 80%
/// edge; P2 controls C7 via C5 and C6; P3 owns 40% of C4 and 50% of C6 so
/// C4 and C6 are closely linked via P3 (Def 2.6-iii); Φ(C4, C7) = 0.2 so
/// C4 and C7 are closely linked for t = 0.2 (Def 2.6-i).
pub fn figure2() -> NamedGraph {
    let mut b = CompanyGraphBuilder::new();
    let mut names = HashMap::new();
    for p in ["P1", "P2", "P3"] {
        names.insert(p.to_owned(), b.person(p));
    }
    for c in ["C1", "C2", "C3", "C4", "C5", "C6", "C7"] {
        names.insert(c.to_owned(), b.company(c));
    }
    // Shareholding structure consistent with the claims of Examples 2.4
    // and 2.7. The paper prints the figure without full edge weights; the
    // assignment below realizes exactly the stated ground truth while
    // respecting the register constraint Σ incoming shares ≤ 1 (the
    // paper's "P3 owns 40% of C4 and 50% of C6" is scaled accordingly).
    let edges: &[(&str, &str, f64)] = &[
        ("P1", "C1", 0.6),
        ("P1", "C2", 0.3),
        ("C2", "C3", 0.5),
        ("P1", "C4", 0.8), // Example 2.4: P1 controls C4 directly
        ("P3", "C4", 0.2), // paper: P3 owns 40% of C4 — scaled to fit Σ≤1
        ("P2", "C5", 0.7), // P2 controls C5
        ("C5", "C6", 0.3), // jointly with the direct 0.3 below: C6
        ("P2", "C6", 0.3),
        ("P3", "C6", 0.4), // paper: P3 owns 50% of C6 — scaled to fit Σ≤1
        ("C6", "C7", 0.4), // Φ(C4,C7) path lives through C6 in our layout
        ("C5", "C7", 0.2),
        ("C4", "C7", 0.2), // Example 2.7: Φ(C4, C7) = 0.2 (direct here)
    ];
    for (x, y, w) in edges {
        let (a, c) = (names[*x], names[*y]);
        b.share(a, c, *w);
    }
    NamedGraph {
        graph: b.build(),
        names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let f = figure1();
        assert_eq!(f.graph.persons().count(), 2);
        assert_eq!(f.graph.companies().count(), 8);
        assert_eq!(f.graph.share_edges().count(), 12);
        assert_eq!(f.name_of(f.node("P1")), "P1");
    }

    #[test]
    fn figure2_shape_and_share_caps() {
        let f = figure2();
        assert_eq!(f.graph.persons().count(), 3);
        assert_eq!(f.graph.companies().count(), 7);
        for c in f.graph.companies().collect::<Vec<_>>() {
            let total: f64 = f.graph.shareholders(c).map(|(_, w)| w).sum();
            assert!(
                total <= 1.0 + 1e-9,
                "{} oversubscribed: {total}",
                f.name_of(c)
            );
        }
    }

    #[test]
    #[should_panic]
    fn unknown_name_panics() {
        figure1().node("Zed");
    }
}
