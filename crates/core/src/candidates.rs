//! `Candidate` implementations for control and close links, completing
//! Algorithm 1 over all three of the paper's link classes.
//!
//! The paper's augmentation loop treats every link family uniformly: "the
//! predicted links can be a control relationship, a close link
//! relationship, or a family link". Family links live in
//! [`crate::augment::PersonLinkCandidate`]; this module adds:
//!
//! * [`CloseLinkCandidate`] — companies, blocked by their weak ownership
//!   component (a close link can only exist inside one — accumulated
//!   ownership needs a connecting path), decided pairwise with forward and
//!   reverse accumulated-ownership DFS (Definition 2.6, all three
//!   conditions);
//! * [`ControlCandidate`] — blocked likewise, decided via the worklist
//!   fixpoint with a per-source memo (control queries repeat sources
//!   within a block).
//!
//! Both are differentially tested against the global algorithms of
//! [`crate::closelink`] and [`crate::control`].

use std::collections::HashMap;
use std::sync::Mutex;

use pgraph::algo::{weakly_connected_components, PathLimits};
use pgraph::NodeId;

use crate::augment::CandidatePredicate;
use crate::closelink::{accumulated_from, accumulated_into};
use crate::control::controls;
use crate::model::CompanyGraph;

/// Pairwise close-link predicate (Definition 2.6).
pub struct CloseLinkCandidate {
    threshold: f64,
    limits: PathLimits,
    /// Weak-component id per node, computed over the base shareholding
    /// graph at construction (derived links added later cannot *create*
    /// accumulated ownership, so the blocking stays sound).
    component: Vec<u32>,
}

impl CloseLinkCandidate {
    /// Builds the candidate for threshold `t` over the graph's current
    /// shareholding structure.
    pub fn new(g: &CompanyGraph, t: f64, limits: PathLimits) -> Self {
        let wcc = weakly_connected_components(&g.csr());
        CloseLinkCandidate {
            threshold: t,
            limits,
            component: wcc.component,
        }
    }
}

impl CandidatePredicate for CloseLinkCandidate {
    fn classes(&self) -> Vec<String> {
        vec!["CloseLink".to_owned()]
    }

    fn applies(&self, g: &CompanyGraph, n: NodeId) -> bool {
        g.is_company(n)
    }

    fn block_keys(&self, _g: &CompanyGraph, n: NodeId) -> Vec<u64> {
        vec![self.component.get(n.index()).copied().unwrap_or(0) as u64]
    }

    fn decide(&self, g: &CompanyGraph, a: NodeId, b: NodeId) -> Option<String> {
        let t = self.threshold;
        // Conditions (i)/(ii): accumulated ownership either way.
        let up_a = accumulated_into(g, a, self.limits);
        if up_a.get(&b).copied().unwrap_or(0.0) >= t {
            return Some("CloseLink".to_owned());
        }
        let up_b = accumulated_into(g, b, self.limits);
        if up_b.get(&a).copied().unwrap_or(0.0) >= t {
            return Some("CloseLink".to_owned());
        }
        // Condition (iii): common third party owning ≥ t of both.
        let found = up_a
            .iter()
            .any(|(z, &v)| v >= t && up_b.get(z).copied().unwrap_or(0.0) >= t);
        found.then(|| "CloseLink".to_owned())
    }
}

/// Pairwise company-control predicate (Definition 2.3) with a per-source
/// memo of the worklist fixpoint. The memo sits behind a `Mutex` — decide
/// runs on [`par`] scoped threads — and only caches a pure function of the
/// graph, so the cache state never affects results.
pub struct ControlCandidate {
    component: Vec<u32>,
    memo: Mutex<HashMap<NodeId, Vec<NodeId>>>,
}

impl ControlCandidate {
    /// Builds the candidate over the graph's current structure.
    pub fn new(g: &CompanyGraph) -> Self {
        let wcc = weakly_connected_components(&g.csr());
        ControlCandidate {
            component: wcc.component,
            memo: Mutex::new(HashMap::new()),
        }
    }

    fn controlled_by(&self, g: &CompanyGraph, x: NodeId) -> Vec<NodeId> {
        if let Some(c) = self.memo.lock().unwrap().get(&x) {
            return c.clone();
        }
        // Compute outside the lock: two threads may race to fill the same
        // entry, but `controls` is pure, so both write the same value.
        let c = controls(g, x);
        self.memo.lock().unwrap().insert(x, c.clone());
        c
    }
}

impl CandidatePredicate for ControlCandidate {
    fn classes(&self) -> Vec<String> {
        vec!["Control".to_owned()]
    }

    fn applies(&self, g: &CompanyGraph, n: NodeId) -> bool {
        // Controllers can be persons or companies; only shareholders can
        // control anything.
        g.graph().out_degree(n) > 0 || g.is_company(n)
    }

    fn block_keys(&self, _g: &CompanyGraph, n: NodeId) -> Vec<u64> {
        vec![self.component.get(n.index()).copied().unwrap_or(0) as u64]
    }

    fn decide(&self, g: &CompanyGraph, a: NodeId, b: NodeId) -> Option<String> {
        // Control is directed; Algorithm 1 compares unordered pairs, so
        // check both directions (the augmentation loop stores the edge in
        // the direction returned here — a → b).
        if g.is_company(b) && self.controlled_by(g, a).contains(&b) {
            return Some("Control".to_owned());
        }
        // The reverse direction is recorded as its own edge on a later
        // comparison of (b, a) — the loop normalizes pairs, so report it
        // here with the control class regardless of orientation.
        if g.is_company(a) && self.controlled_by(g, b).contains(&a) {
            return Some("Control".to_owned());
        }
        None
    }
}

/// Φ-based view used by tests.
#[allow(unused)]
fn phi(g: &CompanyGraph, x: NodeId, y: NodeId, limits: PathLimits) -> f64 {
    accumulated_from(g, x, limits)
        .get(&y)
        .copied()
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{augment, AugmentOptions};
    use crate::closelink::close_links;
    use crate::control::all_control;
    use crate::paper_graphs::{figure1, figure2};
    use gen::company::{generate, CompanyGraphConfig};

    const LIM: PathLimits = PathLimits {
        max_len: 32,
        max_paths: 1_000_000,
    };

    fn unordered(pairs: Vec<(NodeId, NodeId)>) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = pairs
            .into_iter()
            .map(|(a, b)| (a.0.min(b.0), a.0.max(b.0)))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn close_link_candidate_matches_global_on_figures() {
        for f in [figure1(), figure2()] {
            let cand = CloseLinkCandidate::new(&f.graph, 0.2, LIM);
            let mut g = f.graph.clone();
            augment(
                &mut g,
                &[&cand],
                &AugmentOptions {
                    clusters: 1,
                    max_rounds: 1,
                    ..Default::default()
                },
            );
            let via_loop = unordered(g.links_of("CloseLink"));
            let global = unordered(
                close_links(&f.graph, 0.2, LIM)
                    .into_iter()
                    .map(|l| (l.x, l.y))
                    .collect(),
            );
            assert_eq!(via_loop, global);
        }
    }

    #[test]
    fn control_candidate_matches_global_on_generated_graph() {
        let out = generate(&CompanyGraphConfig {
            persons: 200,
            companies: 120,
            seed: 19,
            ..Default::default()
        });
        let base = crate::model::CompanyGraph::new(out.graph);
        let cand = ControlCandidate::new(&base);
        let mut g = base.clone();
        augment(
            &mut g,
            &[&cand],
            &AugmentOptions {
                clusters: 1,
                max_rounds: 1,
                ..Default::default()
            },
        );
        let via_loop = unordered(g.links_of("Control"));
        let global = unordered(all_control(&base));
        assert_eq!(via_loop, global);
    }

    #[test]
    fn component_blocking_never_loses_close_links() {
        // All close links live within a weak component: blocking by WCC id
        // is lossless (unlike feature blocking for family links).
        let out = generate(&CompanyGraphConfig {
            persons: 200,
            companies: 150,
            seed: 23,
            ..Default::default()
        });
        let base = crate::model::CompanyGraph::new(out.graph);
        let cand = CloseLinkCandidate::new(&base, 0.2, LIM);
        let mut g = base.clone();
        let stats = augment(
            &mut g,
            &[&cand],
            &AugmentOptions {
                clusters: 1,
                max_rounds: 1,
                ..Default::default()
            },
        );
        let n_companies = base.companies().count();
        assert!(
            stats.comparisons < n_companies * (n_companies - 1) / 2,
            "blocking must prune cross-component pairs"
        );
        let via_loop = unordered(g.links_of("CloseLink"));
        let global = unordered(
            close_links(&base, 0.2, LIM)
                .into_iter()
                .map(|l| (l.x, l.y))
                .collect(),
        );
        assert_eq!(via_loop, global, "WCC blocking is lossless");
    }
}

#[cfg(test)]
mod multi_candidate_tests {
    use super::*;
    use crate::augment::{augment, AugmentOptions};
    use crate::closelink::close_links;
    use crate::paper_graphs::figure1;

    const LIM: PathLimits = PathLimits {
        max_len: 32,
        max_paths: 1_000_000,
    };

    #[test]
    fn candidates_do_not_starve_each_other() {
        // Regression: the comparison dedup must be per link class — with a
        // shared pair set, whichever candidate runs first consumes the
        // company pairs and the close-link class finds nothing.
        let f = figure1();
        let control = ControlCandidate::new(&f.graph);
        let close = CloseLinkCandidate::new(&f.graph, 0.2, LIM);
        let mut g = f.graph.clone();
        augment(
            &mut g,
            &[&control, &close],
            &AugmentOptions {
                clusters: 1,
                max_rounds: 1,
                ..Default::default()
            },
        );
        assert!(!g.links_of("Control").is_empty());
        let expected = close_links(&f.graph, 0.2, LIM).len();
        assert_eq!(g.links_of("CloseLink").len(), expected);
    }
}
