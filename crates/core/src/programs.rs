//! The paper's Vadalog programs (Algorithms 2–9) and their runners.
//!
//! Each program is a constant in the surface syntax of the [`datalog`]
//! crate, plus a convenience runner that loads a [`CompanyGraph`], executes
//! the engine and reads the derived links back. The runners are
//! differentially tested against the native algorithms of
//! [`crate::control`] and [`crate::closelink`]. The paper argues (Section
//! 5) that 20–30 lines of Vadalog replace 1k+ lines of imperative code —
//! these constants are those lines.

use datalog::{Const, Database, DiagCode, Engine, Program};
use pgraph::NodeId;

use crate::family::FamilyDetector;
use crate::mapping::{load_facts, read_pairs};
use crate::model::CompanyGraph;

/// Company control (Algorithm 5): `x` controls itself; whenever the
/// companies `z` controlled by `x` jointly own more than half of `y`, `x`
/// controls `y`. The `msum` groups per `(x, y)` head with contributor `z`.
pub const CONTROL_PROGRAM: &str = r#"
@output("control").
control(X, X) :- company(X).
control(X, X) :- person(X).
control(X, Y) :- control(X, Z), own(Z, Y, W), Z != Y, X != Y, msum(W, <Z>) > 0.5.
"#;

/// Accumulated ownership and close links (Algorithm 6). `AccOwn` is the
/// recursive walk-sum with monotonic summation (contributors: the direct
/// edge, or the intermediate `z`); rules (3)–(5) derive the close-link
/// candidates for the threshold in the `th/1` fact.
pub const CLOSELINK_PROGRAM: &str = r#"
@output("close_link").
acc_own(X, Y, V) :- own(X, Y, W), X != Y, V = msum(W, <X, Y>).
acc_own(X, Y, V) :- own(X, Z, W1), Z != X, acc_own(Z, Y, W2), Y != X, V = msum(W1 * W2, <Z>).
close_link(X, Y) :- acc_own(X, Y, V), company(X), company(Y), th(T), V >= T.
close_link(X, Y) :- close_link(Y, X).
close_link(X, Y) :- acc_own(Z, X, V), acc_own(Z, Y, W), company(X), company(Y),
                    X != Y, Z != X, Z != Y, th(T), V >= T, W >= T.
"#;

/// Family control (Algorithm 8): a family `F` (membership in `member/2`)
/// controls what its members control individually, plus everything the
/// family's joint holdings — via controlled companies (rule 2) and via
/// members' direct shares (rule 3) — push over 50%. Rules 2 and 3 share
/// one monotonic total per `(F, y)` pair, as the paper prescribes.
pub const FAMILY_CONTROL_PROGRAM: &str = r#"
@output("fcontrol").
fcontrol(F, Y) :- member(F, X), control(X, Y), X != Y.
fcontrol(F, Y) :- fcontrol(F, X), own(X, Y, W), X != Y, msum(W, <X>) > 0.5.
fcontrol(F, Y) :- member(F, I), own(I, Y, W), msum(W, <I>) > 0.5.
"#;

/// Family close links (Algorithm 9 / Definition 2.9): companies `x`, `y`
/// are close-linked when two *different* members `i ≠ j` of a family both
/// accumulate at least the threshold in them. Combined with the close-link
/// program for `acc_own`.
pub const FAMILY_CLOSELINK_PROGRAM: &str = r#"
@output("f_close_link").
f_close_link(X, Y) :- member(F, I), member(F, J), I != J,
                      acc_own(I, X, V), acc_own(J, Y, W),
                      company(X), company(Y), X != Y,
                      th(T), V >= T, W >= T.
f_close_link(X, Y) :- f_close_link(Y, X).
"#;

/// Personal links (Algorithm 7): two distinct persons are `partner_of`
/// candidates when the externally computed `#linkprob` exceeds 0.5. The
/// function receives both persons' feature vectors.
pub const PARTNER_PROGRAM: &str = r#"
@output("person_link").
person_link(X, Y) :-
    person_attr(X, N1, S1, B1, BC1, SX1, A1),
    person_attr(Y, N2, S2, B2, BC2, SX2, A2),
    X != Y,
    #linkprob(N1, S1, B1, BC1, A1, N2, S2, B2, BC2, A2) > 0.5.
"#;

/// The generic-graph pipeline: input mapping (Algorithm 2) promoting the
/// source relations into generic `node`/`node_type`/`link`/`edge_type`
/// facts with Skolem-invented OIDs, the control logic over generic links,
/// and the output mapping (Algorithm 4) back to `g_control`.
pub const GENERIC_PIPELINE_PROGRAM: &str = r#"
@output("g_control").
% ---- Algorithm 2: input mapping ------------------------------------
% One Skolem-invented OID per node; determinism makes links line up with
% nodes regardless of rule application order (the paper's observation).
node(Z, N), node_type(Z, "Company") :- company_attr(N, _, _, _, _, _), Z = #sk_node(N).
node(Z, N), node_type(Z, "Person")  :- person_attr(N, _, _, _, _, _, _), Z = #sk_node(N).
link(E, X2, Y2, W), edge_type(E, "Shareholding") :-
    own(X, Y, W), X2 = #sk_node(X), Y2 = #sk_node(Y), E = #sk_edge(X, Y, W).
% ---- Algorithm 5 over generic constructs ---------------------------
g_ctl(Z, Z) :- node(Z, _).
g_ctl(X, Y) :- g_ctl(X, Z), link(E, Z, Y, W), edge_type(E, "Shareholding"),
               Z != Y, X != Y, msum(W, <Z>) > 0.5.
% ---- Algorithm 4: output mapping -----------------------------------
g_control(NX, NY) :- g_ctl(X, Y), X != Y, node(X, NX), node(Y, NY).
"#;

/// Deliberately broken variants of the bundled programs, one per analyzer
/// family: `(name, source, code)` where `name` is a stable slug (the golden
/// `check`-output snapshots are keyed by it) and `code` is the diagnostic
/// the strict analyzer must report. These double as the fixture set for the
/// span audit: every diagnostic the analyzer emits for them must carry a
/// real source span.
pub const BROKEN_VARIANTS: [(&str, &str, DiagCode); 6] = [
    (
        // Head var never bound (misspelled join var).
        "control_unbound_head",
        "@output(\"control\").\n\
         control(X, Y) :- company(X).",
        DiagCode::V002,
    ),
    (
        // acc_own used with two different arities.
        "closelink_arity_mismatch",
        "@output(\"close_link\").\n\
         acc_own(X, Y, V) :- own(X, Y, W), X != Y, V = msum(W, <X, Y>).\n\
         close_link(X, Y) :- acc_own(X, Y), th(T).",
        DiagCode::V006,
    ),
    (
        // Negation through the predicate's own recursion.
        "family_control_unstratified",
        "@output(\"fcontrol\").\n\
         fcontrol(F, Y) :- member(F, X), control(X, Y).\n\
         fcontrol(F, Y) :- fcontrol(F, X), own(X, Y, W), not fcontrol(F, Y).",
        DiagCode::V005,
    ),
    (
        // Unbound variable under negation.
        "family_closelink_unsafe_negation",
        "@output(\"f_close_link\").\n\
         f_close_link(X, Y) :- company(X), company(Y), not acc_own(X, Y, V).",
        DiagCode::V001,
    ),
    (
        // Aggregate not the last body literal.
        "partner_aggregate_not_last",
        "@output(\"person_link\").\n\
         person_link(X, V) :- person_attr(X, N, S, B, BC, SX, A),\n\
         V = msum(B, <X>), person_attr(X, N, S, B, BC, SX, A).",
        DiagCode::V014,
    ),
    (
        // @post column beyond the predicate arity.
        "generic_post_out_of_range",
        "@output(\"g_control\").\n\
         @post(\"g_control\", \"max(7)\").\n\
         g_control(X, Y) :- g_ctl(X, Y).",
        DiagCode::V008,
    ),
];

/// Runs the control program; returns `(x, y)` control pairs, `x ≠ y`.
pub fn run_control(g: &CompanyGraph) -> Vec<(NodeId, NodeId)> {
    let program = Program::parse(CONTROL_PROGRAM).expect("valid program");
    let engine = Engine::new(&program).expect("compiles");
    let mut db = Database::new();
    load_facts(g, &mut db);
    engine.run(&mut db).expect("fixpoint");
    read_pairs(&db, "control")
}

/// Runs the close-link program with threshold `t`; returns unordered pairs
/// reported once with `x < y`.
pub fn run_close_links(g: &CompanyGraph, t: f64) -> Vec<(NodeId, NodeId)> {
    let program = Program::parse(CLOSELINK_PROGRAM).expect("valid program");
    let engine = Engine::new(&program).expect("compiles");
    let mut db = Database::new();
    load_facts(g, &mut db);
    db.assert_fact("th", &[Const::float(t)]).expect("arity");
    engine.run(&mut db).expect("fixpoint");
    let mut pairs: Vec<(NodeId, NodeId)> = read_pairs(&db, "close_link")
        .into_iter()
        .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Runs the family-control program for families given as
/// `(family id, members)`; returns `(family id, controlled company)`.
pub fn run_family_control(
    g: &CompanyGraph,
    families: &[(String, Vec<NodeId>)],
) -> Vec<(String, NodeId)> {
    let src = format!("{CONTROL_PROGRAM}\n{FAMILY_CONTROL_PROGRAM}");
    let program = Program::parse(&src).expect("valid program");
    let engine = Engine::new(&program).expect("compiles");
    let mut db = Database::new();
    load_facts(g, &mut db);
    for (fid, members) in families {
        for m in members {
            let f = db.sym(fid);
            let ms = crate::mapping::sym_of(&mut db, *m);
            db.assert_fact("member", &[f, ms]).expect("arity");
        }
    }
    engine.run(&mut db).expect("fixpoint");
    let Some(rel) = db.relation("fcontrol") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for row in rel.rows() {
        let fid = db.resolve(row[0]).unwrap_or("?").to_owned();
        if let Some(y) = crate::mapping::node_of(&db, row[1]) {
            // Exclude members themselves (the program reports only
            // companies because members are persons, but be explicit).
            if g.is_company(y) {
                out.push((fid, y));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Runs the family close-link program (Algorithms 6 + 9) for the given
/// families and threshold; returns unordered company pairs with `x < y`.
pub fn run_family_close_links(
    g: &CompanyGraph,
    families: &[(String, Vec<NodeId>)],
    t: f64,
) -> Vec<(NodeId, NodeId)> {
    let src = format!(
        "{CLOSELINK_PROGRAM}
{FAMILY_CLOSELINK_PROGRAM}"
    );
    let program = Program::parse(&src).expect("valid program");
    let engine = Engine::new(&program).expect("compiles");
    let mut db = Database::new();
    load_facts(g, &mut db);
    db.assert_fact("th", &[Const::float(t)]).expect("arity");
    for (fid, members) in families {
        for m in members {
            let f = db.sym(fid);
            let ms = crate::mapping::sym_of(&mut db, *m);
            db.assert_fact("member", &[f, ms]).expect("arity");
        }
    }
    engine.run(&mut db).expect("fixpoint");
    let mut pairs: Vec<(NodeId, NodeId)> = read_pairs(&db, "f_close_link")
        .into_iter()
        .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Runs the personal-link program (Algorithm 7) with `#linkprob` bound to
/// a trained [`FamilyDetector`]. Returns unordered person pairs.
///
/// Note: this is the *unblocked* variant — every person pair is compared,
/// which is exactly the quadratic blow-up the clustering of Algorithm 3
/// avoids; see [`mod@crate::augment`] for the scalable path.
pub fn run_person_links(g: &CompanyGraph, detector: &FamilyDetector) -> Vec<(NodeId, NodeId)> {
    use linkage::distance::normalized_levenshtein;

    let program = Program::parse(PARTNER_PROGRAM).expect("valid program");
    let mut engine = Engine::new(&program).expect("compiles");
    let model = detector.model().clone();
    engine.register_function("linkprob", move |ctx, args| {
        if args.len() != 10 {
            return Err(format!("expected 10 args, got {}", args.len()));
        }
        let s = |i: usize| ctx.str_of(args[i]).unwrap_or("").to_owned();
        let exact = |a: &str, b: &str| -> Option<f64> {
            if a.is_empty() || b.is_empty() {
                None
            } else {
                Some(if a == b { 0.0 } else { 1.0 })
            }
        };
        // Argument order matches mapping::load_facts person_attr layout:
        // (name, surname, birth, birth_city, address) per person.
        let d_surname = if s(1).is_empty() || s(6).is_empty() {
            None
        } else {
            Some(normalized_levenshtein(&s(1), &s(6)))
        };
        let birth = match (args[2].as_i64(), args[7].as_i64()) {
            (Some(a), Some(b)) if a != 0 && b != 0 => {
                Some(crate::family::kinship_gap_distance(a, b))
            }
            _ => None,
        };
        let d_bcity = exact(&s(3), &s(8));
        let d_addr = exact(&s(4), &s(9));
        // Model feature order: surname, address, birth, birth_city.
        let p = model.link_probability(&[d_surname, d_addr, birth, d_bcity]);
        Ok(Const::float(p))
    });
    let mut db = Database::new();
    load_facts(g, &mut db);
    engine.run(&mut db).expect("fixpoint");
    let mut pairs: Vec<(NodeId, NodeId)> = read_pairs(&db, "person_link")
        .into_iter()
        .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Renders the engine's cost-based join-plan report
/// ([`Engine::plan_report`]) for a program against the facts of `g`:
/// per stratum and rule, the chosen literal order, probe keys and
/// estimated cardinalities. `threshold` additionally loads the close-link
/// `th` fact so threshold-dependent plans see realistic statistics.
pub fn plan_report(src: &str, g: &CompanyGraph, threshold: Option<f64>) -> String {
    let program = Program::parse(src).expect("valid program");
    let engine = Engine::new(&program).expect("compiles");
    let mut db = Database::new();
    load_facts(g, &mut db);
    if let Some(t) = threshold {
        db.assert_fact("th", &[Const::float(t)]).expect("arity");
    }
    engine.plan_report(&db).expect("plan report")
}

/// Runs the generic (schema-independent) pipeline; returns control pairs.
pub fn run_generic_control(g: &CompanyGraph) -> Vec<(NodeId, NodeId)> {
    let program = Program::parse(GENERIC_PIPELINE_PROGRAM).expect("valid program");
    let engine = Engine::new(&program).expect("compiles");
    let mut db = Database::new();
    load_facts(g, &mut db);
    engine.run(&mut db).expect("fixpoint");
    read_pairs(&db, "g_control")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closelink::{close_links, CloseLink};
    use crate::control::{all_control, family_control};
    use crate::paper_graphs::{figure1, figure2};
    use pgraph::algo::PathLimits;

    const BUNDLED: [(&str, &str); 6] = [
        ("control", CONTROL_PROGRAM),
        ("closelink", CLOSELINK_PROGRAM),
        ("family_control", FAMILY_CONTROL_PROGRAM),
        ("family_closelink", FAMILY_CLOSELINK_PROGRAM),
        ("partner", PARTNER_PROGRAM),
        ("generic", GENERIC_PIPELINE_PROGRAM),
    ];

    #[test]
    fn bundled_programs_are_clean() {
        // Every bundled program must survive the strict analyzer profile
        // (the one `vadalink check` uses) with zero error-level
        // diagnostics, and stay in the warded fragment — the paper's PTIME
        // guarantee (Section 4.4) applies only inside it, so a V012
        // warning is as much a regression here as an error.
        for (name, src) in BUNDLED {
            let program = datalog::Program::parse(src).unwrap();
            let analysis = datalog::analyze_with(&program, &datalog::AnalysisConfig::strict());
            assert!(
                analysis.is_clean(),
                "{name} program has analyzer errors:\n{}",
                analysis.render(src)
            );
            assert!(
                !analysis
                    .diagnostics
                    .iter()
                    .any(|d| d.code == datalog::DiagCode::V012),
                "{name} program left the warded fragment:\n{}",
                analysis.render(src)
            );
            let report = datalog::check_warded(&program);
            assert!(report.is_warded(), "{name}: {:?}", report.violations);
        }
    }

    #[test]
    fn broken_program_variants_are_rejected() {
        // One deliberately broken variant per bundled program, each
        // tripping a different analyzer code. The engine must also refuse
        // to compile them under the strict profile.
        for (name, src, code) in BROKEN_VARIANTS {
            let program = datalog::Program::parse(src).unwrap();
            let analysis = datalog::analyze_with(&program, &datalog::AnalysisConfig::strict());
            assert!(
                analysis.errors().any(|d| d.code == code),
                "{name}: expected {code}, got:\n{}",
                analysis.render(src)
            );
            let opts = datalog::EngineOptions {
                analysis: datalog::AnalysisConfig::strict(),
                ..Default::default()
            };
            let err = Engine::with(&program, datalog::FunctionRegistry::default(), opts)
                .expect_err("broken variant must not compile");
            assert!(
                matches!(err, datalog::DatalogError::Analysis(_)),
                "{name}: expected an Analysis error, got {err:?}"
            );
        }
    }

    #[test]
    fn control_program_matches_native_on_figure1() {
        let f = figure1();
        let datalog: Vec<_> = run_control(&f.graph);
        let mut native = all_control(&f.graph);
        native.sort_unstable();
        assert_eq!(datalog, native);
    }

    #[test]
    fn control_program_matches_native_on_figure2() {
        let f = figure2();
        let datalog = run_control(&f.graph);
        let mut native = all_control(&f.graph);
        native.sort_unstable();
        assert_eq!(datalog, native);
    }

    #[test]
    fn generic_pipeline_matches_direct_program() {
        let f = figure1();
        let generic = run_generic_control(&f.graph);
        let direct = run_control(&f.graph);
        assert_eq!(generic, direct);
    }

    #[test]
    fn close_link_program_matches_native_on_dags() {
        // Figure 1/2 are DAGs, so the walk-sum Datalog semantics coincides
        // with the exact simple-path semantics.
        for f in [figure1(), figure2()] {
            let datalog = run_close_links(&f.graph, 0.2);
            let mut native: Vec<(NodeId, NodeId)> =
                close_links(&f.graph, 0.2, PathLimits::default())
                    .into_iter()
                    .map(|CloseLink { x, y, .. }| (x, y))
                    .collect();
            native.sort_unstable();
            assert_eq!(datalog, native);
        }
    }

    #[test]
    fn family_close_link_program_matches_native() {
        let f = figure1();
        let members = vec![f.node("P1"), f.node("P2")];
        let datalog = run_family_close_links(&f.graph, &[("fam".to_owned(), members.clone())], 0.2);
        let native =
            crate::closelink::family_close_links(&f.graph, &members, 0.2, PathLimits::default());
        assert_eq!(datalog, native);
        let dg = (f.node("D").min(f.node("G")), f.node("D").max(f.node("G")));
        assert!(datalog.contains(&dg), "the Introduction's D-G example");
    }

    #[test]
    fn family_control_program_matches_native() {
        let f = figure1();
        let members = vec![f.node("P1"), f.node("P2")];
        let datalog = run_family_control(&f.graph, &[("fam".to_owned(), members.clone())]);
        let native = family_control(&f.graph, &members);
        let datalog_companies: Vec<NodeId> = datalog
            .into_iter()
            .filter(|(fid, _)| fid == "fam")
            .map(|(_, y)| y)
            .collect();
        // Datalog's rule 1 also includes companies controlled by single
        // members; the native group fixpoint contains those too.
        assert_eq!(datalog_companies, native);
        assert!(
            datalog_companies.contains(&f.node("L")),
            "family controls L"
        );
    }
}
