//! The knowledge-graph facade — the paper's *reasoning API* (Section 5).
//!
//! The VADA-LINK architecture stores the property graph (the extensional
//! component), keeps the Vadalog rule sets in a repository, and lets
//! enterprise applications interact with the KG through a reasoning API.
//! [`KnowledgeGraph`] is that API: it owns the company graph, runs the
//! intensional programs on demand, materializes the derived links back
//! into the graph (output mapping), and — when provenance is enabled —
//! explains any derived fact with its derivation tree.

use std::fmt;

use datalog::{
    explain::Derivation, ChangeSet, Const, Database, DatalogError, Engine, EngineOptions,
    FunctionRegistry, IncrementalEngine, Program, Update, UpdateStats,
};
use pgraph::NodeId;

use self::error_free::sym_pair;
use crate::augment::{augment, augment_delta, AugmentOptions, AugmentStats, CandidatePredicate};
use crate::mapping::{load_facts, materialize_links, node_of};
use crate::model::CompanyGraph;
use crate::programs::{CLOSELINK_PROGRAM, CONTROL_PROGRAM};

/// Hidden re-export point for small helpers (keeps `kg` self-contained).
pub(crate) mod error_free {
    use datalog::{Const, Database};
    use pgraph::NodeId;

    /// Symbols of a node pair.
    pub fn sym_pair(db: &mut Database, a: NodeId, b: NodeId) -> (Const, Const) {
        (crate::mapping::sym_of(db, a), crate::mapping::sym_of(db, b))
    }
}

/// Edge label of derived control links.
pub const CONTROL_LINK: &str = "Control";
/// Edge label of derived close links.
pub const CLOSE_LINK: &str = "CloseLink";

/// One edit of the ownership layer: set (insert or change) or remove a
/// shareholding edge.
#[derive(Debug, Clone, Copy)]
pub struct OwnershipChange {
    /// The shareholder.
    pub owner: NodeId,
    /// The owned company.
    pub company: NodeId,
    /// `Some(w)` sets the share fraction to `w`; `None` removes the
    /// holding.
    pub share: Option<f64>,
}

impl OwnershipChange {
    /// Sets (inserts or updates) the holding `owner → company` to `w`.
    pub fn set(owner: NodeId, company: NodeId, w: f64) -> Self {
        OwnershipChange {
            owner,
            company,
            share: Some(w),
        }
    }

    /// Removes the holding `owner → company`.
    pub fn remove(owner: NodeId, company: NodeId) -> Self {
        OwnershipChange {
            owner,
            company,
            share: None,
        }
    }
}

/// Net effect of an update on one derived link class.
#[derive(Debug, Clone, Default)]
pub struct LinkDiff {
    /// Pairs whose link was derived by the update.
    pub added: Vec<(NodeId, NodeId)>,
    /// Pairs whose link lost all derivations.
    pub removed: Vec<(NodeId, NodeId)>,
}

/// Result of [`KnowledgeGraph::apply_ownership_changes`]: the link diffs
/// already materialized into the graph, plus the nodes an augmentation
/// delta pass should re-examine.
#[derive(Debug, Default)]
pub struct KgUpdate {
    /// `Control` edge changes.
    pub control: LinkDiff,
    /// `CloseLink` edge changes.
    pub close_links: LinkDiff,
    /// Nodes incident to a changed ownership edge — feed these to
    /// [`KnowledgeGraph::augment_changed`] to re-evaluate only the
    /// affected `Candidate` pairs.
    pub touched: Vec<NodeId>,
    /// Propagation statistics of the control session.
    pub control_stats: UpdateStats,
    /// Propagation statistics of the close-link session.
    pub closelink_stats: UpdateStats,
}

/// A company knowledge graph: extensional property graph + on-demand
/// intensional reasoning.
pub struct KnowledgeGraph {
    graph: CompanyGraph,
    provenance: bool,
    /// Databases of the last run per program, kept for explanations.
    control_db: Option<Database>,
    closelink_db: Option<Database>,
    /// Incremental maintenance sessions (opened by
    /// [`KnowledgeGraph::track_changes`]).
    control_session: Option<IncrementalEngine>,
    closelink_session: Option<IncrementalEngine>,
}

impl fmt::Debug for KnowledgeGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KnowledgeGraph")
            .field("graph", &self.graph)
            .field("provenance", &self.provenance)
            .field("tracking", &self.control_session.is_some())
            .finish()
    }
}

impl KnowledgeGraph {
    /// Wraps a company graph.
    pub fn new(graph: CompanyGraph) -> Self {
        KnowledgeGraph {
            graph,
            provenance: false,
            control_db: None,
            closelink_db: None,
            control_session: None,
            closelink_session: None,
        }
    }

    /// Enables provenance recording (needed for explanations).
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// The extensional component.
    pub fn graph(&self) -> &CompanyGraph {
        &self.graph
    }

    /// Mutable access (invalidates previous derivations' databases and
    /// any open incremental sessions — arbitrary mutation can bypass
    /// them; use [`KnowledgeGraph::apply_ownership_changes`] to keep
    /// sessions live).
    pub fn graph_mut(&mut self) -> &mut CompanyGraph {
        self.control_db = None;
        self.closelink_db = None;
        self.control_session = None;
        self.closelink_session = None;
        &mut self.graph
    }

    /// Adds a person node without invalidating open incremental sessions.
    /// The node joins the reasoning state with its first ownership change.
    pub fn add_person(&mut self, name: &str) -> NodeId {
        let n = self.graph.graph_mut().add_node(crate::model::PERSON);
        self.graph
            .graph_mut()
            .set_node_prop(n, "name", pgraph::Value::from(name));
        n
    }

    /// Adds a company node without invalidating open incremental sessions.
    /// The node joins the reasoning state with its first ownership change.
    pub fn add_company(&mut self, name: &str) -> NodeId {
        let n = self.graph.graph_mut().add_node(crate::model::COMPANY);
        self.graph
            .graph_mut()
            .set_node_prop(n, "name", pgraph::Value::from(name));
        n
    }

    fn engine(&self, src: &str) -> Engine {
        let program = Program::parse(src).expect("bundled programs are valid");
        let opts = EngineOptions {
            provenance: self.provenance,
            ..Default::default()
        };
        Engine::with(&program, FunctionRegistry::default(), opts).expect("bundled programs compile")
    }

    /// Derives company control (Algorithm 5) and materializes `Control`
    /// edges. Returns the number of new edges.
    pub fn derive_control(&mut self) -> usize {
        let engine = self.engine(CONTROL_PROGRAM);
        let mut db = Database::new();
        load_facts(&self.graph, &mut db);
        engine.run(&mut db).expect("fixpoint");
        let added = materialize_links(&mut self.graph, &db, "control", CONTROL_LINK);
        self.control_db = Some(db);
        added
    }

    /// Derives close links (Algorithm 6) at threshold `t` and materializes
    /// `CloseLink` edges. Returns the number of new edges.
    pub fn derive_close_links(&mut self, t: f64) -> usize {
        let engine = self.engine(CLOSELINK_PROGRAM);
        let mut db = Database::new();
        load_facts(&self.graph, &mut db);
        db.assert_fact("th", &[datalog::Const::float(t)])
            .expect("arity");
        engine.run(&mut db).expect("fixpoint");
        let added = materialize_links(&mut self.graph, &db, "close_link", CLOSE_LINK);
        self.closelink_db = Some(db);
        added
    }

    /// Opens incremental maintenance over the ownership layer: derives
    /// control and close links (threshold `t`) once through
    /// [`IncrementalEngine`] sessions, materializes the links, and keeps
    /// both sessions so later [`KnowledgeGraph::apply_ownership_changes`]
    /// calls re-evaluate only what an update touches. Returns the numbers
    /// of `Control` and `CloseLink` edges added by the initial derivation.
    ///
    /// Incompatible with provenance recording (explanations need the
    /// batch [`KnowledgeGraph::derive_control`] path).
    pub fn track_changes(&mut self, t: f64) -> Result<(usize, usize), DatalogError> {
        if self.provenance {
            return Err(DatalogError::Validation(
                "incremental tracking does not support provenance — use derive_control / \
                 derive_close_links for explainable batch runs"
                    .into(),
            ));
        }
        let control = Program::parse(CONTROL_PROGRAM).expect("bundled programs are valid");
        let mut db = Database::new();
        load_facts(&self.graph, &mut db);
        let control_session = IncrementalEngine::new(&control, db)?;
        let added_control = materialize_links(
            &mut self.graph,
            control_session.db(),
            "control",
            CONTROL_LINK,
        );

        let closelink = Program::parse(CLOSELINK_PROGRAM).expect("bundled programs are valid");
        let mut db = Database::new();
        load_facts(&self.graph, &mut db);
        db.assert_fact("th", &[Const::float(t)]).expect("arity");
        let closelink_session = IncrementalEngine::new(&closelink, db)?;
        let added_close = materialize_links(
            &mut self.graph,
            closelink_session.db(),
            "close_link",
            CLOSE_LINK,
        );

        self.control_session = Some(control_session);
        self.closelink_session = Some(closelink_session);
        self.control_db = None;
        self.closelink_db = None;
        Ok((added_control, added_close))
    }

    /// True when incremental sessions are open.
    pub fn is_tracking(&self) -> bool {
        self.control_session.is_some() && self.closelink_session.is_some()
    }

    /// Applies a batch of ownership edits to the graph and propagates it
    /// through the open incremental sessions: only the derived facts an
    /// edit can reach are re-evaluated, and the resulting `Control` /
    /// `CloseLink` edge diff is materialized into the graph. Requires a
    /// prior [`KnowledgeGraph::track_changes`].
    ///
    /// Setting a share to its current value, or removing an absent
    /// holding, is a no-op. Nodes added after `track_changes` (via
    /// [`KnowledgeGraph::add_person`] / [`KnowledgeGraph::add_company`])
    /// enter the reasoning state with their first change here.
    pub fn apply_ownership_changes(
        &mut self,
        changes: &[OwnershipChange],
    ) -> Result<KgUpdate, DatalogError> {
        if !self.is_tracking() {
            return Err(DatalogError::Validation(
                "no incremental session open — call track_changes first".into(),
            ));
        }
        // Apply to the extensional graph, recording the own-fact delta.
        let mut del: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut ins: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut touched: Vec<NodeId> = Vec::new();
        for ch in changes {
            match ch.share {
                Some(w) => {
                    match self.graph.set_share(ch.owner, ch.company, w) {
                        Some(old) if old == w => continue,
                        Some(old) => del.push((ch.owner, ch.company, old)),
                        None => {}
                    }
                    ins.push((ch.owner, ch.company, w));
                }
                None => match self.graph.remove_share(ch.owner, ch.company) {
                    Some(old) => del.push((ch.owner, ch.company, old)),
                    None => continue,
                },
            }
            touched.push(ch.owner);
            touched.push(ch.company);
        }
        touched.sort_unstable();
        touched.dedup();
        self.control_db = None;
        self.closelink_db = None;

        let mut out = KgUpdate {
            touched,
            ..KgUpdate::default()
        };
        let session = self.control_session.as_mut().expect("tracking");
        let cs = push_ownership_update(session, &self.graph, &del, &ins, &out.touched)?;
        out.control = link_diff(session.db(), &cs, "control");
        out.control_stats = cs.stats;
        let session = self.closelink_session.as_mut().expect("tracking");
        let cs = push_ownership_update(session, &self.graph, &del, &ins, &out.touched)?;
        out.close_links = link_diff(session.db(), &cs, "close_link");
        out.closelink_stats = cs.stats;

        for &(a, b) in &out.control.added {
            self.graph.add_link(CONTROL_LINK, a, b);
        }
        for &(a, b) in &out.control.removed {
            self.graph.remove_link(CONTROL_LINK, a, b);
        }
        for &(a, b) in &out.close_links.added {
            self.graph.add_link(CLOSE_LINK, a, b);
        }
        for &(a, b) in &out.close_links.removed {
            self.graph.remove_link(CLOSE_LINK, a, b);
        }
        Ok(out)
    }

    /// Re-evaluates only the `Candidate` pairs affected by a change (see
    /// [`augment_delta`]): typically fed with [`KgUpdate::touched`] after
    /// [`KnowledgeGraph::apply_ownership_changes`].
    pub fn augment_changed(
        &mut self,
        candidates: &[&dyn CandidatePredicate],
        touched: &[NodeId],
        opts: &AugmentOptions,
    ) -> AugmentStats {
        self.control_db = None;
        self.closelink_db = None;
        augment_delta(&mut self.graph, candidates, touched, opts)
    }

    /// Runs the augmentation loop (Algorithm 1) with the given candidates.
    pub fn augment(
        &mut self,
        candidates: &[&dyn CandidatePredicate],
        opts: &AugmentOptions,
    ) -> AugmentStats {
        self.control_db = None;
        self.closelink_db = None;
        augment(&mut self.graph, candidates, opts)
    }

    /// All materialized control pairs.
    pub fn control_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.graph.links_of(CONTROL_LINK)
    }

    /// All materialized close-link pairs.
    pub fn close_link_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.graph.links_of(CLOSE_LINK)
    }

    /// Explains why `x` controls `y` (requires provenance + a prior
    /// [`KnowledgeGraph::derive_control`] run).
    pub fn explain_control(&mut self, x: NodeId, y: NodeId, depth: usize) -> Option<Derivation> {
        let db = self.control_db.as_mut()?;
        let (xs, ys) = sym_pair(db, x, y);
        datalog::explain::explain(db, "control", &[xs, ys], depth)
    }

    /// Explains why `x` and `y` are closely linked (requires provenance +
    /// a prior [`KnowledgeGraph::derive_close_links`] run). Both
    /// directions are tried — the close-link relation is symmetric.
    pub fn explain_close_link(&mut self, x: NodeId, y: NodeId, depth: usize) -> Option<Derivation> {
        let db = self.closelink_db.as_mut()?;
        let (xs, ys) = sym_pair(db, x, y);
        datalog::explain::explain(db, "close_link", &[xs, ys], depth)
            .or_else(|| datalog::explain::explain(db, "close_link", &[ys, xs], depth))
    }
}

/// Translates an ownership delta into a datalog [`Update`] on `own` and
/// pushes it through `session`. Membership facts of every touched node are
/// included as inserts — a no-op for nodes the session already knows,
/// and the entry ticket for nodes added after the session opened.
fn push_ownership_update(
    session: &mut IncrementalEngine,
    graph: &CompanyGraph,
    del: &[(NodeId, NodeId, f64)],
    ins: &[(NodeId, NodeId, f64)],
    touched: &[NodeId],
) -> Result<ChangeSet, DatalogError> {
    let mut update = Update::default();
    for &(o, c, w) in del {
        let os = session.sym(&format!("n{}", o.index()));
        let cs = session.sym(&format!("n{}", c.index()));
        update
            .delete
            .push(("own".to_owned(), vec![os, cs, Const::float(w)]));
    }
    for &n in touched {
        let s = session.sym(&format!("n{}", n.index()));
        let pred = if graph.is_person(n) {
            "person"
        } else {
            "company"
        };
        update.insert.push((pred.to_owned(), vec![s]));
    }
    for &(o, c, w) in ins {
        let os = session.sym(&format!("n{}", o.index()));
        let cs = session.sym(&format!("n{}", c.index()));
        update
            .insert
            .push(("own".to_owned(), vec![os, cs, Const::float(w)]));
    }
    session.apply_update(&update)
}

/// Extracts the node-pair diff of one derived link predicate from a
/// [`ChangeSet`] (self-pairs skipped, like the output mapping).
fn link_diff(db: &Database, cs: &ChangeSet, pred: &str) -> LinkDiff {
    let pick = |facts: &[(String, Vec<Const>)]| {
        let mut out: Vec<(NodeId, NodeId)> = Vec::new();
        for (p, t) in facts {
            if p == pred && t.len() >= 2 {
                if let (Some(a), Some(b)) = (node_of(db, t[0]), node_of(db, t[1])) {
                    if a != b {
                        out.push((a, b));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };
    LinkDiff {
        added: pick(&cs.inserted),
        removed: pick(&cs.deleted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_graphs::figure1;

    #[test]
    fn derive_and_query_control() {
        let f = figure1();
        let mut kg = KnowledgeGraph::new(f.graph);
        let added = kg.derive_control();
        assert!(added > 0);
        let pairs = kg.control_pairs();
        // P1 (node 0) controls C (node 2) among others.
        assert!(pairs.iter().any(|&(x, _)| x == NodeId(0)));
        // Idempotent.
        assert_eq!(kg.derive_control(), 0);
        assert_eq!(kg.control_pairs(), pairs);
    }

    #[test]
    fn derive_close_links_materializes_edges() {
        let f = figure1();
        let mut kg = KnowledgeGraph::new(f.graph);
        let added = kg.derive_close_links(0.2);
        assert!(added > 0);
        assert_eq!(kg.close_link_pairs().len(), added);
    }

    #[test]
    fn close_link_explanations() {
        let f = figure1();
        let g_node = f.node("G");
        let i_node = f.node("I");
        let mut kg = KnowledgeGraph::new(f.graph).with_provenance();
        kg.derive_close_links(0.2);
        let d = kg
            .explain_close_link(g_node, i_node, 6)
            .expect("G-I derived");
        let rendered = d.render();
        assert!(rendered.contains("acc_own"), "{rendered}");
    }

    #[test]
    fn explanations_require_provenance() {
        let f = figure1();
        let p1 = f.node("P1");
        let e = f.node("E");
        // Without provenance: derivation trees degrade to leaves.
        let mut kg = KnowledgeGraph::new(figure1().graph);
        kg.derive_control();
        let d = kg.explain_control(p1, e, 5).expect("fact exists");
        assert!(d.premises.is_empty());
        // With provenance: the indirect control of E has premises.
        let mut kg = KnowledgeGraph::new(f.graph).with_provenance();
        kg.derive_control();
        let d = kg.explain_control(p1, e, 5).expect("fact exists");
        assert!(!d.premises.is_empty());
        assert!(d.render().contains("own"));
    }

    type PairSet = Vec<(NodeId, NodeId)>;

    /// Derives control + close links from scratch on (a clone of) `g` and
    /// returns both sorted pair sets — the oracle for incremental runs.
    fn batch_oracle(g: &CompanyGraph, t: f64) -> (PairSet, PairSet) {
        let mut kg = KnowledgeGraph::new(g.clone());
        kg.derive_control();
        kg.derive_close_links(t);
        let mut control = kg.control_pairs();
        control.sort_unstable();
        let mut close = kg.close_link_pairs();
        close.sort_unstable();
        (control, close)
    }

    fn assert_matches_oracle(kg: &KnowledgeGraph, t: f64) {
        let (control, close) = batch_oracle(kg.graph(), t);
        let mut got_control = kg.control_pairs();
        got_control.sort_unstable();
        let mut got_close = kg.close_link_pairs();
        got_close.sort_unstable();
        assert_eq!(got_control, control, "control links diverged from batch");
        assert_eq!(got_close, close, "close links diverged from batch");
    }

    #[test]
    fn track_changes_matches_batch_derivation() {
        let f = figure1();
        let mut kg = KnowledgeGraph::new(f.graph);
        let (c, cl) = kg.track_changes(0.2).expect("sessions open");
        assert!(c > 0 && cl > 0);
        assert!(kg.is_tracking());
        assert_matches_oracle(&kg, 0.2);
    }

    #[test]
    fn ownership_updates_maintain_links_incrementally() {
        let f = figure1();
        let p1 = f.node("P1");
        let c = f.node("C");
        let d = f.node("D");
        let mut kg = KnowledgeGraph::new(f.graph);
        kg.track_changes(0.2).expect("sessions open");

        // Weaken P1's direct stake in C: downstream control collapses and
        // the diff must report removals (deletion → rederivation path).
        let up = kg
            .apply_ownership_changes(&[OwnershipChange::set(p1, c, 0.1)])
            .expect("update");
        assert!(
            !up.control.removed.is_empty(),
            "control links must be retracted: {up:?}"
        );
        assert_eq!(up.touched, {
            let mut t = vec![p1, c];
            t.sort_unstable();
            t
        });
        assert_matches_oracle(&kg, 0.2);

        // Restore it: the same links come back.
        let up = kg
            .apply_ownership_changes(&[OwnershipChange::set(p1, c, 0.6)])
            .expect("update");
        assert!(!up.control.added.is_empty());
        assert_matches_oracle(&kg, 0.2);

        // Remove an edge entirely.
        kg.apply_ownership_changes(&[OwnershipChange::remove(c, d)])
            .expect("update");
        assert!(kg.graph().find_share(c, d).is_none());
        assert_matches_oracle(&kg, 0.2);
    }

    #[test]
    fn new_companies_join_the_reasoning_state() {
        let f = figure1();
        let p1 = f.node("P1");
        let mut kg = KnowledgeGraph::new(f.graph);
        kg.track_changes(0.2).expect("sessions open");
        let fresh = kg.add_company("FreshCo");
        let up = kg
            .apply_ownership_changes(&[OwnershipChange::set(p1, fresh, 0.8)])
            .expect("update");
        assert!(
            up.control.added.contains(&(p1, fresh)),
            "P1 controls the new company: {:?}",
            up.control.added
        );
        assert!(kg.control_pairs().contains(&(p1, fresh)));
        assert_matches_oracle(&kg, 0.2);
    }

    #[test]
    fn noop_changes_produce_empty_diffs() {
        let f = figure1();
        let p1 = f.node("P1");
        let c = f.node("C");
        let w = {
            let e = f.graph.find_share(p1, c).expect("exists");
            f.graph.share(e)
        };
        let mut kg = KnowledgeGraph::new(f.graph);
        kg.track_changes(0.2).expect("sessions open");
        let up = kg
            .apply_ownership_changes(&[
                OwnershipChange::set(p1, c, w),
                OwnershipChange::remove(c, p1),
            ])
            .expect("update");
        assert!(up.touched.is_empty());
        assert!(up.control.added.is_empty() && up.control.removed.is_empty());
        assert!(up.close_links.added.is_empty() && up.close_links.removed.is_empty());
    }

    #[test]
    fn tracking_requires_a_session_and_rejects_provenance() {
        let f = figure1();
        let mut kg = KnowledgeGraph::new(f.graph.clone());
        assert!(kg
            .apply_ownership_changes(&[OwnershipChange::remove(NodeId(0), NodeId(1))])
            .is_err());
        let mut kg = KnowledgeGraph::new(f.graph).with_provenance();
        assert!(kg.track_changes(0.2).is_err());
    }

    #[test]
    fn graph_mut_drops_sessions() {
        let f = figure1();
        let mut kg = KnowledgeGraph::new(f.graph);
        kg.track_changes(0.2).expect("sessions open");
        let _ = kg.graph_mut();
        assert!(!kg.is_tracking());
    }

    #[test]
    fn graph_mut_invalidates_cached_derivations() {
        let f = figure1();
        let p1 = f.node("P1");
        let c = f.node("C");
        let mut kg = KnowledgeGraph::new(f.graph).with_provenance();
        kg.derive_control();
        assert!(kg.explain_control(p1, c, 3).is_some());
        let _ = kg.graph_mut();
        assert!(kg.explain_control(p1, c, 3).is_none(), "cache dropped");
    }
}
