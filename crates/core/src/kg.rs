//! The knowledge-graph facade — the paper's *reasoning API* (Section 5).
//!
//! The VADA-LINK architecture stores the property graph (the extensional
//! component), keeps the Vadalog rule sets in a repository, and lets
//! enterprise applications interact with the KG through a reasoning API.
//! [`KnowledgeGraph`] is that API: it owns the company graph, runs the
//! intensional programs on demand, materializes the derived links back
//! into the graph (output mapping), and — when provenance is enabled —
//! explains any derived fact with its derivation tree.

use datalog::{explain::Derivation, Database, Engine, EngineOptions, FunctionRegistry, Program};
use pgraph::NodeId;

use self::error_free::sym_pair;
use crate::augment::{augment, AugmentOptions, AugmentStats, CandidatePredicate};
use crate::mapping::{load_facts, materialize_links};
use crate::model::CompanyGraph;
use crate::programs::{CLOSELINK_PROGRAM, CONTROL_PROGRAM};

/// Hidden re-export point for small helpers (keeps `kg` self-contained).
pub(crate) mod error_free {
    use datalog::{Const, Database};
    use pgraph::NodeId;

    /// Symbols of a node pair.
    pub fn sym_pair(db: &mut Database, a: NodeId, b: NodeId) -> (Const, Const) {
        (crate::mapping::sym_of(db, a), crate::mapping::sym_of(db, b))
    }
}

/// Edge label of derived control links.
pub const CONTROL_LINK: &str = "Control";
/// Edge label of derived close links.
pub const CLOSE_LINK: &str = "CloseLink";

/// A company knowledge graph: extensional property graph + on-demand
/// intensional reasoning.
#[derive(Debug)]
pub struct KnowledgeGraph {
    graph: CompanyGraph,
    provenance: bool,
    /// Databases of the last run per program, kept for explanations.
    control_db: Option<Database>,
    closelink_db: Option<Database>,
}

impl KnowledgeGraph {
    /// Wraps a company graph.
    pub fn new(graph: CompanyGraph) -> Self {
        KnowledgeGraph {
            graph,
            provenance: false,
            control_db: None,
            closelink_db: None,
        }
    }

    /// Enables provenance recording (needed for explanations).
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// The extensional component.
    pub fn graph(&self) -> &CompanyGraph {
        &self.graph
    }

    /// Mutable access (invalidates previous derivations' databases).
    pub fn graph_mut(&mut self) -> &mut CompanyGraph {
        self.control_db = None;
        self.closelink_db = None;
        &mut self.graph
    }

    fn engine(&self, src: &str) -> Engine {
        let program = Program::parse(src).expect("bundled programs are valid");
        let opts = EngineOptions {
            provenance: self.provenance,
            ..Default::default()
        };
        Engine::with(&program, FunctionRegistry::default(), opts).expect("bundled programs compile")
    }

    /// Derives company control (Algorithm 5) and materializes `Control`
    /// edges. Returns the number of new edges.
    pub fn derive_control(&mut self) -> usize {
        let engine = self.engine(CONTROL_PROGRAM);
        let mut db = Database::new();
        load_facts(&self.graph, &mut db);
        engine.run(&mut db).expect("fixpoint");
        let added = materialize_links(&mut self.graph, &db, "control", CONTROL_LINK);
        self.control_db = Some(db);
        added
    }

    /// Derives close links (Algorithm 6) at threshold `t` and materializes
    /// `CloseLink` edges. Returns the number of new edges.
    pub fn derive_close_links(&mut self, t: f64) -> usize {
        let engine = self.engine(CLOSELINK_PROGRAM);
        let mut db = Database::new();
        load_facts(&self.graph, &mut db);
        db.assert_fact("th", &[datalog::Const::float(t)])
            .expect("arity");
        engine.run(&mut db).expect("fixpoint");
        let added = materialize_links(&mut self.graph, &db, "close_link", CLOSE_LINK);
        self.closelink_db = Some(db);
        added
    }

    /// Runs the augmentation loop (Algorithm 1) with the given candidates.
    pub fn augment(
        &mut self,
        candidates: &[&dyn CandidatePredicate],
        opts: &AugmentOptions,
    ) -> AugmentStats {
        self.control_db = None;
        self.closelink_db = None;
        augment(&mut self.graph, candidates, opts)
    }

    /// All materialized control pairs.
    pub fn control_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.graph.links_of(CONTROL_LINK)
    }

    /// All materialized close-link pairs.
    pub fn close_link_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.graph.links_of(CLOSE_LINK)
    }

    /// Explains why `x` controls `y` (requires provenance + a prior
    /// [`KnowledgeGraph::derive_control`] run).
    pub fn explain_control(&mut self, x: NodeId, y: NodeId, depth: usize) -> Option<Derivation> {
        let db = self.control_db.as_mut()?;
        let (xs, ys) = sym_pair(db, x, y);
        datalog::explain::explain(db, "control", &[xs, ys], depth)
    }

    /// Explains why `x` and `y` are closely linked (requires provenance +
    /// a prior [`KnowledgeGraph::derive_close_links`] run). Both
    /// directions are tried — the close-link relation is symmetric.
    pub fn explain_close_link(&mut self, x: NodeId, y: NodeId, depth: usize) -> Option<Derivation> {
        let db = self.closelink_db.as_mut()?;
        let (xs, ys) = sym_pair(db, x, y);
        datalog::explain::explain(db, "close_link", &[xs, ys], depth)
            .or_else(|| datalog::explain::explain(db, "close_link", &[ys, xs], depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_graphs::figure1;

    #[test]
    fn derive_and_query_control() {
        let f = figure1();
        let mut kg = KnowledgeGraph::new(f.graph);
        let added = kg.derive_control();
        assert!(added > 0);
        let pairs = kg.control_pairs();
        // P1 (node 0) controls C (node 2) among others.
        assert!(pairs.iter().any(|&(x, _)| x == NodeId(0)));
        // Idempotent.
        assert_eq!(kg.derive_control(), 0);
        assert_eq!(kg.control_pairs(), pairs);
    }

    #[test]
    fn derive_close_links_materializes_edges() {
        let f = figure1();
        let mut kg = KnowledgeGraph::new(f.graph);
        let added = kg.derive_close_links(0.2);
        assert!(added > 0);
        assert_eq!(kg.close_link_pairs().len(), added);
    }

    #[test]
    fn close_link_explanations() {
        let f = figure1();
        let g_node = f.node("G");
        let i_node = f.node("I");
        let mut kg = KnowledgeGraph::new(f.graph).with_provenance();
        kg.derive_close_links(0.2);
        let d = kg
            .explain_close_link(g_node, i_node, 6)
            .expect("G-I derived");
        let rendered = d.render();
        assert!(rendered.contains("acc_own"), "{rendered}");
    }

    #[test]
    fn explanations_require_provenance() {
        let f = figure1();
        let p1 = f.node("P1");
        let e = f.node("E");
        // Without provenance: derivation trees degrade to leaves.
        let mut kg = KnowledgeGraph::new(figure1().graph);
        kg.derive_control();
        let d = kg.explain_control(p1, e, 5).expect("fact exists");
        assert!(d.premises.is_empty());
        // With provenance: the indirect control of E has premises.
        let mut kg = KnowledgeGraph::new(f.graph).with_provenance();
        kg.derive_control();
        let d = kg.explain_control(p1, e, 5).expect("fact exists");
        assert!(!d.premises.is_empty());
        assert!(d.render().contains("own"));
    }

    #[test]
    fn graph_mut_invalidates_cached_derivations() {
        let f = figure1();
        let p1 = f.node("P1");
        let c = f.node("C");
        let mut kg = KnowledgeGraph::new(f.graph).with_provenance();
        kg.derive_control();
        assert!(kg.explain_control(p1, c, 3).is_some());
        let _ = kg.graph_mut();
        assert!(kg.explain_control(p1, c, 3).is_none(), "cache dropped");
    }
}
