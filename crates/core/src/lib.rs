//! # vada-link — knowledge-graph augmentation over company ownership graphs
//!
//! Reproduction of the VADA-LINK framework from *"Weaving Enterprise
//! Knowledge Graphs: The Case of Company Ownership Graphs"* (EDBT 2020).
//!
//! The framework treats a company ownership graph (persons, companies,
//! shareholding edges) as the *extensional component* of a knowledge graph
//! and derives hidden links — **company control**, **close links**,
//! **personal/family connections** — by combining logic-based reasoning
//! with two-level clustering:
//!
//! 1. a first-level clustering via node2vec embeddings + k-means
//!    (`#GraphEmbedClust`, [`mod@augment`]);
//! 2. a second-level feature blocking (`#GenerateBlocks`,
//!    [`linkage::blocking`]);
//! 3. polymorphic `Candidate` predicates deciding links within blocks
//!    ([`augment::CandidatePredicate`], [`control`], [`closelink`],
//!    [`family`]).
//!
//! Every problem has two implementations that are differentially tested
//! against each other:
//!
//! * a **native** Rust algorithm (worklist fixpoints, path enumeration);
//! * the paper's **Vadalog program** (Algorithms 5–9), executed on the
//!   [`datalog`] engine via the input/output mappings of Algorithms 2/4
//!   ([`mapping`], [`programs`]).
//!
//! ```
//! use vada_link::model::CompanyGraphBuilder;
//! use vada_link::control::all_control;
//!
//! let mut b = CompanyGraphBuilder::new();
//! let p = b.person("P1");
//! let c = b.company("C");
//! let d = b.company("D");
//! b.share(p, c, 0.8);
//! b.share(c, d, 0.6);
//! let g = b.build();
//! let control = all_control(&g);
//! assert!(control.iter().any(|&(x, y)| x == p && y == d));
//! ```

pub mod augment;
pub mod candidates;
pub mod closelink;
pub mod control;
pub mod family;
pub mod kg;
pub mod mapping;
pub mod model;
pub mod naive;
pub mod paper_graphs;
pub mod programs;
pub mod recall;

pub use augment::{augment, augment_delta, AugmentOptions, AugmentStats, CandidatePredicate};
pub use candidates::{CloseLinkCandidate, ControlCandidate};
pub use closelink::{accumulated_ownership, close_links, CloseLink, CloseLinkReason};
pub use control::{all_control, controls, family_control};
pub use family::{FamilyDetector, FamilyDetectorConfig};
pub use kg::{KgUpdate, KnowledgeGraph, LinkDiff, OwnershipChange};
pub use model::{CompanyGraph, CompanyGraphBuilder};
