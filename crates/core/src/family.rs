//! Detection of personal/family connections (Section 2, Algorithm 7).
//!
//! The paper predicts a personal link between persons `x` and `y` with a
//! multi-feature Bayesian classifier: per-feature conditional probabilities
//! `p_i = P(L | d(f_i^x, f_i^y) < T_i)` combined via Graham combination,
//! predicting a link when the combined probability exceeds 0.5
//! (`#LinkProbability(...) > 0.5` in Algorithm 7). This module wires the
//! [`linkage`] toolkit to company-graph person features and adds a
//! deterministic *typing* step that labels detected links as `PartnerOf`,
//! `SiblingOf` or `ParentOf` using surname/age/address structure.

use gen::company::FamilyLink;
use pgraph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use linkage::bayes::{BayesModel, FeatureSpec, TrainingPair};
use linkage::distance::{normalized_levenshtein, numeric_distance};

use crate::model::CompanyGraph;

/// Days in 100 years — the scale of the same-generation arm of the
/// kinship-gap distance: below threshold 0.18 means "born within ~18
/// years" (partners, siblings).
const SAME_GEN_SCALE_DAYS: f64 = 36_500.0;
/// Centre of the parent/child age-gap distribution, in days (~29 years).
const PARENT_GAP_DAYS: f64 = 10_500.0;
/// Scale of the parent-gap arm: below threshold 0.18 means "within ~10
/// years of a typical parent/child gap".
const PARENT_GAP_SCALE_DAYS: f64 = 20_278.0;
/// Age gap (days) separating same-generation pairs (partners, siblings —
/// gaps up to ~16 years) from parent/child pairs (gaps of 22+ years).
const GENERATION_GAP_DAYS: i64 = 7000;

/// Kinship-plausible age-gap distance: small when the pair is either of
/// the same generation (small gap — partners, siblings) or one generation
/// apart (gap near the typical ~29-year parent/child gap). A single
/// thresholded feature cannot be bimodal, so the bimodality is folded
/// into the distance itself, with a tighter tolerance around the parent
/// mode than around zero.
pub fn kinship_gap_distance(birth_a: i64, birth_b: i64) -> f64 {
    let gap = (birth_a - birth_b).abs() as f64;
    let same_gen = numeric_distance(gap, 0.0, SAME_GEN_SCALE_DAYS);
    let parent_gen = numeric_distance(gap, PARENT_GAP_DAYS, PARENT_GAP_SCALE_DAYS);
    same_gen.min(parent_gen)
}

/// The feature set used for person-pair comparison, in order:
/// surname (edit distance), home address (exact match), birth date
/// (same-generation), birth place (exact match).
///
/// First names are deliberately excluded: family members do not share
/// them, so the feature carries no signal — and in Graham combination an
/// uninformative feature (posterior ≈ prior < 0.5) actively votes against
/// every link. Addresses are compared exactly rather than by edit
/// distance: street pools are small, so unrelated addresses often differ
/// by a single house number — a one-character edit.
pub fn feature_specs() -> Vec<FeatureSpec> {
    vec![
        FeatureSpec::new("surname", 0.25),
        FeatureSpec::new("address", 0.5),
        FeatureSpec::new("birth", 0.18),
        FeatureSpec::new("birth_city", 0.5),
    ]
}

/// Per-feature distances for a pair of person nodes. `None` marks missing
/// features.
pub fn pair_distances(g: &CompanyGraph, a: NodeId, b: NodeId) -> Vec<Option<f64>> {
    let exact = |key: &str| -> Option<f64> {
        match (g.str_prop(a, key), g.str_prop(b, key)) {
            (Some(x), Some(y)) => Some(if x == y { 0.0 } else { 1.0 }),
            _ => None,
        }
    };
    let surname = match (g.str_prop(a, "surname"), g.str_prop(b, "surname")) {
        (Some(x), Some(y)) => Some(normalized_levenshtein(x, y)),
        _ => None,
    };
    let birth = match (g.int_prop(a, "birth"), g.int_prop(b, "birth")) {
        (Some(x), Some(y)) => Some(kinship_gap_distance(x, y)),
        _ => None,
    };
    vec![surname, exact("address"), birth, exact("birth_city")]
}

/// Configuration for training the detector.
#[derive(Debug, Clone)]
pub struct FamilyDetectorConfig {
    /// Number of negative (unlinked) pairs sampled per positive pair.
    pub negatives_per_positive: usize,
    /// RNG seed for negative sampling.
    pub seed: u64,
}

impl Default for FamilyDetectorConfig {
    fn default() -> Self {
        FamilyDetectorConfig {
            // Two negatives per positive: balanced enough that weakly
            // informative features do not veto every link (with a heavily
            // skewed prior the Graham neutral point drops below 0.5), yet
            // strict enough to keep the false-positive rate near zero.
            negatives_per_positive: 2,
            seed: 0xFA111A,
        }
    }
}

/// A trained family-link detector.
#[derive(Debug, Clone)]
pub struct FamilyDetector {
    model: BayesModel,
}

impl FamilyDetector {
    /// Wraps a pre-trained Bayesian model.
    pub fn from_model(model: BayesModel) -> Self {
        FamilyDetector { model }
    }

    /// Trains from a generated graph's ground truth: positive pairs are the
    /// truth links, negatives are random person pairs from different
    /// families.
    pub fn train(
        g: &CompanyGraph,
        truth: &gen::company::GroundTruth,
        cfg: &FamilyDetectorConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let persons: Vec<NodeId> = g.persons().collect();
        let mut pairs: Vec<TrainingPair> = Vec::new();
        for (a, b, _) in &truth.links {
            pairs.push(TrainingPair {
                distances: pair_distances(g, *a, *b),
                linked: true,
            });
            for _ in 0..cfg.negatives_per_positive {
                let (x, y) = loop {
                    let x = persons[rng.random_range(0..persons.len())];
                    let y = persons[rng.random_range(0..persons.len())];
                    if x == y {
                        continue;
                    }
                    let fx = truth.family_of.get(x.index()).copied().flatten();
                    let fy = truth.family_of.get(y.index()).copied().flatten();
                    if fx.is_none() || fx != fy {
                        break (x, y);
                    }
                };
                pairs.push(TrainingPair {
                    distances: pair_distances(g, x, y),
                    linked: false,
                });
            }
        }
        FamilyDetector {
            model: BayesModel::train(feature_specs(), &pairs),
        }
    }

    /// The underlying Bayesian model.
    pub fn model(&self) -> &BayesModel {
        &self.model
    }

    /// Combined link probability for a person pair (the paper's
    /// `#LinkProbability`).
    pub fn link_probability(&self, g: &CompanyGraph, a: NodeId, b: NodeId) -> f64 {
        self.model.link_probability(&pair_distances(g, a, b))
    }

    /// Detects and types a personal link (Algorithm 7 plus typing):
    /// returns `None` when the combined probability is ≤ 0.5.
    pub fn detect(&self, g: &CompanyGraph, a: NodeId, b: NodeId) -> Option<FamilyLink> {
        if !g.is_person(a) || !g.is_person(b) || a == b {
            return None;
        }
        if self.link_probability(g, a, b) <= 0.5 {
            return None;
        }
        Some(classify_link(g, a, b))
    }
}

/// Deterministic typing of a detected personal link.
///
/// * an age gap of a generation or more → `ParentOf` (regardless of
///   surname: half of parent links are mother/child pairs with the
///   mother's own surname);
/// * within a generation with a shared surname → `SiblingOf`;
/// * otherwise → `PartnerOf` — partners mostly keep their own surnames in
///   the Italian register. (Same-surname partners are typed as siblings;
///   the two classes are not separable from register features alone.)
pub fn classify_link(g: &CompanyGraph, a: NodeId, b: NodeId) -> FamilyLink {
    let same_surname = match (g.str_prop(a, "surname"), g.str_prop(b, "surname")) {
        (Some(x), Some(y)) => normalized_levenshtein(x, y) < 0.25,
        _ => false,
    };
    let gap = match (g.int_prop(a, "birth"), g.int_prop(b, "birth")) {
        (Some(x), Some(y)) => (x - y).abs(),
        _ => 0,
    };
    if gap >= GENERATION_GAP_DAYS {
        FamilyLink::ParentOf
    } else if same_surname {
        FamilyLink::SiblingOf
    } else {
        FamilyLink::PartnerOf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen::company::{generate, CompanyGraphConfig};

    fn trained() -> (CompanyGraph, gen::company::GroundTruth, FamilyDetector) {
        let out = generate(&CompanyGraphConfig {
            persons: 1200,
            companies: 600,
            seed: 7,
            ..Default::default()
        });
        let g = CompanyGraph::new(out.graph);
        let det = FamilyDetector::train(&g, &out.truth, &FamilyDetectorConfig::default());
        (g, out.truth, det)
    }

    #[test]
    fn recall_on_ground_truth_links() {
        let (g, truth, det) = trained();
        let mut hit = 0usize;
        let mut total = 0usize;
        for (a, b, _) in &truth.links {
            total += 1;
            if det.detect(&g, *a, *b).is_some() {
                hit += 1;
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.7, "recall {recall} too low ({hit}/{total})");
    }

    #[test]
    fn precision_on_random_pairs() {
        let (g, truth, det) = trained();
        let persons: Vec<NodeId> = g.persons().collect();
        let mut rng = StdRng::seed_from_u64(99);
        let mut false_pos = 0usize;
        let n = 3000;
        for _ in 0..n {
            let a = persons[rng.random_range(0..persons.len())];
            let b = persons[rng.random_range(0..persons.len())];
            if a == b {
                continue;
            }
            let fa = truth.family_of[a.index()];
            let fb = truth.family_of[b.index()];
            if fa.is_some() && fa == fb {
                continue; // actually related
            }
            if det.detect(&g, a, b).is_some() {
                false_pos += 1;
            }
        }
        let fpr = false_pos as f64 / n as f64;
        assert!(fpr < 0.05, "false-positive rate {fpr} too high");
    }

    #[test]
    fn typing_distinguishes_generations() {
        let (g, truth, det) = trained();
        let mut parent_correct = 0usize;
        let mut parent_total = 0usize;
        for (a, b) in truth.of_kind(FamilyLink::ParentOf) {
            if let Some(kind) = det.detect(&g, a, b) {
                parent_total += 1;
                if kind == FamilyLink::ParentOf {
                    parent_correct += 1;
                }
            }
        }
        assert!(parent_total > 10, "need detected parent pairs to judge");
        assert!(
            parent_correct as f64 / parent_total as f64 > 0.8,
            "{parent_correct}/{parent_total}"
        );
    }

    #[test]
    fn non_persons_are_rejected() {
        let (g, _, det) = trained();
        let p = g.persons().next().unwrap();
        let c = g.companies().next().unwrap();
        assert!(det.detect(&g, p, c).is_none());
        assert!(det.detect(&g, p, p).is_none());
    }

    #[test]
    fn missing_features_do_not_crash() {
        let mut b = crate::model::CompanyGraphBuilder::new();
        let a = b.person("A");
        let c = b.person("B");
        let g = b.build();
        let d = pair_distances(&g, a, c);
        // Builder persons carry only a first name — every classifier
        // feature is missing, so the vector is all-None.
        assert_eq!(d.len(), feature_specs().len());
        assert!(d.iter().all(|x| x.is_none()));
    }

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
}
