//! Company control (Definition 2.3) and family control (Definition 2.8).
//!
//! `x` controls `y` when `x` directly owns more than 50% of `y`, or when
//! the set of companies `x` controls — possibly together with `x` itself —
//! jointly owns more than 50% of `y`. The native implementation is a
//! worklist fixpoint: once a company joins the controlled set, its holdings
//! are credited to the accumulated share of each target, and targets whose
//! accumulated share crosses 1/2 join the set in turn. Each edge is
//! processed at most once per source, so a single-source query costs
//! `O(|E|)` and the all-pairs variant `O(|N|·|E|)`.
//!
//! The same fixpoint seeded with all members of a family computes *family
//! control* (Definition 2.8: are there groups of people, e.g. of the same
//! family, in control of a certain company?).
//!
//! The declarative counterpart — Algorithm 5 of the paper, a Vadalog
//! program with a monotonic `msum` — lives in [`crate::programs`] and is
//! differentially tested against this module.

use std::collections::HashMap;

use pgraph::NodeId;

use crate::model::CompanyGraph;

/// Companies controlled by `x` (excluding `x` itself).
pub fn controls(g: &CompanyGraph, x: NodeId) -> Vec<NodeId> {
    controls_of_group(g, std::slice::from_ref(&x))
}

/// Companies controlled jointly by a *group* acting as a single centre of
/// interest (Definition 2.8 with the family replaced by an arbitrary set).
/// Group members themselves are never reported as controlled.
pub fn controls_of_group(g: &CompanyGraph, group: &[NodeId]) -> Vec<NodeId> {
    let mut acc: HashMap<NodeId, f64> = HashMap::new();
    let mut controlled: Vec<NodeId> = Vec::new();
    let mut in_set = vec![false; g.node_count()];
    let mut worklist: Vec<NodeId> = Vec::new();
    for &m in group {
        if !in_set[m.index()] {
            in_set[m.index()] = true;
            worklist.push(m);
        }
    }
    while let Some(z) = worklist.pop() {
        for (y, w) in g.holdings(z) {
            if in_set[y.index()] {
                continue;
            }
            // Self-loops (treasury shares) never grant control to the
            // holder of the loop — skip y's own shares of itself.
            if y == z {
                continue;
            }
            let total = acc.entry(y).or_insert(0.0);
            *total += w;
            if *total > 0.5 {
                in_set[y.index()] = true;
                controlled.push(y);
                worklist.push(y);
            }
        }
    }
    controlled.sort_unstable();
    controlled
}

/// All control pairs `(x, y)` with `x ≠ y`, for every person and company
/// that owns at least one share.
pub fn all_control(g: &CompanyGraph) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    for x in g.graph().node_ids() {
        if g.graph().out_degree(x) == 0 {
            continue;
        }
        for y in controls(g, x) {
            out.push((x, y));
        }
    }
    out
}

/// Family control: companies controlled jointly by the members of a
/// family (Definition 2.8). `members` are the person nodes of the family.
pub fn family_control(g: &CompanyGraph, members: &[NodeId]) -> Vec<NodeId> {
    controls_of_group(g, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CompanyGraphBuilder;
    use crate::paper_graphs::{figure1, figure2};

    #[test]
    fn direct_majority_controls() {
        let mut b = CompanyGraphBuilder::new();
        let p = b.person("P");
        let c = b.company("C");
        b.share(p, c, 0.51);
        let g = b.build();
        assert_eq!(controls(&g, p), vec![c]);
    }

    #[test]
    fn exactly_half_does_not_control() {
        let mut b = CompanyGraphBuilder::new();
        let p = b.person("P");
        let c = b.company("C");
        b.share(p, c, 0.5);
        let g = b.build();
        assert!(controls(&g, p).is_empty());
    }

    #[test]
    fn joint_control_through_subsidiaries() {
        // P controls A and B (60% each); A and B each own 30% of C.
        let mut b = CompanyGraphBuilder::new();
        let p = b.person("P");
        let a = b.company("A");
        let bb = b.company("B");
        let c = b.company("C");
        b.share(p, a, 0.6);
        b.share(p, bb, 0.6);
        b.share(a, c, 0.3);
        b.share(bb, c, 0.3);
        let g = b.build();
        assert_eq!(controls(&g, p), vec![a, bb, c]);
    }

    #[test]
    fn own_plus_subsidiary_shares_combine() {
        // Paper Figure 1, E: P1 controls D (75%); D owns 40% of E and P1
        // directly owns 20% of E → jointly 60%.
        let f = figure1();
        let controlled = controls(&f.graph, f.node("P1"));
        assert!(controlled.contains(&f.node("E")));
    }

    #[test]
    fn figure1_full_ground_truth() {
        let f = figure1();
        let p1 = controls(&f.graph, f.node("P1"));
        for c in ["C", "D", "E", "F"] {
            assert!(p1.contains(&f.node(c)), "P1 must control {c}");
        }
        assert!(!p1.contains(&f.node("L")), "P1 alone must not control L");
        let p2 = controls(&f.graph, f.node("P2"));
        for c in ["G", "H", "I"] {
            assert!(p2.contains(&f.node(c)), "P2 must control {c}");
        }
        assert!(!p2.contains(&f.node("L")));
    }

    #[test]
    fn figure1_joint_family_control_of_l() {
        // The Introduction: knowing P1 and P2 are married, together they
        // control L (F's 20% + I's 40% = 60%).
        let f = figure1();
        let joint = family_control(&f.graph, &[f.node("P1"), f.node("P2")]);
        assert!(joint.contains(&f.node("L")), "family {{P1, P2}} controls L");
    }

    #[test]
    fn figure2_example_2_4() {
        let f = figure2();
        let p1 = controls(&f.graph, f.node("P1"));
        assert!(p1.contains(&f.node("C4")), "P1 controls C4 directly");
        let p2 = controls(&f.graph, f.node("P2"));
        assert!(p2.contains(&f.node("C5")));
        assert!(p2.contains(&f.node("C6")));
        assert!(p2.contains(&f.node("C7")), "P2 controls C7 via C5 and C6");
        assert!(!p2.contains(&f.node("C4")));
    }

    #[test]
    fn cycles_terminate_and_resolve() {
        // a -0.6-> b -0.6-> c -0.6-> b : b and c control each other's chain
        // but control from a flows through.
        let mut bb = CompanyGraphBuilder::new();
        let a = bb.company("a");
        let b = bb.company("b");
        let c = bb.company("c");
        bb.share(a, b, 0.6);
        bb.share(b, c, 0.6);
        bb.share(c, b, 0.6);
        let g = bb.build();
        assert_eq!(controls(&g, a), vec![b, c]);
        assert_eq!(controls(&g, b), vec![c]);
        assert_eq!(controls(&g, c), vec![b]);
    }

    #[test]
    fn self_loops_do_not_self_control() {
        let mut b = CompanyGraphBuilder::new();
        let a = b.company("a");
        b.share(a, a, 0.9);
        let g = b.build();
        assert!(controls(&g, a).is_empty());
        assert!(all_control(&g).is_empty());
    }

    #[test]
    fn all_control_matches_per_source() {
        let f = figure1();
        let all = all_control(&f.graph);
        let from_p1: Vec<NodeId> = all
            .iter()
            .filter(|(x, _)| *x == f.node("P1"))
            .map(|(_, y)| *y)
            .collect();
        assert_eq!(from_p1, controls(&f.graph, f.node("P1")));
        // Intermediate companies control downstream too: D controls nothing
        // alone (40% of E), but E? E owns 40% of F — no control either.
        assert!(!all.contains(&(f.node("D"), f.node("E"))));
    }

    #[test]
    fn group_members_not_reported() {
        let f = figure1();
        let joint = family_control(&f.graph, &[f.node("P1"), f.node("P2")]);
        assert!(!joint.contains(&f.node("P1")));
        assert!(!joint.contains(&f.node("P2")));
    }
}
