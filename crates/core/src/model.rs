//! Typed view over company property graphs (Definition 2.2).
//!
//! [`CompanyGraph`] wraps a [`pgraph::PropertyGraph`] whose nodes carry the
//! labels `Person`/`Company` and whose `Shareholding` edges carry a share
//! fraction `w ∈ (0, 1]`. Derived links added by reasoning (Control,
//! CloseLink, PartnerOf, …) coexist in the same graph under their own edge
//! labels, so the augmented graph remains a regular property graph — the
//! paper's `U`.

use pgraph::{Csr, EdgeId, LabelId, NodeId, PropertyGraph, Value};

/// Node label of persons.
pub const PERSON: &str = "Person";
/// Node label of companies.
pub const COMPANY: &str = "Company";
/// Edge label of shareholdings.
pub const SHAREHOLDING: &str = "Shareholding";
/// Edge property holding the share fraction.
pub const SHARE_W: &str = "w";

/// A typed company ownership graph.
#[derive(Debug, Clone)]
pub struct CompanyGraph {
    g: PropertyGraph,
    person: LabelId,
    company: LabelId,
    shareholding: LabelId,
}

impl CompanyGraph {
    /// Wraps a property graph, interning the standard labels.
    pub fn new(mut g: PropertyGraph) -> Self {
        let person = g.label_id(PERSON);
        let company = g.label_id(COMPANY);
        let shareholding = g.label_id(SHAREHOLDING);
        CompanyGraph {
            g,
            person,
            company,
            shareholding,
        }
    }

    /// The underlying property graph.
    pub fn graph(&self) -> &PropertyGraph {
        &self.g
    }

    /// Mutable access to the underlying property graph.
    pub fn graph_mut(&mut self) -> &mut PropertyGraph {
        &mut self.g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.g.node_count()
    }

    /// True if `n` is a person.
    pub fn is_person(&self, n: NodeId) -> bool {
        self.g.node_label(n) == self.person
    }

    /// True if `n` is a company.
    pub fn is_company(&self, n: NodeId) -> bool {
        self.g.node_label(n) == self.company
    }

    /// All person nodes.
    pub fn persons(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.g.nodes_with_label(self.person)
    }

    /// All company nodes.
    pub fn companies(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.g.nodes_with_label(self.company)
    }

    /// All shareholding edges.
    pub fn share_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.g
            .edge_ids()
            .filter(move |&e| self.g.edge_label(e) == self.shareholding)
    }

    /// Share fraction of a shareholding edge (0.0 if absent).
    pub fn share(&self, e: EdgeId) -> f64 {
        self.g
            .edge_prop(e, SHARE_W)
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    }

    /// Shareholders of a company: `(owner, weight)` pairs.
    pub fn shareholders(&self, c: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.g
            .in_edges(c)
            .iter()
            .filter(|&&e| self.g.edge_label(e) == self.shareholding)
            .map(|&e| {
                let (src, _) = self.g.endpoints(e);
                (src, self.share(e))
            })
    }

    /// Holdings of a node: `(company, weight)` pairs it owns shares of.
    pub fn holdings(&self, x: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.g
            .out_edges(x)
            .iter()
            .filter(|&&e| self.g.edge_label(e) == self.shareholding)
            .map(|&e| {
                let (_, dst) = self.g.endpoints(e);
                (dst, self.share(e))
            })
    }

    /// A string property of a node.
    pub fn str_prop(&self, n: NodeId, key: &str) -> Option<&str> {
        self.g.node_prop(n, key).and_then(|v| v.as_str())
    }

    /// An integer property of a node.
    pub fn int_prop(&self, n: NodeId, key: &str) -> Option<i64> {
        self.g.node_prop(n, key).and_then(|v| v.as_i64())
    }

    /// Adds a derived (intensional) edge with the given class label,
    /// returning its id. Duplicate class edges between the same endpoints
    /// are not added twice; the existing id is returned instead.
    pub fn add_link(&mut self, class: &str, a: NodeId, b: NodeId) -> EdgeId {
        if let Some(e) = self.find_link(class, a, b) {
            return e;
        }
        self.g.add_edge(class, a, b)
    }

    /// Finds a derived edge of `class` from `a` to `b`.
    pub fn find_link(&self, class: &str, a: NodeId, b: NodeId) -> Option<EdgeId> {
        let label = self.g.find_label(class)?;
        self.g
            .out_edges(a)
            .iter()
            .copied()
            .find(|&e| self.g.edge_label(e) == label && self.g.endpoints(e).1 == b)
    }

    /// All derived edges of a class as `(src, dst)` pairs.
    pub fn links_of(&self, class: &str) -> Vec<(NodeId, NodeId)> {
        let Some(label) = self.g.find_label(class) else {
            return Vec::new();
        };
        self.g
            .edge_ids()
            .filter(|&e| self.g.edge_label(e) == label)
            .map(|e| self.g.endpoints(e))
            .collect()
    }

    /// Finds the shareholding edge `owner → company`, if present.
    pub fn find_share(&self, owner: NodeId, company: NodeId) -> Option<EdgeId> {
        self.g.out_edges(owner).iter().copied().find(|&e| {
            self.g.edge_label(e) == self.shareholding && self.g.endpoints(e).1 == company
        })
    }

    /// Adds or updates the shareholding `owner → company` to fraction `w`,
    /// returning the previous fraction when the edge already existed.
    pub fn set_share(&mut self, owner: NodeId, company: NodeId, w: f64) -> Option<f64> {
        if let Some(e) = self.find_share(owner, company) {
            let old = self.share(e);
            self.g.set_edge_prop(e, SHARE_W, Value::float(w));
            Some(old)
        } else {
            let e = self.g.add_edge(SHAREHOLDING, owner, company);
            self.g.set_edge_prop(e, SHARE_W, Value::float(w));
            None
        }
    }

    /// Removes the shareholding `owner → company`, returning its fraction.
    /// Edge ids held by the caller are invalidated (swap-remove).
    pub fn remove_share(&mut self, owner: NodeId, company: NodeId) -> Option<f64> {
        let e = self.find_share(owner, company)?;
        let w = self.share(e);
        self.g.remove_edge(e);
        Some(w)
    }

    /// Removes a derived edge of `class` from `a` to `b`; returns whether
    /// one was present. Edge ids held by the caller are invalidated.
    pub fn remove_link(&mut self, class: &str, a: NodeId, b: NodeId) -> bool {
        match self.find_link(class, a, b) {
            Some(e) => {
                self.g.remove_edge(e);
                true
            }
            None => false,
        }
    }

    /// CSR snapshot over the shareholding weights (derived links included
    /// with weight 1.0; build before augmenting for a pure ownership view).
    pub fn csr(&self) -> Csr {
        Csr::from_graph(&self.g, SHARE_W)
    }
}

/// Fluent construction of small company graphs (tests, examples, the
/// paper's figures).
#[derive(Debug, Default)]
pub struct CompanyGraphBuilder {
    g: PropertyGraph,
}

impl CompanyGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a person with a `name` property.
    pub fn person(&mut self, name: &str) -> NodeId {
        let n = self.g.add_node(PERSON);
        self.g.set_node_prop(n, "name", Value::from(name));
        n
    }

    /// Adds a company with a `name` property.
    pub fn company(&mut self, name: &str) -> NodeId {
        let n = self.g.add_node(COMPANY);
        self.g.set_node_prop(n, "name", Value::from(name));
        n
    }

    /// Adds a shareholding edge `owner → company` with share `w`.
    pub fn share(&mut self, owner: NodeId, company: NodeId, w: f64) -> EdgeId {
        let e = self.g.add_edge(SHAREHOLDING, owner, company);
        self.g.set_edge_prop(e, SHARE_W, Value::float(w));
        e
    }

    /// Sets an extra node property.
    pub fn prop(&mut self, n: NodeId, key: &str, value: Value) -> &mut Self {
        self.g.set_node_prop(n, key, value);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> CompanyGraph {
        CompanyGraph::new(self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (CompanyGraph, NodeId, NodeId, NodeId) {
        let mut b = CompanyGraphBuilder::new();
        let p = b.person("P");
        let c = b.company("C");
        let d = b.company("D");
        b.share(p, c, 0.6);
        b.share(c, d, 0.4);
        b.share(p, d, 0.2);
        (b.build(), p, c, d)
    }

    #[test]
    fn labels_and_membership() {
        let (g, p, c, _) = tiny();
        assert!(g.is_person(p));
        assert!(g.is_company(c));
        assert!(!g.is_company(p));
        assert_eq!(g.persons().count(), 1);
        assert_eq!(g.companies().count(), 2);
        assert_eq!(g.share_edges().count(), 3);
    }

    #[test]
    fn shareholders_and_holdings() {
        let (g, p, c, d) = tiny();
        let sh: Vec<(NodeId, f64)> = g.shareholders(d).collect();
        assert_eq!(sh.len(), 2);
        assert!(sh.contains(&(c, 0.4)));
        assert!(sh.contains(&(p, 0.2)));
        let h: Vec<(NodeId, f64)> = g.holdings(p).collect();
        assert_eq!(h.len(), 2);
        assert!(h.contains(&(c, 0.6)));
    }

    #[test]
    fn links_are_separate_from_shareholdings() {
        let (mut g, p, _, d) = tiny();
        let e1 = g.add_link("Control", p, d);
        let e2 = g.add_link("Control", p, d);
        assert_eq!(e1, e2, "deduplicated");
        assert_eq!(g.links_of("Control"), vec![(p, d)]);
        assert_eq!(g.share_edges().count(), 3, "shareholdings unchanged");
        assert!(g.find_link("Control", p, d).is_some());
        assert!(g.find_link("CloseLink", p, d).is_none());
    }

    #[test]
    fn properties_roundtrip() {
        let (g, p, _, _) = tiny();
        assert_eq!(g.str_prop(p, "name"), Some("P"));
        assert_eq!(g.str_prop(p, "missing"), None);
    }

    #[test]
    fn csr_reflects_weights() {
        let (g, p, _, _) = tiny();
        let csr = g.csr();
        assert_eq!(csr.out_weights(p), &[0.6, 0.2]);
    }

    #[test]
    fn share_mutators_roundtrip() {
        let (mut g, p, c, d) = tiny();
        assert!(g.find_share(p, c).is_some());
        assert!(g.find_share(c, p).is_none());
        // Update in place.
        assert_eq!(g.set_share(p, c, 0.9), Some(0.6));
        assert_eq!(g.share(g.find_share(p, c).unwrap()), 0.9);
        assert_eq!(g.share_edges().count(), 3);
        // Fresh edge.
        assert_eq!(g.set_share(d, c, 0.1), None);
        assert_eq!(g.share_edges().count(), 4);
        // Removal returns the weight and drops the edge.
        assert_eq!(g.remove_share(p, c), Some(0.9));
        assert!(g.find_share(p, c).is_none());
        assert_eq!(g.remove_share(p, c), None);
        assert_eq!(g.share_edges().count(), 3);
    }

    #[test]
    fn remove_link_drops_derived_edges_only() {
        let (mut g, p, _, d) = tiny();
        g.add_link("Control", p, d);
        assert!(g.remove_link("Control", p, d));
        assert!(!g.remove_link("Control", p, d));
        assert!(g.links_of("Control").is_empty());
        assert_eq!(g.share_edges().count(), 3, "shareholdings untouched");
    }
}
