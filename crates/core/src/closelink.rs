//! Accumulated ownership (Definition 2.5) and close links (Definition 2.6).
//!
//! The accumulated ownership `Φ(x, y)` is the sum over all **simple paths**
//! from `x` to `y` of the product of the share fractions along each path.
//! Two companies `x`, `y` are *closely linked* for threshold `t` when
//! `Φ(x, y) ≥ t`, `Φ(y, x) ≥ t`, or some third party `z` has `Φ(z, x) ≥ t`
//! and `Φ(z, y) ≥ t` — the European Central Bank's collateral-eligibility
//! rule with `t = 0.2`.
//!
//! Two implementations are provided:
//!
//! * [`accumulated_from`] — **exact** per-source simple-path enumeration
//!   (one DFS enumerates the paths to *all* destinations simultaneously);
//!   exponential in the worst case, guarded by [`pgraph::algo::PathLimits`]
//!   — exactly the caveat Section 4.4 of the paper raises;
//! * [`walk_ownership_from`] — the **walk-sum** relaxation that the
//!   recursive Datalog formulation (Algorithm 6) computes: it counts
//!   non-simple walks too, over-approximating `Φ` on cyclic graphs while
//!   coinciding with it on DAGs. The difference is benchmarked as an
//!   ablation.

use std::collections::HashMap;

use pgraph::algo::PathLimits;
use pgraph::NodeId;

use crate::model::CompanyGraph;

/// Why a pair is closely linked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CloseLinkReason {
    /// `Φ(x, y) ≥ t` (Definition 2.6-i; the symmetric case ii is reported
    /// with the roles swapped).
    Accumulated(f64),
    /// A common third party `z` with `Φ(z, x) ≥ t` and `Φ(z, y) ≥ t`.
    CommonOwner(NodeId),
}

/// A close-link finding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloseLink {
    /// One endpoint.
    pub x: NodeId,
    /// The other endpoint.
    pub y: NodeId,
    /// Why the pair is linked.
    pub reason: CloseLinkReason,
}

/// Exact accumulated ownership `Φ(x, y)` (simple-path semantics).
pub fn accumulated_ownership(g: &CompanyGraph, x: NodeId, y: NodeId, limits: PathLimits) -> f64 {
    accumulated_from(g, x, limits)
        .get(&y)
        .copied()
        .unwrap_or(0.0)
}

/// Exact accumulated ownership from `x` to every reachable node: one DFS
/// enumerating all simple paths, accumulating `Σ Π w` per destination.
pub fn accumulated_from(g: &CompanyGraph, x: NodeId, limits: PathLimits) -> HashMap<NodeId, f64> {
    let mut acc: HashMap<NodeId, f64> = HashMap::new();
    let mut on_path = vec![false; g.node_count()];
    on_path[x.index()] = true;
    let mut paths_seen = 0usize;
    dfs(
        g,
        x,
        1.0,
        1,
        &mut on_path,
        &mut acc,
        &mut paths_seen,
        &limits,
    );
    acc
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &CompanyGraph,
    v: NodeId,
    prod: f64,
    depth: usize,
    on_path: &mut Vec<bool>,
    acc: &mut HashMap<NodeId, f64>,
    paths_seen: &mut usize,
    limits: &PathLimits,
) {
    if depth > limits.max_len || *paths_seen >= limits.max_paths {
        return;
    }
    for (y, w) in g.holdings(v) {
        if on_path[y.index()] {
            continue; // simple paths only
        }
        *acc.entry(y).or_insert(0.0) += prod * w;
        *paths_seen += 1;
        on_path[y.index()] = true;
        dfs(g, y, prod * w, depth + 1, on_path, acc, paths_seen, limits);
        on_path[y.index()] = false;
    }
}

/// Exact accumulated ownership *into* `y`: `Φ(z, y)` for every upstream
/// node `z`, via one reverse DFS over simple paths (the mirror image of
/// [`accumulated_from`]). Used by pairwise close-link decisions, which
/// need the common-owner set of a company.
pub fn accumulated_into(g: &CompanyGraph, y: NodeId, limits: PathLimits) -> HashMap<NodeId, f64> {
    let mut acc: HashMap<NodeId, f64> = HashMap::new();
    let mut on_path = vec![false; g.node_count()];
    on_path[y.index()] = true;
    let mut paths_seen = 0usize;
    rdfs(
        g,
        y,
        1.0,
        1,
        &mut on_path,
        &mut acc,
        &mut paths_seen,
        &limits,
    );
    acc
}

#[allow(clippy::too_many_arguments)]
fn rdfs(
    g: &CompanyGraph,
    v: NodeId,
    prod: f64,
    depth: usize,
    on_path: &mut Vec<bool>,
    acc: &mut HashMap<NodeId, f64>,
    paths_seen: &mut usize,
    limits: &PathLimits,
) {
    if depth > limits.max_len || *paths_seen >= limits.max_paths {
        return;
    }
    for (z, w) in g.shareholders(v) {
        if on_path[z.index()] {
            continue;
        }
        *acc.entry(z).or_insert(0.0) += prod * w;
        *paths_seen += 1;
        on_path[z.index()] = true;
        rdfs(g, z, prod * w, depth + 1, on_path, acc, paths_seen, limits);
        on_path[z.index()] = false;
    }
}

/// Walk-sum ownership from `x`: `Σ_{k=1..max_len} (W^k)_{x·}` computed by
/// sparse vector-matrix iteration, truncated when the residual mass falls
/// under `tol`. Counts non-simple walks; exact on DAGs.
pub fn walk_ownership_from(
    g: &CompanyGraph,
    x: NodeId,
    max_len: usize,
    tol: f64,
) -> HashMap<NodeId, f64> {
    let mut acc: HashMap<NodeId, f64> = HashMap::new();
    let mut frontier: HashMap<NodeId, f64> = HashMap::new();
    frontier.insert(x, 1.0);
    for _ in 0..max_len {
        let mut next: HashMap<NodeId, f64> = HashMap::new();
        for (&v, &mass) in &frontier {
            for (y, w) in g.holdings(v) {
                *next.entry(y).or_insert(0.0) += mass * w;
            }
        }
        if next.is_empty() {
            break;
        }
        let total: f64 = next.values().sum();
        for (&y, &m) in &next {
            *acc.entry(y).or_insert(0.0) += m;
        }
        if total < tol {
            break;
        }
        frontier = next;
    }
    acc
}

/// All close links for threshold `t` (Definition 2.6), between companies.
///
/// Pairs are reported once with `x < y`; a pair linked both by accumulated
/// ownership and by a common owner is reported with the accumulated-
/// ownership reason (condition (i)/(ii) takes precedence).
pub fn close_links(g: &CompanyGraph, t: f64, limits: PathLimits) -> Vec<CloseLink> {
    let mut found: HashMap<(NodeId, NodeId), CloseLinkReason> = HashMap::new();
    // Φ from every node with holdings (persons count as third parties z,
    // and company-to-company accumulation covers conditions (i)/(ii)).
    for z in g.graph().node_ids() {
        if g.graph().out_degree(z) == 0 {
            continue;
        }
        let phi = accumulated_from(g, z, limits);
        // Condition (i)/(ii): z itself is a company.
        if g.is_company(z) {
            for (&y, &v) in &phi {
                if v >= t && g.is_company(y) && y != z {
                    // Accumulated ownership (conditions i/ii) takes
                    // precedence over a previously found common owner.
                    let key = ordered(z, y);
                    let slot = found.entry(key).or_insert(CloseLinkReason::Accumulated(v));
                    if matches!(slot, CloseLinkReason::CommonOwner(_)) {
                        *slot = CloseLinkReason::Accumulated(v);
                    }
                }
            }
        }
        // Condition (iii): companies x ≠ y with Φ(z,x) ≥ t and Φ(z,y) ≥ t.
        let over: Vec<NodeId> = phi
            .iter()
            .filter(|(n, &v)| v >= t && g.is_company(**n) && **n != z)
            .map(|(n, _)| *n)
            .collect();
        for i in 0..over.len() {
            for j in i + 1..over.len() {
                let key = ordered(over[i], over[j]);
                found.entry(key).or_insert(CloseLinkReason::CommonOwner(z));
            }
        }
    }
    let mut out: Vec<CloseLink> = found
        .into_iter()
        .map(|((x, y), reason)| CloseLink { x, y, reason })
        .collect();
    out.sort_by_key(|l| (l.x, l.y));
    out
}

/// Family close link (Definition 2.9 / Algorithm 9): companies `x`, `y`
/// such that two *different* members `i ≠ j` of the family have
/// `Φ(i, x) ≥ t` and `Φ(j, y) ≥ t`.
pub fn family_close_links(
    g: &CompanyGraph,
    members: &[NodeId],
    t: f64,
    limits: PathLimits,
) -> Vec<(NodeId, NodeId)> {
    let reach: Vec<Vec<NodeId>> = members
        .iter()
        .map(|&m| {
            accumulated_from(g, m, limits)
                .into_iter()
                .filter(|(n, v)| *v >= t && g.is_company(*n))
                .map(|(n, _)| n)
                .collect()
        })
        .collect();
    let mut out: Vec<(NodeId, NodeId)> = Vec::new();
    for i in 0..members.len() {
        for j in 0..members.len() {
            if i == j {
                continue;
            }
            for &x in &reach[i] {
                for &y in &reach[j] {
                    if x != y {
                        let p = ordered(x, y);
                        if !out.contains(&p) {
                            out.push(p);
                        }
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CompanyGraphBuilder;
    use crate::paper_graphs::{figure1, figure2};

    const LIM: PathLimits = PathLimits {
        max_len: 32,
        max_paths: 1_000_000,
    };

    #[test]
    fn diamond_accumulation() {
        let mut b = CompanyGraphBuilder::new();
        let x = b.company("x");
        let a = b.company("a");
        let c = b.company("c");
        let y = b.company("y");
        b.share(x, a, 0.5);
        b.share(a, y, 0.5);
        b.share(x, c, 0.4);
        b.share(c, y, 0.25);
        let g = b.build();
        assert!((accumulated_ownership(&g, x, y, LIM) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn figure2_example_2_7() {
        let f = figure2();
        // Φ(C4, C7) = 0.2 → close link at t = 0.2 (Def 2.6-i).
        let phi = accumulated_ownership(&f.graph, f.node("C4"), f.node("C7"), LIM);
        assert!((phi - 0.2).abs() < 1e-9, "Φ(C4,C7) = {phi}");
        let links = close_links(&f.graph, 0.2, LIM);
        let c4c7 = links
            .iter()
            .find(|l| (l.x, l.y) == (f.node("C4"), f.node("C7")))
            .expect("C4-C7 closely linked");
        assert!(matches!(c4c7.reason, CloseLinkReason::Accumulated(_)));
        // P3 owns ≥20% of both C4 and C6 → close link via common owner.
        let c4c6 = links
            .iter()
            .find(|l| (l.x, l.y) == (f.node("C4"), f.node("C6")))
            .expect("C4-C6 closely linked via P3");
        assert_eq!(c4c6.reason, CloseLinkReason::CommonOwner(f.node("P3")));
    }

    #[test]
    fn figure1_g_and_i_via_p2() {
        // Introduction: "G and I are closely linked since P2 owns more
        // than 20% of both".
        let f = figure1();
        let links = close_links(&f.graph, 0.2, LIM);
        let gi = ordered(f.node("G"), f.node("I"));
        let found = links.iter().find(|l| (l.x, l.y) == gi).expect("G-I close");
        // G: 0.6 direct; I: 0.5 direct (+0.036 via G,H) — common owner P2.
        assert!(matches!(found.reason, CloseLinkReason::CommonOwner(z) if z == f.node("P2")));
    }

    #[test]
    fn walk_sum_matches_exact_on_dags() {
        let f = figure1();
        for x in f.graph.graph().node_ids() {
            let exact = accumulated_from(&f.graph, x, LIM);
            let walk = walk_ownership_from(&f.graph, x, 32, 1e-12);
            for (n, v) in &exact {
                let wv = walk.get(n).copied().unwrap_or(0.0);
                assert!((v - wv).abs() < 1e-9, "mismatch at {n}: {v} vs {wv}");
            }
        }
    }

    #[test]
    fn walk_sum_overapproximates_on_cycles() {
        let mut b = CompanyGraphBuilder::new();
        let a = b.company("a");
        let c = b.company("c");
        let d = b.company("d");
        b.share(a, c, 0.5);
        b.share(c, a, 0.5);
        b.share(c, d, 0.8);
        let g = b.build();
        let exact = accumulated_ownership(&g, a, d, LIM);
        assert!((exact - 0.4).abs() < 1e-12, "single simple path a→c→d");
        let walk = walk_ownership_from(&g, a, 64, 1e-15)
            .get(&d)
            .copied()
            .unwrap();
        // Walks a→(c→a)^k→c→d sum to 0.4/(1−0.25) = 0.5333…
        assert!(walk > exact + 0.1, "walk {walk} must exceed exact {exact}");
        assert!((walk - 0.4 / 0.75).abs() < 1e-6);
    }

    #[test]
    fn symmetric_condition_ii() {
        let mut b = CompanyGraphBuilder::new();
        let x = b.company("x");
        let y = b.company("y");
        b.share(y, x, 0.3);
        let g = b.build();
        let links = close_links(&g, 0.2, LIM);
        assert_eq!(links.len(), 1);
        assert_eq!((links[0].x, links[0].y), (x, y));
    }

    #[test]
    fn below_threshold_no_link() {
        let mut b = CompanyGraphBuilder::new();
        let x = b.company("x");
        let y = b.company("y");
        b.share(x, y, 0.19);
        let g = b.build();
        assert!(close_links(&g, 0.2, LIM).is_empty());
    }

    #[test]
    fn persons_are_third_parties_not_endpoints() {
        let mut b = CompanyGraphBuilder::new();
        let p = b.person("p");
        let x = b.company("x");
        let y = b.company("y");
        b.share(p, x, 0.5);
        b.share(p, y, 0.5);
        let g = b.build();
        let links = close_links(&g, 0.2, LIM);
        assert_eq!(links.len(), 1);
        assert_eq!((links[0].x, links[0].y), (x, y));
        assert_eq!(links[0].reason, CloseLinkReason::CommonOwner(p));
    }

    #[test]
    fn family_close_link_definition_2_9() {
        // Figure 1-style: P1 reaches D (75%), P2 reaches G (60%).
        // As a family, D and G become closely linked (Definition 2.9-ii) —
        // the Introduction's "prevent G from acting as a guarantor for D".
        let f = figure1();
        let pairs = family_close_links(&f.graph, &[f.node("P1"), f.node("P2")], 0.2, LIM);
        let dg = ordered(f.node("D"), f.node("G"));
        assert!(pairs.contains(&dg), "D-G family close link, got {pairs:?}");
    }

    #[test]
    fn family_close_link_requires_two_distinct_members() {
        let mut b = CompanyGraphBuilder::new();
        let p = b.person("p");
        let x = b.company("x");
        let y = b.company("y");
        b.share(p, x, 0.5);
        b.share(p, y, 0.5);
        let g = b.build();
        // One-member family: Definition 2.9-(ii) needs i ≠ j.
        assert!(family_close_links(&g, &[p], 0.2, LIM).is_empty());
    }

    #[test]
    fn path_limit_guards_blowup() {
        // Layered graph with exponentially many paths — truncated cleanly.
        let mut b = CompanyGraphBuilder::new();
        let mut layer = vec![b.company("s0"), b.company("s1")];
        for l in 1..12 {
            let n0 = b.company(&format!("a{l}"));
            let n1 = b.company(&format!("b{l}"));
            for &u in &layer {
                b.share(u, n0, 0.4);
                b.share(u, n1, 0.4);
            }
            layer = vec![n0, n1];
        }
        let g = b.build();
        let lim = PathLimits {
            max_len: 32,
            max_paths: 1000,
        };
        let acc = accumulated_from(&g, pgraph::NodeId(0), lim);
        assert!(!acc.is_empty());
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::model::CompanyGraphBuilder;

    const LIM: PathLimits = PathLimits {
        max_len: 32,
        max_paths: 1_000_000,
    };

    #[test]
    fn threshold_boundary_inclusive() {
        // Definition 2.6 uses ≥ t: exactly 0.2 qualifies.
        let mut b = CompanyGraphBuilder::new();
        let x = b.company("x");
        let y = b.company("y");
        b.share(x, y, 0.2);
        let g = b.build();
        assert_eq!(close_links(&g, 0.2, LIM).len(), 1);
        assert!(close_links(&g, 0.2000001, LIM).is_empty());
    }

    #[test]
    fn common_owner_must_reach_both_over_threshold() {
        let mut b = CompanyGraphBuilder::new();
        let p = b.person("p");
        let x = b.company("x");
        let y = b.company("y");
        b.share(p, x, 0.5);
        b.share(p, y, 0.19); // below threshold on one side
        let g = b.build();
        assert!(close_links(&g, 0.2, LIM).is_empty());
    }

    #[test]
    fn accumulated_from_self_is_empty_on_simple_edge() {
        let mut b = CompanyGraphBuilder::new();
        let x = b.company("x");
        let y = b.company("y");
        b.share(x, y, 0.5);
        let g = b.build();
        let acc = accumulated_from(&g, x, LIM);
        assert_eq!(acc.get(&x), None, "no path from x back to x");
        assert_eq!(acc.get(&y).copied(), Some(0.5));
    }
}

#[cfg(test)]
mod reverse_tests {
    use super::*;
    use crate::paper_graphs::figure2;

    const LIM: PathLimits = PathLimits {
        max_len: 32,
        max_paths: 1_000_000,
    };

    #[test]
    fn into_mirrors_from() {
        let f = figure2();
        let g = &f.graph;
        for y in g.graph().node_ids() {
            let up = accumulated_into(g, y, LIM);
            for (z, v) in up {
                let fwd = accumulated_ownership(g, z, y, LIM);
                assert!(
                    (v - fwd).abs() < 1e-9,
                    "Φ({z},{y}) mismatch: into {v} vs from {fwd}"
                );
            }
        }
    }
}
