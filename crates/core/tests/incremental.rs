//! Incremental-vs-from-scratch differential over the six bundled Vadalog
//! programs (Algorithms 5–9 and the generic pipeline).
//!
//! Each workload opens an [`IncrementalEngine`] session on the extensional
//! component of a paper figure (or a generated register extract), applies a
//! log of ownership insert/delete steps, and after every step compares the
//! full canonical database state against a fresh fixpoint over the
//! post-update facts. Updates only touch facts over *existing* nodes so
//! both sides intern the same symbols in the same order — the sessions'
//! byte-faithfulness contract for aggregate (`msum`) programs.

use datalog::{Const, Database, Engine, IncrementalEngine, Program, Update, UpdateStats};
use pgraph::NodeId;
use vada_link::mapping::load_facts;
use vada_link::paper_graphs::{figure1, figure2, NamedGraph};
use vada_link::programs::{
    CLOSELINK_PROGRAM, CONTROL_PROGRAM, FAMILY_CLOSELINK_PROGRAM, FAMILY_CONTROL_PROGRAM,
    GENERIC_PIPELINE_PROGRAM, PARTNER_PROGRAM,
};

/// A database-independent term spec: tuples are rebuilt per database so the
/// session and the from-scratch baseline never share interner state.
#[derive(Clone)]
enum V {
    N(NodeId),
    S(&'static str),
    F(f64),
    I(i64),
}

/// One op: `(insert?, predicate, tuple)`. Deletes of a step are applied
/// before its inserts, matching [`Update`] semantics.
type Op = (bool, &'static str, Vec<V>);
type Step = Vec<Op>;

fn build_tuple(mut sym: impl FnMut(&str) -> Const, vals: &[V]) -> Vec<Const> {
    vals.iter()
        .map(|v| match v {
            V::N(n) => sym(&format!("n{}", n.index())),
            V::S(s) => sym(s),
            V::F(x) => Const::float(*x),
            V::I(i) => Const::Int(*i),
        })
        .collect()
}

fn canonical_state(db: &Database) -> Vec<(String, Vec<String>)> {
    let mut preds: Vec<String> = (0..db.pred_count() as u32)
        .map(|p| db.pred_name(p).to_owned())
        .collect();
    preds.sort();
    preds
        .into_iter()
        .map(|p| {
            let rows = db.dump_canonical(&p);
            (p, rows)
        })
        .collect()
}

/// Replays the first `upto` steps into a fresh database and runs a full
/// fixpoint — the oracle the session must match exactly.
fn from_scratch(
    build: &dyn Fn() -> Database,
    make_engine: &dyn Fn() -> Engine,
    steps: &[Step],
    upto: usize,
) -> Database {
    let mut db = build();
    for step in &steps[..upto] {
        for (ins, pred, vals) in step {
            if !*ins {
                let t = build_tuple(|s| db.sym(s), vals);
                db.retract_fact(pred, &t);
            }
        }
        for (ins, pred, vals) in step {
            if *ins {
                let t = build_tuple(|s| db.sym(s), vals);
                db.assert_fact(pred, &t).expect("arity");
            }
        }
    }
    make_engine().run(&mut db).expect("fixpoint");
    db
}

/// Runs the whole log through one session, checking state equality after
/// every step. Returns the per-step propagation stats for strategy checks.
fn assert_incremental_matches(
    name: &str,
    build: &dyn Fn() -> Database,
    make_engine: &dyn Fn() -> Engine,
    steps: &[Step],
) -> Vec<UpdateStats> {
    let mut session =
        IncrementalEngine::with(make_engine(), build()).expect("session opens and runs");
    assert_eq!(
        canonical_state(session.db()),
        canonical_state(&from_scratch(build, make_engine, steps, 0)),
        "{name}: initial run diverges"
    );
    let mut stats = Vec::new();
    for upto in 1..=steps.len() {
        let mut update = Update::default();
        for (ins, pred, vals) in &steps[upto - 1] {
            let t = build_tuple(|s| session.sym(s), vals);
            if *ins {
                update.insert.push((pred.to_string(), t));
            } else {
                update.delete.push((pred.to_string(), t));
            }
        }
        let cs = session.apply_update(&update).expect("update applies");
        stats.push(cs.stats);
        assert_eq!(
            canonical_state(session.db()),
            canonical_state(&from_scratch(build, make_engine, steps, upto)),
            "{name}: diverged after step {upto}"
        );
    }
    stats
}

fn plain_engine(src: &'static str) -> impl Fn() -> Engine {
    move || {
        let program = Program::parse(src).expect("program parses");
        Engine::new(&program).expect("compiles")
    }
}

/// `#linkprob` stub for the partner program: a deterministic score from
/// the two surnames, so both sides compute identical floats.
fn partner_engine() -> Engine {
    let program = Program::parse(PARTNER_PROGRAM).expect("program parses");
    let mut engine = Engine::new(&program).expect("compiles");
    engine.register_function("linkprob", |ctx, args| {
        if args.len() != 10 {
            return Err(format!("expected 10 args, got {}", args.len()));
        }
        let s1 = ctx.str_of(args[1]).unwrap_or("").to_owned();
        let s2 = ctx.str_of(args[6]).unwrap_or("").to_owned();
        Ok(Const::float(if !s1.is_empty() && s1 == s2 {
            0.9
        } else {
            0.1
        }))
    });
    engine
}

/// The shared ownership-edit log over Figure 1: weaken an edge, remove a
/// whole path, restore it, and add a brand-new edge between existing
/// nodes. Deleting `P2 → G` while `G → H → I` persists forces close-link
/// facts with surviving alternative derivations through DRed phase B.
fn figure1_steps(f: &NamedGraph) -> Vec<Step> {
    let n = |s: &str| f.node(s);
    vec![
        // Weaken P1 → C below the control majority: delete + reinsert.
        vec![
            (false, "own", vec![V::N(n("P1")), V::N(n("C")), V::F(0.8)]),
            (true, "own", vec![V::N(n("P1")), V::N(n("C")), V::F(0.3)]),
        ],
        // Drop P2's direct stake in I; I stays reachable via G → H.
        vec![(false, "own", vec![V::N(n("P2")), V::N(n("I")), V::F(0.5)])],
        // Remove P2 → G too (now I is only held through H) and give P1 a
        // fresh stake in G.
        vec![
            (false, "own", vec![V::N(n("P2")), V::N(n("G")), V::F(0.6)]),
            (true, "own", vec![V::N(n("P1")), V::N(n("G")), V::F(0.55)]),
        ],
        // Restore the original picture.
        vec![
            (false, "own", vec![V::N(n("P1")), V::N(n("G")), V::F(0.55)]),
            (true, "own", vec![V::N(n("P2")), V::N(n("G")), V::F(0.6)]),
            (true, "own", vec![V::N(n("P2")), V::N(n("I")), V::F(0.5)]),
            (false, "own", vec![V::N(n("P1")), V::N(n("C")), V::F(0.3)]),
            (true, "own", vec![V::N(n("P1")), V::N(n("C")), V::F(0.8)]),
        ],
    ]
}

fn figure1_db() -> Database {
    let mut db = Database::new();
    load_facts(&figure1().graph, &mut db);
    db
}

fn figure1_db_th(t: f64) -> impl Fn() -> Database {
    move || {
        let mut db = figure1_db();
        db.assert_fact("th", &[Const::float(t)]).expect("arity");
        db
    }
}

fn with_members(db: &mut Database, fam: &str, members: &[&str], f: &NamedGraph) {
    for m in members {
        let t = [db.sym(fam), db.sym(&format!("n{}", f.node(m).index()))];
        db.assert_fact("member", &t).expect("arity");
    }
}

#[test]
fn control_program_tracks_ownership_edits() {
    let f = figure1();
    let steps = figure1_steps(&f);
    let stats = assert_incremental_matches(
        "control",
        &figure1_db,
        &plain_engine(CONTROL_PROGRAM),
        &steps,
    );
    assert!(
        stats.iter().all(|s| !s.full_recompute),
        "control must not fall back to full recomputation"
    );
}

#[test]
fn closelink_program_tracks_ownership_edits() {
    let f = figure1();
    let steps = figure1_steps(&f);
    let build = figure1_db_th(0.2);
    let stats = assert_incremental_matches(
        "close_link",
        &build,
        &plain_engine(CLOSELINK_PROGRAM),
        &steps,
    );
    assert!(stats.iter().all(|s| !s.full_recompute));
    assert!(
        stats.iter().any(|s| s.dred_units > 0),
        "close_link recursion should be DRed-maintained"
    );
    assert!(
        stats.iter().any(|s| s.rederived > 0),
        "deleting one of several derivation paths must exercise rederivation"
    );
}

#[test]
fn closelink_program_tracks_figure2_edits() {
    let f = figure2();
    let n = |s: &str| f.node(s);
    let build = move || {
        let mut db = Database::new();
        load_facts(&figure2().graph, &mut db);
        db.assert_fact("th", &[Const::float(0.2)]).expect("arity");
        db
    };
    // C4 and C7 are closely linked through the direct Φ = 0.2 edge
    // (Example 2.7); deleting it must retract the link, restoring it must
    // bring it back, and rerouting P3's stake reshapes Def 2.6-iii links.
    let steps: Vec<Step> = vec![
        vec![(false, "own", vec![V::N(n("C4")), V::N(n("C7")), V::F(0.2)])],
        vec![
            (false, "own", vec![V::N(n("P3")), V::N(n("C6")), V::F(0.4)]),
            (true, "own", vec![V::N(n("P3")), V::N(n("C5")), V::F(0.4)]),
        ],
        vec![
            (true, "own", vec![V::N(n("C4")), V::N(n("C7")), V::F(0.2)]),
            (false, "own", vec![V::N(n("P3")), V::N(n("C5")), V::F(0.4)]),
            (true, "own", vec![V::N(n("P3")), V::N(n("C6")), V::F(0.4)]),
        ],
    ];
    let stats = assert_incremental_matches(
        "close_link/fig2",
        &build,
        &plain_engine(CLOSELINK_PROGRAM),
        &steps,
    );
    assert!(stats.iter().all(|s| !s.full_recompute));
}

#[test]
fn family_control_program_tracks_membership_and_ownership() {
    let f = figure1();
    let src: &'static str = {
        // The family program composes with the control program (the paper
        // runs them as one reasoning pass).
        let combined = format!("{CONTROL_PROGRAM}\n{FAMILY_CONTROL_PROGRAM}");
        Box::leak(combined.into_boxed_str())
    };
    let build = {
        let members = figure1();
        move || {
            let mut db = figure1_db();
            with_members(&mut db, "fam", &["P1", "P2"], &members);
            db
        }
    };
    let mut steps = figure1_steps(&f);
    // Membership is extensional too: shrink and regrow the family.
    steps.push(vec![(
        false,
        "member",
        vec![V::S("fam"), V::N(f.node("P2"))],
    )]);
    steps.push(vec![(
        true,
        "member",
        vec![V::S("fam"), V::N(f.node("P2"))],
    )]);
    let stats = assert_incremental_matches("fcontrol", &build, &plain_engine(src), &steps);
    assert!(stats.iter().all(|s| !s.full_recompute));
}

#[test]
fn family_closelink_program_tracks_membership_and_ownership() {
    let f = figure1();
    let src: &'static str = {
        let combined = format!("{CLOSELINK_PROGRAM}\n{FAMILY_CLOSELINK_PROGRAM}");
        Box::leak(combined.into_boxed_str())
    };
    let build = {
        let members = figure1();
        move || {
            let mut db = figure1_db();
            db.assert_fact("th", &[Const::float(0.2)]).expect("arity");
            with_members(&mut db, "fam", &["P1", "P2"], &members);
            db
        }
    };
    let mut steps = figure1_steps(&f);
    steps.push(vec![(
        false,
        "member",
        vec![V::S("fam"), V::N(f.node("P1"))],
    )]);
    steps.push(vec![(
        true,
        "member",
        vec![V::S("fam"), V::N(f.node("P1"))],
    )]);
    let stats = assert_incremental_matches("f_close_link", &build, &plain_engine(src), &steps);
    assert!(stats.iter().all(|s| !s.full_recompute));
}

#[test]
fn partner_program_tracks_person_attribute_edits() {
    let f = figure1();
    let p1 = f.node("P1");
    let p2 = f.node("P2");
    let build = &figure1_db;
    // Figure 1 persons carry empty attribute strings; the edits below give
    // and take away a shared surname, flipping `person_link` through the
    // external `#linkprob` call (a Replay unit).
    let attrs = |n: NodeId, surname: &'static str| -> Vec<V> {
        vec![
            V::N(n),
            V::S(""),
            V::S(surname),
            V::I(0),
            V::S(""),
            V::S(""),
            V::S(""),
        ]
    };
    let steps: Vec<Step> = vec![
        vec![
            (false, "person_attr", attrs(p1, "")),
            (true, "person_attr", attrs(p1, "Rossi")),
        ],
        vec![
            (false, "person_attr", attrs(p2, "")),
            (true, "person_attr", attrs(p2, "Rossi")),
        ],
        vec![
            (false, "person_attr", attrs(p2, "Rossi")),
            (true, "person_attr", attrs(p2, "Bianchi")),
        ],
    ];
    let stats = assert_incremental_matches("person_link", build, &partner_engine, &steps);
    assert!(stats.iter().all(|s| !s.full_recompute));
    assert!(
        stats.iter().any(|s| s.replayed_units > 0),
        "external-function rules must go through replay"
    );
}

/// Random interleaved insert/delete sequences over Figure 1's ownership
/// edges. An abstract op log (set/remove on node pairs) is concretized
/// against a running edge map so deletes always name the exact stored
/// tuple and no new symbols are ever interned.
mod random_logs {
    use std::collections::HashMap;

    use proptest::prelude::*;

    use super::*;

    const WEIGHTS: [f64; 5] = [0.1, 0.25, 0.4, 0.55, 0.7];

    #[derive(Debug, Clone)]
    struct AbsOp {
        owner: usize,
        company: usize,
        weight: usize,
        remove: bool,
    }

    fn abs_ops() -> impl Strategy<Value = Vec<Vec<AbsOp>>> {
        let op = (0usize..10, 0usize..8, 0usize..WEIGHTS.len(), any::<bool>()).prop_map(
            |(owner, company, weight, remove)| AbsOp {
                owner,
                company,
                weight,
                remove,
            },
        );
        prop::collection::vec(prop::collection::vec(op, 1..4), 1..6)
    }

    /// Concretizes the abstract log: `remove` deletes the current edge (if
    /// any); otherwise the edge is set to the chosen weight (delete old +
    /// insert new). Empty steps are kept — they must be no-ops.
    fn concretize(f: &NamedGraph, log: &[Vec<AbsOp>]) -> Vec<Step> {
        let persons = ["P1", "P2"];
        let companies = ["C", "D", "E", "F", "G", "H", "I", "L"];
        // Owners are any node (companies own companies too).
        let owners: Vec<NodeId> = persons
            .iter()
            .chain(companies.iter())
            .map(|s| f.node(s))
            .collect();
        let targets: Vec<NodeId> = companies.iter().map(|s| f.node(s)).collect();
        let mut current: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        for e in f.graph.share_edges() {
            let (a, b) = f.graph.graph().endpoints(e);
            current.insert((a, b), f.graph.share(e));
        }
        log.iter()
            .map(|step| {
                let mut ops: Step = Vec::new();
                for op in step {
                    let a = owners[op.owner];
                    let b = targets[op.company];
                    if a == b {
                        continue;
                    }
                    if let Some(old) = current.remove(&(a, b)) {
                        ops.push((false, "own", vec![V::N(a), V::N(b), V::F(old)]));
                    }
                    if !op.remove {
                        let w = WEIGHTS[op.weight];
                        ops.push((true, "own", vec![V::N(a), V::N(b), V::F(w)]));
                        current.insert((a, b), w);
                    }
                }
                ops
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn control_random_logs_match_from_scratch(log in abs_ops()) {
            let f = figure1();
            let steps = concretize(&f, &log);
            assert_incremental_matches(
                "control/proptest", &figure1_db, &plain_engine(CONTROL_PROGRAM), &steps,
            );
        }

        #[test]
        fn closelink_random_logs_match_from_scratch(log in abs_ops()) {
            let f = figure1();
            let steps = concretize(&f, &log);
            let build = figure1_db_th(0.2);
            assert_incremental_matches(
                "close_link/proptest", &build, &plain_engine(CLOSELINK_PROGRAM), &steps,
            );
        }

        #[test]
        fn generic_random_logs_match_from_scratch(log in abs_ops()) {
            let f = figure1();
            let steps = concretize(&f, &log);
            assert_incremental_matches(
                "g_control/proptest", &figure1_db, &plain_engine(GENERIC_PIPELINE_PROGRAM), &steps,
            );
        }
    }
}

#[test]
fn generic_pipeline_tracks_ownership_edits() {
    let f = figure1();
    let steps = figure1_steps(&f);
    let stats = assert_incremental_matches(
        "g_control",
        &figure1_db,
        &plain_engine(GENERIC_PIPELINE_PROGRAM),
        &steps,
    );
    // Skolem invention forces replay; correctness (checked above) is the
    // point, strategy is diagnostic.
    assert!(stats.iter().any(|s| s.replayed_units > 0));
}
