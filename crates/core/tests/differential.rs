//! Sequential-vs-parallel differential tests across every parallel kernel.
//!
//! Each hot path that gained a parallel execution mode is run at threads
//! 1, 2 and 8 on the paper's example graphs and on `gen` synthetic graphs,
//! and the results are compared against the sequential reference:
//!
//! * **random walks** — byte-identical corpora (walks are a pure function
//!   of `(seed, walk index)`; threads only decide who computes them);
//! * **linkage scoring** — bit-identical score vectors (pairs are
//!   enumerated deterministically before any thread runs);
//! * **datalog fixpoint** — identical relations in insertion order (the
//!   round scheduler splices chunk outputs back in rule order);
//! * **SGNS training** — *statistically* equivalent: the sharded mode is a
//!   different (deterministic) schedule, so embeddings differ numerically
//!   but must induce the same downstream k-means clustering.

use datalog::{Database, Engine, EngineOptions, Program};
use embed::{generate_walks, kmeans, train_sgns, SgnsConfig, WalkConfig};
use gen::company::{generate, CompanyGraphConfig};
use linkage::{jaro_winkler, numeric_distance, score_blocks, FeatureBlocker};
use pgraph::{Csr, NodeId, PropertyGraph};
use vada_link::mapping::load_facts;
use vada_link::model::CompanyGraph;
use vada_link::paper_graphs::{figure1, figure2};

const THREADS: [usize; 3] = [1, 2, 8];

/// SplitMix64: deterministic inputs without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A mid-sized synthetic company graph (large enough that the walk
/// generator's parallel path genuinely runs: > 20k walks).
fn synthetic_graph() -> CompanyGraph {
    let out = generate(&CompanyGraphConfig {
        persons: 2_000,
        companies: 1_000,
        seed: 0xD1FF,
        ..Default::default()
    });
    CompanyGraph::new(out.graph)
}

// ---------------------------------------------------------------------------
// Random walks: byte-identical across thread counts
// ---------------------------------------------------------------------------

fn walk_config(threads: usize) -> WalkConfig {
    WalkConfig {
        walk_length: 12,
        walks_per_node: 8,
        p: 1.0,
        q: 0.5,
        seed: 0xA1C,
        threads,
    }
}

#[test]
fn walks_are_identical_across_thread_counts() {
    for csr in [
        Csr::from_graph(synthetic_graph().graph(), "w"),
        Csr::from_graph(figure1().graph.graph(), "w"),
    ] {
        let reference = generate_walks(&csr, &walk_config(1));
        assert!(!reference.is_empty());
        for threads in [2, 8] {
            let got = generate_walks(&csr, &walk_config(threads));
            assert_eq!(got, reference, "threads={threads} corpus diverged");
        }
    }
}

// ---------------------------------------------------------------------------
// Linkage scoring: bit-identical across thread counts
// ---------------------------------------------------------------------------

#[test]
fn linkage_scores_are_identical_across_thread_counts() {
    // Synthetic person records: (surname-ish token, birth year).
    let mut rng = Rng(0x11AC);
    let items: Vec<(String, i64)> = (0..4_000)
        .map(|_| {
            (
                format!("name{}", rng.below(300)),
                1930 + rng.below(80) as i64,
            )
        })
        .collect();
    let blocker = FeatureBlocker::with_block_count(64);
    let run = |threads: usize| -> Vec<(usize, usize, u64)> {
        score_blocks(
            &blocker,
            &items,
            threads,
            |it| it.0.clone(),
            |a, b| {
                let s = 0.5 * jaro_winkler(&a.0, &b.0)
                    + 0.5 * numeric_distance(a.1 as f64, b.1 as f64, 50.0);
                s.to_bits() // compare exact bit patterns, not approximate floats
            },
        )
        .into_iter()
        .collect()
    };
    let reference = run(1);
    assert!(!reference.is_empty());
    for threads in [2, 8] {
        assert_eq!(run(threads), reference, "threads={threads} diverged");
    }
}

// ---------------------------------------------------------------------------
// Datalog fixpoint: identical relations (insertion order included)
// ---------------------------------------------------------------------------

/// Full relation image in insertion order.
fn snapshot(db: &Database, preds: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for pred in preds {
        let Some(rel) = db.relation(pred) else {
            continue;
        };
        for (row, tuple) in rel.rows().enumerate() {
            let cells: Vec<String> = tuple.iter().map(|c| db.display(*c)).collect();
            out.push(format!("{pred}[{row}]({})", cells.join(",")));
        }
    }
    out
}

fn run_datalog(src: &str, threads: usize, setup: &dyn Fn(&mut Database)) -> Database {
    let program = Program::parse(src).unwrap();
    let options = EngineOptions {
        threads,
        ..EngineOptions::default()
    };
    let engine = Engine::with(&program, Default::default(), options).unwrap();
    let mut db = Database::new();
    setup(&mut db);
    engine.run(&mut db).unwrap();
    db
}

fn assert_datalog_identical(src: &str, preds: &[&str], setup: &dyn Fn(&mut Database)) {
    let reference = snapshot(&run_datalog(src, 1, setup), preds);
    assert!(!reference.is_empty(), "reference run derived nothing");
    for threads in [2, 8] {
        let got = snapshot(&run_datalog(src, threads, setup), preds);
        assert_eq!(got, reference, "threads={threads} diverged");
    }
}

#[test]
fn control_program_is_identical_across_thread_counts_on_paper_graphs() {
    for f in [figure1(), figure2()] {
        assert_datalog_identical(
            vada_link::programs::CONTROL_PROGRAM,
            &["control"],
            &|db: &mut Database| load_facts(&f.graph, db),
        );
    }
}

#[test]
fn reachability_is_identical_across_thread_counts_on_synthetic_graph() {
    // Every person is a source: wide frontiers per round, so the parallel
    // scheduler's chunked path genuinely executes on the ownership facts.
    let g = synthetic_graph();
    assert_datalog_identical(
        "reach(X, Y) :- person(X), own(X, Y, _).\n\
         reach(X, Z) :- reach(X, Y), own(Y, Z, _).",
        &["reach"],
        &|db: &mut Database| load_facts(&g, db),
    );
}

// ---------------------------------------------------------------------------
// SGNS: statistically equivalent via downstream k-means agreement
// ---------------------------------------------------------------------------

/// Two dense cliques joined by a single bridge edge — the structure the
/// first-level clustering must recover regardless of training schedule.
fn two_cliques(size: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    for _ in 0..2 * size {
        g.add_node("C");
    }
    for c in 0..2 {
        let base = c * size;
        for i in 0..size {
            for j in i + 1..size {
                g.add_edge("S", NodeId((base + i) as u32), NodeId((base + j) as u32));
            }
        }
    }
    g.add_edge("S", NodeId(0), NodeId(size as u32));
    g
}

/// Fraction of node pairs on which two clusterings agree (same-cluster vs
/// different-cluster) — the Rand index.
fn rand_index(a: &[u32], b: &[u32]) -> f64 {
    let n = a.len();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if (a[i] == a[j]) == (b[i] == b[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / total.max(1) as f64
}

#[test]
fn sgns_thread_counts_agree_on_downstream_clustering() {
    // A generously sized fixture: with 8 shards each worker trains only 8
    // walks per 64-walk batch against frozen matrices, so on *small*
    // graphs (where every worker touches the same embedding rows) the
    // summed per-shard deltas overshoot and the schedule degrades. From
    // ~100 nodes per community upward the row collisions thin out and the
    // sharded optimum matches the sequential one.
    let size = 100;
    let g = two_cliques(size);
    let csr = Csr::from_graph(&g, "w");
    let walks = generate_walks(
        &csr,
        &WalkConfig {
            walk_length: 15,
            walks_per_node: 10,
            p: 1.0,
            q: 1.0,
            seed: 7,
            threads: 0,
        },
    );
    let assignments: Vec<Vec<u32>> = THREADS
        .iter()
        .map(|&threads| {
            let emb = train_sgns(
                csr.node_count(),
                &walks,
                &SgnsConfig {
                    dims: 16,
                    window: 4,
                    negatives: 5,
                    epochs: 3,
                    learning_rate: 0.025,
                    seed: 7 ^ 0x5EED,
                    threads,
                },
            );
            kmeans(&emb, 2, 50, 11)
        })
        .collect();
    // Each thread count must separate the cliques (allowing the bridge
    // endpoints and a few strays), and all clusterings must agree pairwise.
    for (t, assign) in THREADS.iter().zip(&assignments) {
        let count =
            |lo: usize, hi: usize, label: u32| (lo..hi).filter(|&i| assign[i] == label).count();
        let a_label = assign[1];
        let b_label = assign[size + 1];
        assert_ne!(a_label, b_label, "threads={t}: cliques merged: {assign:?}");
        assert!(
            count(0, size, a_label) >= size - 3,
            "threads={t}: clique A impure: {assign:?}"
        );
        assert!(
            count(size, 2 * size, b_label) >= size - 3,
            "threads={t}: clique B impure: {assign:?}"
        );
    }
    for (t, assign) in THREADS.iter().zip(&assignments).skip(1) {
        let ri = rand_index(&assignments[0], assign);
        assert!(
            ri >= 0.80,
            "threads={t}: clustering diverged from sequential (Rand index {ri:.3})"
        );
    }
}
