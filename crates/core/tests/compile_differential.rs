//! Compiled-execution on/off differential tests over the bundled paper
//! programs.
//!
//! The closure-chain compiler (`datalog::eval::compile`) promises the same
//! contract the cost planner does, one level deeper: with compilation
//! enabled or disabled, at any thread count, the complete database image —
//! every relation, every row id, every provenance line, every invented
//! Skolem OID — must be byte-identical. These tests run all six bundled
//! Vadalog programs on the paper's figure graphs (and a generated company
//! graph for the recursive workloads) under
//! `{compile on, compile off} × {threads 1, 2, 8}` and compare all six
//! images against the compiled sequential reference.

use datalog::{Const, Database, Engine, EngineOptions, FunctionRegistry, Program};
use gen::company::{generate, CompanyGraphConfig};
use vada_link::mapping::{load_facts, sym_of};
use vada_link::model::CompanyGraph;
use vada_link::paper_graphs::{figure1, figure2, NamedGraph};
use vada_link::programs::{
    CLOSELINK_PROGRAM, CONTROL_PROGRAM, FAMILY_CLOSELINK_PROGRAM, FAMILY_CONTROL_PROGRAM,
    GENERIC_PIPELINE_PROGRAM, PARTNER_PROGRAM,
};

/// Full database image: every predicate (name order), rows in insertion
/// order — row ids are implicit in the line order — with provenance.
fn full_snapshot(db: &Database) -> Vec<String> {
    let mut preds: Vec<String> = (0..db.pred_count() as u32)
        .map(|p| db.pred_name(p).to_owned())
        .collect();
    preds.sort();
    let mut out = Vec::new();
    for pred in &preds {
        let Some(rel) = db.relation(pred) else {
            continue;
        };
        for (row, tuple) in rel.rows().enumerate() {
            let cells: Vec<String> = tuple.iter().map(|c| db.display(*c)).collect();
            let prov = rel
                .provenance(row as u32)
                .map(|p| format!(" by rule {} from {:?}", p.rule, p.parents))
                .unwrap_or_default();
            out.push(format!("{pred}[{row}]({}){prov}", cells.join(",")));
        }
    }
    out
}

/// Builds the engine for one configuration. The partner program needs its
/// external `#linkprob` function; other programs take an empty registry.
fn engine_for(src: &str, compile: bool, threads: usize) -> Engine {
    let program = Program::parse(src).expect("bundled program parses");
    let mut registry = FunctionRegistry::default();
    if src.contains("#linkprob") {
        registry.register("linkprob", |ctx, args| {
            let s = |i: usize| ctx.str_of(args[i]).unwrap_or("").to_owned();
            let same_surname = !s(1).is_empty() && s(1) == s(6);
            let gap = (args[2].as_i64().unwrap_or(0) - args[7].as_i64().unwrap_or(0)).abs();
            Ok(Const::float(if same_surname && gap < 25 {
                0.9
            } else {
                0.1
            }))
        });
    }
    let options = EngineOptions {
        compile,
        threads,
        provenance: true,
        ..EngineOptions::default()
    };
    Engine::with(&program, registry, options).expect("bundled program compiles")
}

/// Runs `src` at every compile/thread combination and asserts all six full
/// database images are identical to the compiled sequential reference.
fn assert_compile_invisible(name: &str, src: &str, setup: &dyn Fn(&mut Database)) {
    let run = |compile: bool, threads: usize| -> Vec<String> {
        let mut db = Database::new();
        setup(&mut db);
        engine_for(src, compile, threads)
            .run(&mut db)
            .expect("fixpoint");
        full_snapshot(&db)
    };
    let reference = run(true, 1);
    assert!(!reference.is_empty(), "{name}: reference derived nothing");
    for (compile, threads) in [(false, 1), (true, 2), (false, 2), (true, 8), (false, 8)] {
        let got = run(compile, threads);
        assert_eq!(
            got, reference,
            "{name}: compile={compile} threads={threads} diverged from compile=true threads=1"
        );
    }
}

fn add_threshold(db: &mut Database, t: f64) {
    db.assert_fact("th", &[Const::float(t)]).expect("arity");
}

fn add_family(f: &NamedGraph, db: &mut Database, members: &[&str]) {
    for m in members {
        let fam = db.sym("fam");
        let ms = sym_of(db, f.node(m));
        db.assert_fact("member", &[fam, ms]).expect("arity");
    }
}

/// A generated company graph big enough to cross the parallel scheduler's
/// sequential cutoff, so the multi-thread legs genuinely run chunked and
/// the compiled chunks interleave with splice-ordered merging.
fn generated_graph() -> CompanyGraph {
    let out = generate(&CompanyGraphConfig {
        persons: 400,
        companies: 200,
        seed: 0xC0DE,
        ..Default::default()
    });
    CompanyGraph::new(out.graph)
}

#[test]
fn control_is_compile_invariant_on_paper_graphs() {
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        assert_compile_invisible(
            &format!("control/{tag}"),
            CONTROL_PROGRAM,
            &|db: &mut Database| load_facts(&f.graph, db),
        );
    }
}

#[test]
fn closelink_is_compile_invariant_on_paper_graphs() {
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        assert_compile_invisible(
            &format!("closelink/{tag}"),
            CLOSELINK_PROGRAM,
            &|db: &mut Database| {
                load_facts(&f.graph, db);
                add_threshold(db, 0.2);
            },
        );
    }
}

#[test]
fn family_programs_are_compile_invariant() {
    let control_src = format!("{CONTROL_PROGRAM}\n{FAMILY_CONTROL_PROGRAM}");
    let closelink_src = format!("{CLOSELINK_PROGRAM}\n{FAMILY_CLOSELINK_PROGRAM}");
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        assert_compile_invisible(
            &format!("family_control/{tag}"),
            &control_src,
            &|db: &mut Database| {
                load_facts(&f.graph, db);
                add_family(&f, db, &["P1", "P2"]);
            },
        );
        assert_compile_invisible(
            &format!("family_closelink/{tag}"),
            &closelink_src,
            &|db: &mut Database| {
                load_facts(&f.graph, db);
                add_threshold(db, 0.2);
                add_family(&f, db, &["P1", "P2"]);
            },
        );
    }
}

#[test]
fn partner_is_compile_invariant() {
    // External function calls run inside compiled Let stages; the
    // generated graph carries person attributes and exercises them at
    // volume.
    let g = generated_graph();
    assert_compile_invisible(
        "partner/generated",
        PARTNER_PROGRAM,
        &|db: &mut Database| load_facts(&g, db),
    );
}

#[test]
fn generic_pipeline_is_compile_invariant() {
    // Skolem invention threads through shared state: compiled emit stages
    // must invent OIDs in exactly the interpreted order.
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        assert_compile_invisible(
            &format!("generic/{tag}"),
            GENERIC_PIPELINE_PROGRAM,
            &|db: &mut Database| load_facts(&f.graph, db),
        );
    }
}

#[test]
fn control_and_closelink_are_compile_invariant_at_scale() {
    // Tens of thousands of acc_own facts: the regime where frozen columnar
    // relations, CSR probes and compiled aggregate stages all carry real
    // traffic — and where epsilon-guarded msum convergence is most
    // sensitive to any reordering.
    let g = generated_graph();
    assert_compile_invisible(
        "control/generated",
        CONTROL_PROGRAM,
        &|db: &mut Database| load_facts(&g, db),
    );
    assert_compile_invisible(
        "closelink/generated",
        CLOSELINK_PROGRAM,
        &|db: &mut Database| {
            load_facts(&g, db);
            add_threshold(db, 0.2);
        },
    );
}
