//! Planner on/off differential tests over the bundled paper programs.
//!
//! The cost-based join planner promises *byte-identical* databases: same
//! derived tuples, same insertion order (hence row ids), same provenance —
//! with planning enabled or disabled, at any thread count. These tests run
//! every bundled Vadalog program on the paper's figure graphs and on a
//! generated company graph, under the four combinations
//! `{plan on, plan off} × {threads 1, threads 4}`, and compare the
//! complete database image (every relation, every row, provenance lines
//! included) against the sequential planned run.
//!
//! The golden suite (`tests/golden`) freezes `@output` semantics; this
//! suite freezes something stronger — the planner must be invisible in the
//! bytes of the database, not just in the output relation.

use datalog::{Const, Database, Engine, EngineOptions, FunctionRegistry, Program};
use gen::company::{generate, CompanyGraphConfig};
use vada_link::mapping::{load_facts, sym_of};
use vada_link::model::CompanyGraph;
use vada_link::paper_graphs::{figure1, figure2, NamedGraph};
use vada_link::programs::{
    CLOSELINK_PROGRAM, CONTROL_PROGRAM, FAMILY_CLOSELINK_PROGRAM, FAMILY_CONTROL_PROGRAM,
    GENERIC_PIPELINE_PROGRAM, PARTNER_PROGRAM,
};

/// Full database image: every predicate (name order), rows in insertion
/// order — row ids are implicit in the line order — with provenance.
fn full_snapshot(db: &Database) -> Vec<String> {
    let mut preds: Vec<String> = (0..db.pred_count() as u32)
        .map(|p| db.pred_name(p).to_owned())
        .collect();
    preds.sort();
    let mut out = Vec::new();
    for pred in &preds {
        let Some(rel) = db.relation(pred) else {
            continue;
        };
        for (row, tuple) in rel.rows().enumerate() {
            let cells: Vec<String> = tuple.iter().map(|c| db.display(*c)).collect();
            let prov = rel
                .provenance(row as u32)
                .map(|p| format!(" by rule {} from {:?}", p.rule, p.parents))
                .unwrap_or_default();
            out.push(format!("{pred}[{row}]({}){prov}", cells.join(",")));
        }
    }
    out
}

/// Builds the engine for one configuration. The partner program needs its
/// external `#linkprob` function; other programs take an empty registry.
fn engine_for(src: &str, plan: bool, threads: usize) -> Engine {
    let program = Program::parse(src).expect("bundled program parses");
    let mut registry = FunctionRegistry::default();
    if src.contains("#linkprob") {
        registry.register("linkprob", |ctx, args| {
            let s = |i: usize| ctx.str_of(args[i]).unwrap_or("").to_owned();
            let same_surname = !s(1).is_empty() && s(1) == s(6);
            let gap = (args[2].as_i64().unwrap_or(0) - args[7].as_i64().unwrap_or(0)).abs();
            Ok(Const::float(if same_surname && gap < 25 {
                0.9
            } else {
                0.1
            }))
        });
    }
    let options = EngineOptions {
        plan,
        threads,
        provenance: true,
        ..EngineOptions::default()
    };
    Engine::with(&program, registry, options).expect("bundled program compiles")
}

/// Runs `src` at every plan/thread combination and asserts all four full
/// database images are identical to the planned sequential reference.
fn assert_plan_invisible(name: &str, src: &str, setup: &dyn Fn(&mut Database)) {
    let run = |plan: bool, threads: usize| -> Vec<String> {
        let mut db = Database::new();
        setup(&mut db);
        engine_for(src, plan, threads)
            .run(&mut db)
            .expect("fixpoint");
        full_snapshot(&db)
    };
    let reference = run(true, 1);
    assert!(!reference.is_empty(), "{name}: reference derived nothing");
    for (plan, threads) in [(false, 1), (true, 4), (false, 4)] {
        let got = run(plan, threads);
        assert_eq!(
            got, reference,
            "{name}: plan={plan} threads={threads} diverged from plan=true threads=1"
        );
    }
}

fn add_threshold(db: &mut Database, t: f64) {
    db.assert_fact("th", &[Const::float(t)]).expect("arity");
}

fn add_family(f: &NamedGraph, db: &mut Database, members: &[&str]) {
    for m in members {
        let fam = db.sym("fam");
        let ms = sym_of(db, f.node(m));
        db.assert_fact("member", &[fam, ms]).expect("arity");
    }
}

/// A generated company graph big enough to cross the parallel scheduler's
/// sequential cutoff, so the threads=4 legs genuinely run chunked.
fn generated_graph() -> CompanyGraph {
    let out = generate(&CompanyGraphConfig {
        persons: 600,
        companies: 300,
        seed: 0x9E37,
        ..Default::default()
    });
    CompanyGraph::new(out.graph)
}

#[test]
fn control_is_plan_invariant_on_paper_graphs() {
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        assert_plan_invisible(
            &format!("control/{tag}"),
            CONTROL_PROGRAM,
            &|db: &mut Database| load_facts(&f.graph, db),
        );
    }
}

#[test]
fn closelink_is_plan_invariant_on_paper_graphs() {
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        assert_plan_invisible(
            &format!("closelink/{tag}"),
            CLOSELINK_PROGRAM,
            &|db: &mut Database| {
                load_facts(&f.graph, db);
                add_threshold(db, 0.2);
            },
        );
    }
}

#[test]
fn family_programs_are_plan_invariant() {
    let control_src = format!("{CONTROL_PROGRAM}\n{FAMILY_CONTROL_PROGRAM}");
    let closelink_src = format!("{CLOSELINK_PROGRAM}\n{FAMILY_CLOSELINK_PROGRAM}");
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        assert_plan_invisible(
            &format!("family_control/{tag}"),
            &control_src,
            &|db: &mut Database| {
                load_facts(&f.graph, db);
                add_family(&f, db, &["P1", "P2"]);
            },
        );
        assert_plan_invisible(
            &format!("family_closelink/{tag}"),
            &closelink_src,
            &|db: &mut Database| {
                load_facts(&f.graph, db);
                add_threshold(db, 0.2);
                add_family(&f, db, &["P1", "P2"]);
            },
        );
    }
}

#[test]
fn partner_is_plan_invariant() {
    // The figure graphs carry no person attributes; the generated graph
    // does, and its size exercises the planner on the quadratic self-join.
    let g = generated_graph();
    assert_plan_invisible(
        "partner/generated",
        PARTNER_PROGRAM,
        &|db: &mut Database| load_facts(&g, db),
    );
}

#[test]
fn generic_pipeline_is_plan_invariant() {
    // Skolem invention threads through shared state: OIDs must come out in
    // the same order whatever the planner does.
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        assert_plan_invisible(
            &format!("generic/{tag}"),
            GENERIC_PIPELINE_PROGRAM,
            &|db: &mut Database| load_facts(&f.graph, db),
        );
    }
}

#[test]
fn control_and_closelink_are_plan_invariant_at_scale() {
    // The generated graph produces tens of thousands of acc_own facts —
    // the regime where the planner actually reorders differently per round.
    let g = generated_graph();
    assert_plan_invisible(
        "control/generated",
        CONTROL_PROGRAM,
        &|db: &mut Database| load_facts(&g, db),
    );
    assert_plan_invisible(
        "closelink/generated",
        CLOSELINK_PROGRAM,
        &|db: &mut Database| {
            load_facts(&g, db);
            add_threshold(db, 0.2);
        },
    );
}
