//! Demanded-query differentials: the byte-equivalence contract of
//! `Engine::query`.
//!
//! For every bundled program and a spread of goal shapes (bound-first,
//! bound-second, fully bound, all-free), the goal-directed path — magic
//! rewrite, demand-hinted planning, evaluation of the rewritten program —
//! must produce *byte-identical* canonical rows to filtering the goal out
//! of a full bottom-up fixpoint, at thread counts 1, 2 and 8. Where the
//! rewrite is expected to restrict evaluation (`demanded == true`) or to
//! fall back (all-free goals, `@post` targets), that is asserted too: a
//! silent fallback would keep answers correct while losing the entire
//! point of the rewrite.

use datalog::{Const, Database, Engine, EngineOptions, Program, Query};
use gen::company::{generate, CompanyGraphConfig};
use vada_link::mapping::load_facts;
use vada_link::model::CompanyGraph;
use vada_link::paper_graphs::{figure1, figure2, NamedGraph};
use vada_link::programs::{
    CLOSELINK_PROGRAM, CONTROL_PROGRAM, FAMILY_CLOSELINK_PROGRAM, FAMILY_CONTROL_PROGRAM,
    GENERIC_PIPELINE_PROGRAM, PARTNER_PROGRAM,
};

const THREADS: [usize; 3] = [1, 2, 8];

/// The database symbol of a named figure node (`load_facts` keys facts by
/// `n<node index>`).
fn node_sym(f: &NamedGraph, name: &str) -> String {
    format!("n{}", f.node(name).index())
}

/// Asserts the byte-equivalence contract for one `(program, facts, goal)`
/// triple across all thread counts, and — when `expect_demanded` is given —
/// that the rewrite took the expected path.
fn check_goal(
    src: &str,
    setup: &dyn Fn(&mut Database),
    register: &dyn Fn(&mut Engine),
    goal: &str,
    expect_demanded: Option<bool>,
) {
    let program = Program::parse(src).expect("valid program");
    let q = Query::parse(goal).expect("valid goal");
    for threads in THREADS {
        let options = EngineOptions {
            threads,
            ..EngineOptions::default()
        };
        let mut engine = Engine::with(&program, Default::default(), options).expect("compiles");
        register(&mut engine);
        let mut base = Database::new();
        setup(&mut base);

        let mut full = base.clone();
        engine.run(&mut full).expect("full fixpoint");
        let reference = datalog::goal_matches(&full, &q);

        let answer = engine.query(&base, goal).expect("goal-directed run");
        assert_eq!(
            answer.rows, reference,
            "goal `{goal}` diverged from full evaluation (threads={threads}, \
             demanded={}, fallback={:?})",
            answer.demanded, answer.fallback_reason
        );
        if let Some(expected) = expect_demanded {
            assert_eq!(
                answer.demanded, expected,
                "goal `{goal}`: expected demanded={expected} (threads={threads}, \
                 fallback={:?})",
                answer.fallback_reason
            );
        }
    }
}

fn no_register(_: &mut Engine) {}

// ---------------------------------------------------------------------------
// Paper figures, all six bundled programs
// ---------------------------------------------------------------------------

#[test]
fn control_point_lookups_match_full_evaluation_on_paper_graphs() {
    for (f, name) in [(figure1(), "C"), (figure2(), "C4")] {
        let setup = |db: &mut Database| load_facts(&f.graph, db);
        let c = node_sym(&f, name);
        // Bound-first: the canonical "what does C control" point lookup.
        check_goal(
            CONTROL_PROGRAM,
            &setup,
            &no_register,
            &format!("control(\"{c}\", X)?"),
            Some(true),
        );
        // Bound-second: "who controls C" — the reverse adornment.
        check_goal(
            CONTROL_PROGRAM,
            &setup,
            &no_register,
            &format!("control(X, \"{c}\")?"),
            Some(true),
        );
        // Fully bound: membership test.
        check_goal(
            CONTROL_PROGRAM,
            &setup,
            &no_register,
            &format!("control(\"{c}\", \"{c}\")?"),
            Some(true),
        );
        // All-free: nothing to demand; must fall back and still agree.
        check_goal(
            CONTROL_PROGRAM,
            &setup,
            &no_register,
            "control(X, Y)?",
            Some(false),
        );
    }
}

#[test]
fn control_goal_over_never_interned_constant_is_empty() {
    let f = figure1();
    let setup = |db: &mut Database| load_facts(&f.graph, db);
    check_goal(
        CONTROL_PROGRAM,
        &setup,
        &no_register,
        "control(\"no_such_node\", X)?",
        None,
    );
}

#[test]
fn close_link_point_lookups_match_full_evaluation_on_paper_graphs() {
    for (f, name) in [(figure1(), "D"), (figure2(), "C4")] {
        let setup = |db: &mut Database| {
            load_facts(&f.graph, db);
            db.assert_fact("th", &[Const::float(0.2)]).expect("arity");
        };
        let d = node_sym(&f, name);
        // The symmetry rule `close_link(X, Y) :- close_link(Y, X)` makes
        // the bf variant demand the fb variant and vice versa — the
        // adornment worklist must close over both.
        check_goal(
            CLOSELINK_PROGRAM,
            &setup,
            &no_register,
            &format!("close_link(\"{d}\", X)?"),
            Some(true),
        );
        check_goal(
            CLOSELINK_PROGRAM,
            &setup,
            &no_register,
            &format!("close_link(X, \"{d}\")?"),
            Some(true),
        );
        // An aggregate-headed goal: acc_own's group keys are exactly the
        // bound head positions, so demand restriction must not truncate
        // contributor sets.
        check_goal(
            CLOSELINK_PROGRAM,
            &setup,
            &no_register,
            &format!("acc_own(\"{d}\", X, V)?"),
            Some(true),
        );
    }
}

#[test]
fn family_control_point_lookups_match_full_evaluation() {
    let f = figure1();
    let src = format!("{CONTROL_PROGRAM}\n{FAMILY_CONTROL_PROGRAM}");
    let p1 = node_sym(&f, "P1");
    let p2 = node_sym(&f, "P2");
    let setup = move |db: &mut Database| {
        load_facts(&f.graph, db);
        for m in [&p1, &p2] {
            let fam = db.sym("fam");
            let ms = db.sym(m);
            db.assert_fact("member", &[fam, ms]).expect("arity");
        }
    };
    check_goal(
        &src,
        &setup,
        &no_register,
        "fcontrol(\"fam\", X)?",
        Some(true),
    );
    check_goal(&src, &setup, &no_register, "fcontrol(F, Y)?", Some(false));
}

#[test]
fn family_close_link_point_lookups_match_full_evaluation() {
    let f = figure1();
    let src = format!("{CLOSELINK_PROGRAM}\n{FAMILY_CLOSELINK_PROGRAM}");
    let p1 = node_sym(&f, "P1");
    let p2 = node_sym(&f, "P2");
    let d = node_sym(&f, "D");
    let setup = move |db: &mut Database| {
        load_facts(&f.graph, db);
        db.assert_fact("th", &[Const::float(0.2)]).expect("arity");
        for m in [&p1, &p2] {
            let fam = db.sym("fam");
            let ms = db.sym(m);
            db.assert_fact("member", &[fam, ms]).expect("arity");
        }
    };
    check_goal(
        &src,
        &setup,
        &no_register,
        &format!("f_close_link(\"{d}\", X)?"),
        None,
    );
}

#[test]
fn partner_point_lookups_match_full_evaluation() {
    let f = figure1();
    let p1 = node_sym(&f, "P1");
    let setup = |db: &mut Database| load_facts(&f.graph, db);
    // A deterministic stand-in for the trained link-probability model:
    // same surname (arg 1 vs arg 6) scores high, anything else low.
    let register = |engine: &mut Engine| {
        engine.register_function("linkprob", |ctx, args| {
            let a = ctx.str_of(args[1]).unwrap_or("").to_owned();
            let b = ctx.str_of(args[6]).unwrap_or("").to_owned();
            let p = if !a.is_empty() && a == b { 0.9 } else { 0.1 };
            Ok(Const::float(p))
        });
    };
    check_goal(
        PARTNER_PROGRAM,
        &setup,
        &register,
        &format!("person_link(\"{p1}\", X)?"),
        Some(true),
    );
}

#[test]
fn generic_pipeline_point_lookups_match_full_evaluation() {
    let f = figure1();
    let setup = |db: &mut Database| load_facts(&f.graph, db);
    let c = node_sym(&f, "C");
    // g_control's head vars flow through Skolem-invented node OIDs; the
    // greedy sideways pass has to route the binding node → g_ctl → node.
    check_goal(
        GENERIC_PIPELINE_PROGRAM,
        &setup,
        &no_register,
        &format!("g_control(\"{c}\", X)?"),
        None,
    );
}

// ---------------------------------------------------------------------------
// Synthetic graphs: larger fact sets, several distinct sources
// ---------------------------------------------------------------------------

fn synthetic_graph(persons: usize, companies: usize, seed: u64) -> CompanyGraph {
    let out = generate(&CompanyGraphConfig {
        persons,
        companies,
        seed,
        ..Default::default()
    });
    CompanyGraph::new(out.graph)
}

/// A handful of company symbols spread across the id range.
fn company_syms(g: &CompanyGraph, n: usize) -> Vec<String> {
    let all: Vec<String> = g.companies().map(|c| format!("n{}", c.index())).collect();
    assert!(!all.is_empty());
    (0..n)
        .map(|i| all[i * (all.len() - 1) / n.max(1)].clone())
        .collect()
}

#[test]
fn control_point_lookups_match_full_evaluation_on_synthetic_graphs() {
    let g = synthetic_graph(400, 250, 0xA61C);
    let setup = |db: &mut Database| load_facts(&g, db);
    for c in company_syms(&g, 3) {
        check_goal(
            CONTROL_PROGRAM,
            &setup,
            &no_register,
            &format!("control(\"{c}\", X)?"),
            Some(true),
        );
    }
}

#[test]
fn close_link_point_lookups_match_full_evaluation_on_synthetic_graphs() {
    let g = synthetic_graph(300, 200, 0xC10);
    let setup = |db: &mut Database| {
        load_facts(&g, db);
        db.assert_fact("th", &[Const::float(0.2)]).expect("arity");
    };
    for c in company_syms(&g, 2) {
        check_goal(
            CLOSELINK_PROGRAM,
            &setup,
            &no_register,
            &format!("close_link(\"{c}\", X)?"),
            Some(true),
        );
    }
}
