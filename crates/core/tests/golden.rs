//! Golden-snapshot tests for the bundled paper programs.
//!
//! Every Vadalog program in [`vada_link::programs`] is executed on the
//! paper's fixed example graphs and its full `@output` relation is compared
//! line for line against a checked-in snapshot under `tests/golden/`. The
//! snapshots freeze the *observable semantics* of the programs — any engine
//! change (including the parallel evaluation path, which runs here under
//! whatever `VADALINK_THREADS` the CI leg sets) that alters a derived fact
//! set shows up as a readable diff.
//!
//! Regenerate after an intentional semantic change with:
//! `UPDATE_GOLDEN=1 cargo test -p vada-link --test golden`

use std::path::PathBuf;

use datalog::{Const, Database, Engine, Program};
use pgraph::NodeId;
use vada_link::mapping::{load_facts, sym_of};
use vada_link::model::CompanyGraphBuilder;
use vada_link::paper_graphs::{figure1, figure2, NamedGraph};
use vada_link::programs::{
    CLOSELINK_PROGRAM, CONTROL_PROGRAM, FAMILY_CLOSELINK_PROGRAM, FAMILY_CONTROL_PROGRAM,
    GENERIC_PIPELINE_PROGRAM, PARTNER_PROGRAM,
};

/// Renders a relation with node symbols (`n<idx>`) replaced by the graph's
/// stable node names, sorted for order-independent comparison.
fn rendered(db: &Database, f: &NamedGraph, pred: &str) -> Vec<String> {
    let Some(rel) = db.relation(pred) else {
        return Vec::new();
    };
    let mut lines: Vec<String> = rel
        .rows()
        .map(|row| {
            let cells: Vec<String> = row
                .iter()
                .map(|c| {
                    let s = db.display(*c);
                    let node = matches!(*c, Const::Sym(_))
                        .then(|| s.strip_prefix('n').and_then(|r| r.parse::<u32>().ok()))
                        .flatten();
                    match node {
                        Some(idx) => f.name_of(NodeId(idx)).to_owned(),
                        None => s,
                    }
                })
                .collect();
            format!("{pred}({})", cells.join(","))
        })
        .collect();
    lines.sort();
    lines.dedup();
    lines
}

fn check_golden(name: &str, lines: &[String]) {
    assert!(!lines.is_empty(), "{name}: snapshot must not be empty");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    let actual = lines.join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); create it with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        actual, expected,
        "{name}: output diverged from tests/golden/{name}.txt \
         (regenerate with UPDATE_GOLDEN=1 if the change is intentional)"
    );
}

/// Runs `src` over `f` with extra setup; returns the populated database.
fn run(src: &str, f: &NamedGraph, setup: impl FnOnce(&NamedGraph, &mut Database)) -> Database {
    let program = Program::parse(src).expect("valid program");
    let engine = Engine::new(&program).expect("compiles");
    let mut db = Database::new();
    load_facts(&f.graph, &mut db);
    setup(f, &mut db);
    engine.run(&mut db).expect("fixpoint");
    db
}

fn add_threshold(db: &mut Database, t: f64) {
    db.assert_fact("th", &[Const::float(t)]).expect("arity");
}

fn add_family(f: &NamedGraph, db: &mut Database, members: &[&str]) {
    for m in members {
        let fam = db.sym("fam");
        let ms = sym_of(db, f.node(m));
        db.assert_fact("member", &[fam, ms]).expect("arity");
    }
}

#[test]
fn control_program_snapshots() {
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        let db = run(CONTROL_PROGRAM, &f, |_, _| {});
        check_golden(&format!("control_{tag}"), &rendered(&db, &f, "control"));
    }
}

#[test]
fn closelink_program_snapshots() {
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        let db = run(CLOSELINK_PROGRAM, &f, |_, db| add_threshold(db, 0.2));
        check_golden(
            &format!("closelink_{tag}"),
            &rendered(&db, &f, "close_link"),
        );
    }
}

#[test]
fn family_control_program_snapshots() {
    let src = format!("{CONTROL_PROGRAM}\n{FAMILY_CONTROL_PROGRAM}");
    let families: [(&str, &[&str]); 2] = [("figure1", &["P1", "P2"]), ("figure2", &["P1", "P2"])];
    for ((tag, members), f) in families.into_iter().zip([figure1(), figure2()]) {
        let db = run(&src, &f, |f, db| add_family(f, db, members));
        check_golden(
            &format!("family_control_{tag}"),
            &rendered(&db, &f, "fcontrol"),
        );
    }
}

#[test]
fn family_closelink_program_snapshots() {
    let src = format!("{CLOSELINK_PROGRAM}\n{FAMILY_CLOSELINK_PROGRAM}");
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        let db = run(&src, &f, |f, db| {
            add_threshold(db, 0.2);
            add_family(f, db, &["P1", "P2"]);
        });
        check_golden(
            &format!("family_closelink_{tag}"),
            &rendered(&db, &f, "f_close_link"),
        );
    }
}

#[test]
fn generic_pipeline_program_snapshots() {
    for (tag, f) in [("figure1", figure1()), ("figure2", figure2())] {
        let db = run(GENERIC_PIPELINE_PROGRAM, &f, |_, _| {});
        check_golden(&format!("generic_{tag}"), &rendered(&db, &f, "g_control"));
    }
}

/// A small hand-written household for the partner program: the paper's
/// figure graphs carry no person attributes, so this fixture supplies
/// deterministic ones (two same-surname couples plus an unrelated person).
fn partner_fixture() -> NamedGraph {
    use pgraph::Value;
    let mut b = CompanyGraphBuilder::new();
    let mut names = std::collections::HashMap::new();
    let persons = [
        ("Ada", "Rossi", 1960, "Rome", "Via A 1"),
        ("Bruno", "Rossi", 1958, "Rome", "Via A 1"),
        ("Carla", "Bianchi", 1970, "Milan", "Via B 2"),
        ("Dario", "Bianchi", 1971, "Milan", "Via B 2"),
        ("Elena", "Verdi", 1985, "Turin", "Via C 3"),
    ];
    for (name, surname, birth, city, addr) in persons {
        let p = b.person(name);
        b.prop(p, "surname", Value::Str(surname.to_owned()))
            .prop(p, "birth", Value::Int(birth))
            .prop(p, "birth_city", Value::Str(city.to_owned()))
            .prop(p, "address", Value::Str(addr.to_owned()));
        names.insert(name.to_owned(), p);
    }
    let c = b.company("Acme");
    names.insert("Acme".to_owned(), c);
    for p in ["Ada", "Bruno", "Carla", "Dario", "Elena"] {
        b.share(names[p], c, 0.2);
    }
    NamedGraph::from_names(b.build(), names)
}

#[test]
fn partner_program_snapshot() {
    let f = partner_fixture();
    let program = Program::parse(PARTNER_PROGRAM).expect("valid program");
    let mut engine = Engine::new(&program).expect("compiles");
    // Deterministic stand-in for the trained Bayes model: partners iff the
    // surnames match and the birth years are within a generation.
    engine.register_function("linkprob", |ctx, args| {
        let s = |i: usize| ctx.str_of(args[i]).unwrap_or("").to_owned();
        let same_surname = !s(1).is_empty() && s(1) == s(6);
        let gap = (args[2].as_i64().unwrap_or(0) - args[7].as_i64().unwrap_or(0)).abs();
        Ok(Const::float(if same_surname && gap < 25 {
            0.9
        } else {
            0.1
        }))
    });
    let mut db = Database::new();
    load_facts(&f.graph, &mut db);
    engine.run(&mut db).expect("fixpoint");
    check_golden("partner_household", &rendered(&db, &f, "person_link"));
}

/// The `--explain-plan` report is itself a reviewable artifact: literal
/// orders, probe keys, cardinality estimates, and the per-rule executor
/// choice (batched / tuple / interpreted) are all frozen here so a
/// planner or executor-dispatch change shows up as a readable diff.
#[test]
fn plan_report_snapshots() {
    use vada_link::programs::plan_report;
    let f = figure1();
    for (tag, src, threshold) in [
        ("control", CONTROL_PROGRAM, None),
        ("closelink", CLOSELINK_PROGRAM, Some(0.2)),
    ] {
        let report = plan_report(src, &f.graph, threshold);
        let lines: Vec<String> = report.lines().map(str::to_owned).collect();
        check_golden(&format!("plan_report_{tag}"), &lines);
    }
}
