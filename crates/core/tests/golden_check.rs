//! Golden snapshots of `vadalink check`-style analyzer output for the
//! deliberately broken bundled-program variants, plus the diagnostic span
//! audit.
//!
//! Each [`vada_link::programs::BROKEN_VARIANTS`] entry is analyzed under
//! the strict profile (the one `vadalink check` uses) and the rendered
//! diagnostics — `line:col: severity[CODE]: message`, the analyzer's
//! deterministic order — are compared line for line against a checked-in
//! snapshot under `tests/golden/`. Any change to a message, span, code or
//! severity shows up as a readable diff.
//!
//! Regenerate after an intentional diagnostic change with:
//! `UPDATE_GOLDEN=1 cargo test -p vada-link --test golden_check`

use std::path::PathBuf;

use datalog::{analyze_with, AnalysisConfig, Program};
use vada_link::programs::BROKEN_VARIANTS;

fn check_golden(name: &str, lines: &[String]) {
    assert!(!lines.is_empty(), "{name}: snapshot must not be empty");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("check_{name}.txt"));
    let actual = lines.join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); create it with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        actual, expected,
        "{name}: diagnostics diverged from tests/golden/check_{name}.txt \
         (regenerate with UPDATE_GOLDEN=1 if the change is intentional)"
    );
}

#[test]
fn broken_variant_diagnostics_match_snapshots() {
    for (name, src, code) in BROKEN_VARIANTS {
        let program = Program::parse(src).expect("broken variants still parse");
        let analysis = analyze_with(&program, &AnalysisConfig::strict());
        assert!(
            analysis.errors().any(|d| d.code == code),
            "{name}: expected {code} under strict analysis"
        );
        let lines: Vec<String> = analysis.diagnostics.iter().map(|d| d.render(src)).collect();
        check_golden(name, &lines);
    }
}

#[test]
fn every_diagnostic_carries_a_real_span() {
    // The span audit: no diagnostic may fall back to a missing or empty
    // span — `render` must always be able to point at source. Checked
    // across both analyzer profiles so span plumbing in strict-only paths
    // (e.g. V002-as-error) is covered too.
    for cfg in [AnalysisConfig::strict(), AnalysisConfig::default()] {
        for (name, src, _) in BROKEN_VARIANTS {
            let program = Program::parse(src).expect("broken variants still parse");
            let analysis = analyze_with(&program, &cfg);
            assert!(
                !analysis.diagnostics.is_empty(),
                "{name}: expected findings"
            );
            for d in &analysis.diagnostics {
                let span = d.span.unwrap_or_else(|| {
                    panic!(
                        "{name}: {}[{}] has no span: {}",
                        d.severity, d.code, d.message
                    )
                });
                assert!(
                    span.end > span.start,
                    "{name}: {}[{}] has a degenerate span {}..{}: {}",
                    d.severity,
                    d.code,
                    span.start,
                    span.end,
                    d.message
                );
                let rendered = d.render(src);
                assert!(
                    rendered
                        .split(':')
                        .next()
                        .is_some_and(|l| l.parse::<usize>().is_ok()),
                    "{name}: rendered diagnostic lacks a line prefix: {rendered}"
                );
            }
        }
    }
}
