//! Property-based tests of the property-graph substrate.

use proptest::prelude::*;

use pgraph::algo::{
    enumerate_simple_paths, strongly_connected_components, weakly_connected_components, PathLimits,
};
use pgraph::{Csr, NodeId, PropertyGraph, Value};

const N: usize = 10;

fn graph_of(edges: &[(u8, u8)]) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    for _ in 0..N {
        g.add_node("C");
    }
    for &(a, b) in edges {
        let e = g.add_edge(
            "S",
            NodeId(a as u32 % N as u32),
            NodeId(b as u32 % N as u32),
        );
        g.set_edge_prop(e, "w", Value::from(0.5));
    }
    g
}

/// BFS reachability oracle.
fn reaches(g: &PropertyGraph, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; g.node_count()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        stack.extend(g.successors(v));
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_matches_graph(edges in prop::collection::vec((0..N as u8, 0..N as u8), 0..40)) {
        let g = graph_of(&edges);
        let csr = Csr::from_graph(&g, "w");
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.node_ids() {
            prop_assert_eq!(csr.out_degree(v), g.out_degree(v));
            prop_assert_eq!(csr.in_degree(v), g.in_degree(v));
            let mut a: Vec<u32> = csr.out_neighbors(v).to_vec();
            let mut b: Vec<u32> = g.successors(v).map(|n| n.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn scc_agrees_with_mutual_reachability(
        edges in prop::collection::vec((0..N as u8, 0..N as u8), 0..30)
    ) {
        let g = graph_of(&edges);
        let csr = Csr::from_graph(&g, "w");
        let scc = strongly_connected_components(&csr);
        for a in g.node_ids() {
            for b in g.node_ids() {
                let mutual = reaches(&g, a, b) && reaches(&g, b, a);
                prop_assert_eq!(
                    scc.same_component(a, b),
                    mutual,
                    "scc vs reachability mismatch at ({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn wcc_partitions_and_respects_edges(
        edges in prop::collection::vec((0..N as u8, 0..N as u8), 0..30)
    ) {
        let g = graph_of(&edges);
        let csr = Csr::from_graph(&g, "w");
        let wcc = weakly_connected_components(&csr);
        prop_assert_eq!(wcc.sizes().iter().sum::<usize>(), N);
        for e in g.edge_ids() {
            let (s, d) = g.endpoints(e);
            prop_assert_eq!(wcc.component[s.index()], wcc.component[d.index()]);
        }
    }

    #[test]
    fn simple_paths_weight_is_bounded(
        edges in prop::collection::vec((0..N as u8, 0..N as u8), 0..20),
        src in 0..N as u8,
        dst in 0..N as u8,
    ) {
        let g = graph_of(&edges);
        let csr = Csr::from_graph(&g, "w");
        let r = enumerate_simple_paths(
            &csr,
            NodeId(src as u32),
            NodeId(dst as u32),
            PathLimits::default(),
        );
        prop_assert!(r.weight_sum >= 0.0);
        // Each path contributes at most 0.5 (every edge weighs 0.5),
        // so the sum is bounded by 0.5 · #paths.
        prop_assert!(r.weight_sum <= 0.5 * r.path_count as f64 + 1e-9);
        // Positive weight implies reachability.
        if r.path_count > 0 && src != dst {
            prop_assert!(reaches(&g, NodeId(src as u32), NodeId(dst as u32)));
        }
    }

    #[test]
    fn value_ordering_is_total_and_sortable(
        ints in prop::collection::vec(any::<i64>(), 0..8),
        floats in prop::collection::vec(-1e6f64..1e6, 0..8),
        strs in prop::collection::vec("[a-z]{0,5}", 0..8),
    ) {
        let mut vals: Vec<Value> = Vec::new();
        vals.extend(ints.into_iter().map(Value::Int));
        vals.extend(floats.into_iter().map(Value::float));
        vals.extend(strs.into_iter().map(Value::Str));
        vals.push(Value::Null);
        vals.push(Value::Bool(true));
        let mut sorted = vals.clone();
        sorted.sort();
        // Sorting is stable under re-sort and respects pairwise order.
        for w in sorted.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut again = sorted.clone();
        again.sort();
        prop_assert_eq!(sorted, again);
    }
}
