//! Strongly-typed identifiers for graph constituents.
//!
//! Nodes, edges, labels and property keys each get their own index newtype so
//! they cannot be confused at compile time. All of them are `u32`-backed:
//! the paper's largest graph (the full Italian company register) has ~4.1M
//! nodes per yearly snapshot, far below `u32::MAX`.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Constructs an id from a raw `usize` index.
            ///
            /// # Panics
            /// Panics if `i` exceeds `u32::MAX`.
            #[inline]
            pub fn from_usize(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize, "id overflow");
                Self(i as u32)
            }

            /// Returns the raw index as a `usize`, for vector indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a node in a [`crate::PropertyGraph`].
    NodeId,
    "n"
);
id_type!(
    /// Identifier of an edge in a [`crate::PropertyGraph`].
    EdgeId,
    "e"
);
id_type!(
    /// Interned label (the λ co-domain of Definition 2.1).
    LabelId,
    "L"
);
id_type!(
    /// Interned property-key name (the P set of Definition 2.1).
    KeyId,
    "k"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let n = NodeId::from_usize(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(EdgeId(1));
        s.insert(EdgeId(1));
        assert_eq!(s.len(), 1);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn display_uses_tag() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(EdgeId(3).to_string(), "e3");
        assert_eq!(format!("{:?}", LabelId(0)), "L0");
    }
}
