//! Property values (the V set of Definition 2.1).
//!
//! Company graphs carry heterogeneous features: share fractions (floats),
//! legal names and addresses (strings), incorporation dates (dates encoded
//! as days), booleans and integers. [`Value`] is a small tagged union over
//! those shapes with total ordering and hashing, so values can be used as
//! blocking keys and Datalog constants.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A property value attached to a node or an edge.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absence of a value (σ is a partial function).
    Null,
    /// Boolean flag.
    Bool(bool),
    /// Signed integer (also used for dates as days-since-epoch).
    Int(i64),
    /// IEEE-754 double; `NaN` is normalized away (see [`Value::float`]).
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Builds a float value, mapping `NaN` to [`Value::Null`] so that the
    /// total-order and hash invariants hold for every constructible value.
    pub fn float(f: f64) -> Self {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Float(f)
        }
    }

    /// Returns the value as a float if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as an integer if it is [`Value::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string slice if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            // NaN is unconstructible (normalized to Null), so total_cmp
            // agrees with the usual order on every stored float.
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal: hash the
            // f64 bit pattern of the numeric value for both.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn nan_normalizes_to_null() {
        assert!(Value::float(f64::NAN).is_null());
        assert_eq!(Value::from(f64::NAN), Value::Null);
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn heterogeneous_ordering_is_total() {
        let mut vals = [
            Value::Str("b".into()),
            Value::Null,
            Value::Int(1),
            Value::Bool(true),
            Value::Float(0.5),
            Value::Str("a".into()),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals.last().unwrap().as_str(), Some("b"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(5i64).as_i64(), Some(5));
        assert_eq!(Value::from(0.25).as_f64(), Some(0.25));
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Float(0.5).to_string(), "0.5");
    }
}
