//! Minimal CSV import/export for property graphs.
//!
//! The paper's pipeline ingests relational exports of the company register
//! through ETL jobs. This module provides the equivalent boundary for the
//! reproduction: a node file (`id,label,key=value;...`) and an edge file
//! (`src,dst,label,key=value;...`). Values are typed by syntax: `true/false`
//! are booleans, integers and floats are numeric, everything else a string.
//! Fields are `;`-separated inside the property column, so the format needs
//! no quoting for our generators' data.

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

use crate::graph::PropertyGraph;
use crate::id::NodeId;
use crate::value::Value;

/// Parses a property literal into a typed [`Value`].
pub fn parse_value(s: &str) -> Value {
    match s {
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        "null" => return Value::Null,
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::float(f);
    }
    Value::Str(s.to_owned())
}

fn parse_props(field: &str) -> Vec<(String, Value)> {
    if field.is_empty() {
        return Vec::new();
    }
    field
        .split(';')
        .filter_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            Some((k.to_owned(), parse_value(v)))
        })
        .collect()
}

/// Reads a graph from node and edge CSV readers.
///
/// Node lines: `id,label[,k=v;k=v...]` — ids must be dense `0..n` integers.
/// Edge lines: `src,dst,label[,k=v;k=v...]`.
/// Lines starting with `#` and blank lines are skipped.
pub fn read_csv<N: BufRead, E: BufRead>(nodes: N, edges: E) -> io::Result<PropertyGraph> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut g = PropertyGraph::new();
    let mut expected = 0u32;
    for line in nodes.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ',');
        let id: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad node id in {line:?}")))?;
        if id != expected {
            return Err(bad(format!(
                "node ids must be dense, got {id}, expected {expected}"
            )));
        }
        expected += 1;
        let label = parts
            .next()
            .ok_or_else(|| bad(format!("missing label in {line:?}")))?;
        let node = g.add_node(label);
        for (k, v) in parse_props(parts.next().unwrap_or("")) {
            g.set_node_prop(node, &k, v);
        }
    }
    for line in edges.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, ',');
        let src: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad src in {line:?}")))?;
        let dst: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad dst in {line:?}")))?;
        let label = parts
            .next()
            .ok_or_else(|| bad(format!("missing label in {line:?}")))?;
        if src >= expected || dst >= expected {
            return Err(bad(format!("edge endpoint out of range in {line:?}")));
        }
        let edge = g.add_edge(label, NodeId(src), NodeId(dst));
        for (k, v) in parse_props(parts.next().unwrap_or("")) {
            g.set_edge_prop(edge, &k, v);
        }
    }
    Ok(g)
}

/// Writes the graph to node and edge CSV writers in the format accepted by
/// [`read_csv`].
pub fn write_csv<N: Write, E: Write>(
    g: &PropertyGraph,
    mut nodes: N,
    mut edges: E,
) -> io::Result<()> {
    for n in g.node_ids() {
        let mut props = String::new();
        for (i, (k, v)) in g.node_props(n).iter().enumerate() {
            if i > 0 {
                props.push(';');
            }
            let _ = write!(props, "{}={}", g.key_name(*k), v);
        }
        writeln!(nodes, "{},{},{}", n.0, g.label_name(g.node_label(n)), props)?;
    }
    for e in g.edge_ids() {
        let (s, d) = g.endpoints(e);
        let mut props = String::new();
        for (i, (k, v)) in g.edge_props(e).iter().enumerate() {
            if i > 0 {
                props.push(';');
            }
            let _ = write!(props, "{}={}", g.key_name(*k), v);
        }
        writeln!(
            edges,
            "{},{},{},{}",
            s.0,
            d.0,
            g.label_name(g.edge_label(e)),
            props
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_parsing() {
        assert_eq!(parse_value("true"), Value::Bool(true));
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("0.5"), Value::Float(0.5));
        assert_eq!(parse_value("null"), Value::Null);
        assert_eq!(parse_value("ACME spa"), Value::Str("ACME spa".into()));
    }

    #[test]
    fn roundtrip() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("Company");
        let p = g.add_node("Person");
        g.set_node_prop(a, "name", Value::from("ACME"));
        g.set_node_prop(p, "name", Value::from("Rossi"));
        g.set_node_prop(p, "birth", Value::Int(10957));
        let e = g.add_edge("Shareholding", p, a);
        g.set_edge_prop(e, "w", Value::from(0.6));

        let mut nbuf = Vec::new();
        let mut ebuf = Vec::new();
        write_csv(&g, &mut nbuf, &mut ebuf).unwrap();
        let g2 = read_csv(&nbuf[..], &ebuf[..]).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.edge_count(), 1);
        assert_eq!(
            g2.node_prop(NodeId(0), "name").unwrap().as_str(),
            Some("ACME")
        );
        assert_eq!(
            g2.node_prop(NodeId(1), "birth").unwrap().as_i64(),
            Some(10957)
        );
        let e0 = g2.edge_ids().next().unwrap();
        assert_eq!(g2.edge_prop(e0, "w").unwrap().as_f64(), Some(0.6));
        assert_eq!(g2.endpoints(e0), (NodeId(1), NodeId(0)));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let nodes = "# header\n0,C,\n\n1,C,\n";
        let edges = "# edges\n0,1,S,w=0.5\n";
        let g = read_csv(nodes.as_bytes(), edges.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn non_dense_ids_rejected() {
        let nodes = "0,C,\n2,C,\n";
        assert!(read_csv(nodes.as_bytes(), &b""[..]).is_err());
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let nodes = "0,C,\n";
        let edges = "0,5,S,\n";
        assert!(read_csv(nodes.as_bytes(), edges.as_bytes()).is_err());
    }
}
