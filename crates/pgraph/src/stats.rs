//! One-call structural summary of a property graph.
//!
//! [`GraphStats::compute`] reproduces every figure quoted for the Italian
//! company graph in Section 2 of the paper: node/edge counts, SCC and WCC
//! counts with average and maximum sizes, mean degree, maximum in/out
//! degree, the average clustering coefficient, self-loop count, and the
//! power-law exponent of the degree distribution.

use crate::algo::{
    average_clustering_coefficient, degree_histogram, fit_power_law, strongly_connected_components,
    weakly_connected_components, DegreeStats, PowerLawFit,
};
use crate::csr::Csr;
use crate::graph::PropertyGraph;

/// Structural statistics of a company graph (the Section 2 profile).
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// `|N|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// Number of strongly connected components.
    pub scc_count: usize,
    /// Average SCC size.
    pub scc_avg_size: f64,
    /// Largest SCC size.
    pub scc_max_size: usize,
    /// Number of weakly connected components.
    pub wcc_count: usize,
    /// Average WCC size.
    pub wcc_avg_size: f64,
    /// Largest WCC size.
    pub wcc_max_size: usize,
    /// Mean in-degree = mean out-degree = |E|/|N|.
    pub mean_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Average clustering coefficient (undirected).
    pub clustering_coefficient: f64,
    /// Number of self-loop edges (share buy-backs).
    pub self_loops: usize,
    /// Power-law fit of the total-degree distribution, if one exists.
    pub power_law: Option<PowerLawFit>,
}

impl GraphStats {
    /// Computes all statistics over a graph whose edge weights live in the
    /// property `weight_key`.
    pub fn compute(g: &PropertyGraph, weight_key: &str) -> Self {
        let csr = Csr::from_graph(g, weight_key);
        Self::compute_from_csr(g, &csr)
    }

    /// Computes statistics reusing an existing CSR snapshot.
    pub fn compute_from_csr(g: &PropertyGraph, csr: &Csr) -> Self {
        let scc = strongly_connected_components(csr);
        let wcc = weakly_connected_components(csr);
        let deg = DegreeStats::compute(csr);
        let hist = degree_histogram(csr);
        GraphStats {
            nodes: g.node_count(),
            edges: g.edge_count(),
            scc_count: scc.count,
            scc_avg_size: scc.average_size(),
            scc_max_size: scc.largest(),
            wcc_count: wcc.count,
            wcc_avg_size: wcc.average_size(),
            wcc_max_size: wcc.largest(),
            mean_degree: deg.mean,
            max_in_degree: deg.max_in,
            max_out_degree: deg.max_out,
            clustering_coefficient: average_clustering_coefficient(csr),
            self_loops: g.self_loop_count(),
            power_law: fit_power_law(&hist, 1),
        }
    }

    /// Renders the statistics as aligned `key: value` lines, one per
    /// Section 2 figure, for the reproduction harness.
    pub fn report(&self) -> String {
        let mut s = String::new();
        let mut line = |k: &str, v: String| {
            s.push_str(&format!("{k:<28} {v}\n"));
        };
        line("nodes", format!("{}", self.nodes));
        line("edges", format!("{}", self.edges));
        line("scc_count", format!("{}", self.scc_count));
        line("scc_avg_size", format!("{:.3}", self.scc_avg_size));
        line("scc_max_size", format!("{}", self.scc_max_size));
        line("wcc_count", format!("{}", self.wcc_count));
        line("wcc_avg_size", format!("{:.3}", self.wcc_avg_size));
        line("wcc_max_size", format!("{}", self.wcc_max_size));
        line("mean_degree", format!("{:.4}", self.mean_degree));
        line("max_in_degree", format!("{}", self.max_in_degree));
        line("max_out_degree", format!("{}", self.max_out_degree));
        line(
            "clustering_coefficient",
            format!("{:.5}", self.clustering_coefficient),
        );
        line("self_loops", format!("{}", self.self_loops));
        match &self.power_law {
            Some(fit) => {
                line("power_law_alpha", format!("{:.3}", fit.alpha));
                line("power_law_ks", format!("{:.4}", fit.ks_distance));
            }
            None => line("power_law_alpha", "n/a".to_owned()),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NodeId;

    fn sample() -> PropertyGraph {
        // 0→1→2 chain, 3↔4 cycle, 5 self-loop, 6 isolated.
        let mut g = PropertyGraph::new();
        for _ in 0..7 {
            g.add_node("C");
        }
        for (s, t) in [(0, 1), (1, 2), (3, 4), (4, 3), (5, 5)] {
            g.add_edge("S", NodeId(s), NodeId(t));
        }
        g
    }

    #[test]
    fn counts_match() {
        let s = GraphStats::compute(&sample(), "w");
        assert_eq!(s.nodes, 7);
        assert_eq!(s.edges, 5);
        assert_eq!(s.self_loops, 1);
        // SCCs: {0},{1},{2},{3,4},{5},{6} = 6
        assert_eq!(s.scc_count, 6);
        assert_eq!(s.scc_max_size, 2);
        // WCCs: {0,1,2},{3,4},{5},{6} = 4
        assert_eq!(s.wcc_count, 4);
        assert_eq!(s.wcc_max_size, 3);
        assert!((s.mean_degree - 5.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.max_out_degree, 1);
    }

    #[test]
    fn report_contains_every_metric() {
        let s = GraphStats::compute(&sample(), "w");
        let r = s.report();
        for key in [
            "nodes",
            "edges",
            "scc_count",
            "wcc_count",
            "mean_degree",
            "max_in_degree",
            "max_out_degree",
            "clustering_coefficient",
            "self_loops",
            "power_law_alpha",
        ] {
            assert!(r.contains(key), "missing {key} in report:\n{r}");
        }
    }
}
