//! Compressed-sparse-row snapshots of a [`PropertyGraph`].
//!
//! The analytics ([`crate::algo`]) and the node-embedding layer walk the
//! graph millions of times; a flat CSR image avoids pointer chasing through
//! per-node `Vec`s and keeps the working set contiguous. The snapshot is
//! immutable — the augmentation loop rebuilds it whenever new edges have been
//! added (the paper's "reinforcement principle" re-embeds the updated graph).

use crate::graph::PropertyGraph;
use crate::id::NodeId;

/// Immutable CSR image with out- and in-adjacency plus edge weights.
#[derive(Debug, Clone)]
pub struct Csr {
    n: usize,
    out_off: Vec<u32>,
    out_dst: Vec<u32>,
    out_w: Vec<f64>,
    in_off: Vec<u32>,
    in_src: Vec<u32>,
    in_w: Vec<f64>,
}

impl Csr {
    /// Builds a CSR snapshot; `weight_key` names the edge property holding
    /// the weight (e.g. the share fraction `w`), defaulting to 1.0 when the
    /// property is missing or non-numeric.
    pub fn from_graph(g: &PropertyGraph, weight_key: &str) -> Self {
        let n = g.node_count();
        let m = g.edge_count();
        let mut out_off = vec![0u32; n + 1];
        let mut in_off = vec![0u32; n + 1];
        for e in g.edge_ids() {
            let (s, d) = g.endpoints(e);
            out_off[s.index() + 1] += 1;
            in_off[d.index() + 1] += 1;
        }
        for i in 0..n {
            out_off[i + 1] += out_off[i];
            in_off[i + 1] += in_off[i];
        }
        let mut out_dst = vec![0u32; m];
        let mut out_w = vec![0f64; m];
        let mut in_src = vec![0u32; m];
        let mut in_w = vec![0f64; m];
        let mut out_cur = out_off.clone();
        let mut in_cur = in_off.clone();
        for e in g.edge_ids() {
            let (s, d) = g.endpoints(e);
            let w = g
                .edge_prop(e, weight_key)
                .and_then(|v| v.as_f64())
                .unwrap_or(1.0);
            let oi = out_cur[s.index()] as usize;
            out_dst[oi] = d.0;
            out_w[oi] = w;
            out_cur[s.index()] += 1;
            let ii = in_cur[d.index()] as usize;
            in_src[ii] = s.0;
            in_w[ii] = w;
            in_cur[d.index()] += 1;
        }
        Csr {
            n,
            out_off,
            out_dst,
            out_w,
            in_off,
            in_src,
            in_w,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.out_dst.len()
    }

    /// Out-neighbours of `v` (targets of edges leaving `v`).
    pub fn out_neighbors(&self, v: NodeId) -> &[u32] {
        let (a, b) = (
            self.out_off[v.index()] as usize,
            self.out_off[v.index() + 1] as usize,
        );
        &self.out_dst[a..b]
    }

    /// Weights parallel to [`Csr::out_neighbors`].
    pub fn out_weights(&self, v: NodeId) -> &[f64] {
        let (a, b) = (
            self.out_off[v.index()] as usize,
            self.out_off[v.index() + 1] as usize,
        );
        &self.out_w[a..b]
    }

    /// In-neighbours of `v` (sources of edges entering `v`).
    pub fn in_neighbors(&self, v: NodeId) -> &[u32] {
        let (a, b) = (
            self.in_off[v.index()] as usize,
            self.in_off[v.index() + 1] as usize,
        );
        &self.in_src[a..b]
    }

    /// Weights parallel to [`Csr::in_neighbors`].
    pub fn in_weights(&self, v: NodeId) -> &[f64] {
        let (a, b) = (
            self.in_off[v.index()] as usize,
            self.in_off[v.index() + 1] as usize,
        );
        &self.in_w[a..b]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.out_off[v.index() + 1] - self.out_off[v.index()]) as usize
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_off[v.index() + 1] - self.in_off[v.index()]) as usize
    }

    /// Undirected neighbours of `v`: out- then in-neighbours, possibly with
    /// duplicates for reciprocal edges. Used by the embedding random walks,
    /// which treat ownership as a symmetric proximity signal.
    pub fn undirected_neighbors(&self, v: NodeId) -> impl Iterator<Item = u32> + '_ {
        self.out_neighbors(v)
            .iter()
            .copied()
            .chain(self.in_neighbors(v).iter().copied())
    }

    /// Undirected degree (out + in).
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn diamond() -> PropertyGraph {
        // a -> b -> d, a -> c -> d with weights 0.1..0.4
        let mut g = PropertyGraph::new();
        let a = g.add_node("C");
        let b = g.add_node("C");
        let c = g.add_node("C");
        let d = g.add_node("C");
        for (i, (s, t)) in [(a, b), (a, c), (b, d), (c, d)].into_iter().enumerate() {
            let e = g.add_edge("S", s, t);
            g.set_edge_prop(e, "w", Value::from((i + 1) as f64 / 10.0));
        }
        g
    }

    #[test]
    fn structure_matches_graph() {
        let g = diamond();
        let csr = Csr::from_graph(&g, "w");
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.out_neighbors(NodeId(0)), &[1, 2]);
        assert_eq!(csr.in_neighbors(NodeId(3)), &[1, 2]);
        assert_eq!(csr.out_degree(NodeId(0)), 2);
        assert_eq!(csr.in_degree(NodeId(0)), 0);
        assert_eq!(csr.degree(NodeId(3)), 2);
    }

    #[test]
    fn weights_parallel_to_neighbors() {
        let g = diamond();
        let csr = Csr::from_graph(&g, "w");
        assert_eq!(csr.out_weights(NodeId(0)), &[0.1, 0.2]);
        assert_eq!(csr.in_weights(NodeId(3)), &[0.3, 0.4]);
    }

    #[test]
    fn missing_weight_defaults_to_one() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("C");
        let b = g.add_node("C");
        g.add_edge("S", a, b);
        let csr = Csr::from_graph(&g, "w");
        assert_eq!(csr.out_weights(NodeId(0)), &[1.0]);
    }

    #[test]
    fn undirected_neighbors_chain_both_sides() {
        let g = diamond();
        let csr = Csr::from_graph(&g, "w");
        let n: Vec<u32> = csr.undirected_neighbors(NodeId(1)).collect();
        assert_eq!(n, vec![3, 0]); // out: d(3); in: a(0)
    }

    #[test]
    fn empty_graph() {
        let g = PropertyGraph::new();
        let csr = Csr::from_graph(&g, "w");
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }
}
