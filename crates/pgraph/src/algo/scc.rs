//! Strongly connected components (iterative Tarjan).
//!
//! The paper reports that the Italian company graph has ~4.058M SCCs of
//! average size one and a largest SCC of only 15 nodes — ownership cycles
//! are rare but real (cross-shareholding). Tarjan is implemented iteratively
//! because company graphs contain million-node weak components whose DFS
//! depth would overflow the thread stack.

use crate::csr::Csr;
use crate::id::NodeId;

/// Output of [`strongly_connected_components`].
#[derive(Debug, Clone)]
pub struct SccResult {
    /// Component id of each node; ids are dense in `0..count`.
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl SccResult {
    /// Sizes of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Average component size (0.0 for an empty graph).
    pub fn average_size(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.component.len() as f64 / self.count as f64
        }
    }

    /// True iff `a` and `b` lie on a common directed cycle.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component[a.index()] == self.component[b.index()]
    }
}

const UNVISITED: u32 = u32::MAX;

/// Computes SCCs of the directed graph with an iterative Tarjan algorithm.
pub fn strongly_connected_components(csr: &Csr) -> SccResult {
    let n = csr.node_count();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0usize;

    // Explicit DFS frames: (node, next-child cursor).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let vi = v as usize;
            if *cursor == 0 {
                index[vi] = next_index;
                low[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let succ = csr.out_neighbors(NodeId(v));
            if *cursor < succ.len() {
                let w = succ[*cursor];
                *cursor += 1;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                // Post-order: close the component if v is a root.
                if low[vi] == index[vi] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = count as u32;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
            }
        }
    }

    SccResult {
        component: comp,
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;

    fn csr_of(edges: &[(u32, u32)], n: usize) -> Csr {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_node("C");
        }
        for &(s, t) in edges {
            g.add_edge("S", NodeId(s), NodeId(t));
        }
        Csr::from_graph(&g, "w")
    }

    #[test]
    fn singleton_components_in_dag() {
        let csr = csr_of(&[(0, 1), (1, 2), (0, 2)], 3);
        let r = strongly_connected_components(&csr);
        assert_eq!(r.count, 3);
        assert_eq!(r.largest(), 1);
        assert!((r.average_size() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_is_one_component() {
        let csr = csr_of(&[(0, 1), (1, 2), (2, 0)], 3);
        let r = strongly_connected_components(&csr);
        assert_eq!(r.count, 1);
        assert_eq!(r.largest(), 3);
        assert!(r.same_component(NodeId(0), NodeId(2)));
    }

    #[test]
    fn mixed_cycle_and_tail() {
        // 0<->1 cycle, 2 tail, 3 isolated
        let csr = csr_of(&[(0, 1), (1, 0), (1, 2)], 4);
        let r = strongly_connected_components(&csr);
        assert_eq!(r.count, 3);
        let sizes = {
            let mut s = r.sizes();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 1, 2]);
        assert!(r.same_component(NodeId(0), NodeId(1)));
        assert!(!r.same_component(NodeId(1), NodeId(2)));
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let csr = csr_of(&[(0, 0)], 2);
        let r = strongly_connected_components(&csr);
        assert_eq!(r.count, 2);
        assert_eq!(r.largest(), 1);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // A 200k-node path would overflow a recursive Tarjan.
        let n = 200_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let csr = csr_of(&edges, n as usize);
        let r = strongly_connected_components(&csr);
        assert_eq!(r.count, n as usize);
    }

    #[test]
    fn two_disjoint_cycles() {
        let csr = csr_of(&[(0, 1), (1, 0), (2, 3), (3, 2)], 4);
        let r = strongly_connected_components(&csr);
        assert_eq!(r.count, 2);
        assert_eq!(r.largest(), 2);
        assert!(!r.same_component(NodeId(0), NodeId(2)));
    }
}
