//! Power-law fit of the degree distribution.
//!
//! Section 2 observes that the company graph "shows a scale-free network
//! structure, as most real-world networks: the degree distribution follows a
//! power-law". We fit the exponent with the discrete maximum-likelihood
//! estimator of Clauset–Shalizi–Newman:
//!
//! `alpha ≈ 1 + n · ( Σ ln(d_i / (d_min − 1/2)) )⁻¹`
//!
//! together with a Kolmogorov–Smirnov distance between the empirical and the
//! fitted tail as a goodness-of-fit indicator.

/// Result of [`fit_power_law`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent α of `P(d) ∝ d^(−α)`.
    pub alpha: f64,
    /// Minimum degree included in the fit.
    pub d_min: usize,
    /// Number of samples with degree ≥ `d_min`.
    pub tail_size: usize,
    /// Kolmogorov–Smirnov distance between empirical and fitted tail CDFs.
    pub ks_distance: f64,
}

/// Fits a discrete power law to the degrees ≥ `d_min` found in `histogram`
/// (`histogram[d]` = number of nodes of degree `d`).
///
/// Returns `None` when fewer than two tail samples exist or when every tail
/// degree equals `d_min` (the MLE degenerates).
pub fn fit_power_law(histogram: &[usize], d_min: usize) -> Option<PowerLawFit> {
    let d_min = d_min.max(1);
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    for (d, &cnt) in histogram.iter().enumerate().skip(d_min) {
        if cnt == 0 {
            continue;
        }
        n += cnt;
        log_sum += cnt as f64 * ((d as f64) / (d_min as f64 - 0.5)).ln();
    }
    if n < 2 || log_sum <= 0.0 {
        return None;
    }
    let alpha = 1.0 + n as f64 / log_sum;

    // Empirical tail CCDF vs fitted zeta-like CCDF (continuous approx).
    let mut ks: f64 = 0.0;
    let mut cum = 0usize;
    for (d, &cnt) in histogram.iter().enumerate().skip(d_min) {
        if cnt == 0 {
            continue;
        }
        cum += cnt;
        let emp_cdf = cum as f64 / n as f64;
        // Continuous approximation of the fitted CDF on [d_min-1/2, ∞).
        let x = d as f64 + 0.5;
        let fit_cdf = 1.0 - ((d_min as f64 - 0.5) / x).powf(alpha - 1.0);
        ks = ks.max((emp_cdf - fit_cdf).abs());
    }

    Some(PowerLawFit {
        alpha,
        d_min,
        tail_size: n,
        ks_distance: ks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a histogram by sampling a discrete power law with a simple
    /// inverse-CDF transform and a deterministic LCG.
    fn synthetic_power_law(alpha: f64, n: usize, d_min: usize, d_max: usize) -> Vec<usize> {
        let mut weights = vec![0.0f64; d_max + 1];
        for (d, w) in weights.iter_mut().enumerate().skip(d_min) {
            *w = (d as f64).powf(-alpha);
        }
        let total: f64 = weights.iter().sum();
        let mut hist = vec![0usize; d_max + 1];
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
            let mut acc = 0.0;
            for (d, &w) in weights.iter().enumerate() {
                acc += w;
                if acc >= u {
                    hist[d] += 1;
                    break;
                }
            }
        }
        hist
    }

    #[test]
    fn recovers_known_exponent() {
        // The continuous MLE approximation is only accurate for d_min ≳ 5
        // (Clauset–Shalizi–Newman §3.1), so sample and fit a truncated tail.
        let hist = synthetic_power_law(2.5, 100_000, 5, 5000);
        let fit = fit_power_law(&hist, 5).unwrap();
        assert!(
            (fit.alpha - 2.5).abs() < 0.2,
            "alpha = {} too far from 2.5",
            fit.alpha
        );
        assert!(fit.ks_distance < 0.15, "ks = {}", fit.ks_distance);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(fit_power_law(&[], 1).is_none());
        assert!(fit_power_law(&[0, 1], 1).is_none()); // single sample
        assert!(fit_power_law(&[5, 0, 0], 1).is_none()); // no tail samples
    }

    #[test]
    fn all_mass_at_dmin_is_fittable_but_steep() {
        // All nodes have degree exactly d_min = 2: ln(2/1.5) > 0 so a fit
        // exists, with a very large alpha (near-degenerate distribution).
        let fit = fit_power_law(&[0, 0, 100], 2).unwrap();
        assert!(fit.alpha > 3.0);
        assert_eq!(fit.tail_size, 100);
    }

    #[test]
    fn dmin_zero_is_clamped() {
        let hist = synthetic_power_law(2.2, 10_000, 1, 500);
        let fit = fit_power_law(&hist, 0).unwrap();
        assert_eq!(fit.d_min, 1);
    }
}
