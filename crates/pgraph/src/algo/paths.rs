//! Simple-path enumeration with weight products.
//!
//! Definition 2.5 of the paper defines *accumulated ownership* `Φ(x, y)` as
//! the sum over all **simple** paths from `x` to `y` of the product of the
//! share fractions along each path. The paper notes (Section 4.4) that in
//! the worst case this "enumerates all the graph paths" — so the enumeration
//! carries explicit limits on path length and path count, and reports
//! whether it was truncated.

use crate::csr::Csr;
use crate::id::NodeId;

/// Guard rails for the exponential worst case of simple-path enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLimits {
    /// Maximum number of edges in a path (company chains are shallow in
    /// practice; the default of 32 comfortably covers real holdings).
    pub max_len: usize,
    /// Maximum number of paths to enumerate before giving up.
    pub max_paths: usize,
}

impl Default for PathLimits {
    fn default() -> Self {
        PathLimits {
            max_len: 32,
            max_paths: 1_000_000,
        }
    }
}

/// Result of [`enumerate_simple_paths`].
#[derive(Debug, Clone, PartialEq)]
pub struct PathEnumeration {
    /// Number of simple paths found (up to truncation).
    pub path_count: usize,
    /// Σ over paths of Π of edge weights — the accumulated ownership
    /// contribution of the enumerated paths.
    pub weight_sum: f64,
    /// True if a limit was hit and the result is a lower bound.
    pub truncated: bool,
}

/// Enumerates all simple paths `src → dst` and accumulates weight products.
///
/// A path visits no node twice (`src` itself may not reappear, so ownership
/// cycles contribute only their acyclic prefixes, per Definition 2.5).
/// When `src == dst` the only simple path is the empty path, which by
/// convention contributes nothing (ownership of self via zero edges is not a
/// shareholding).
pub fn enumerate_simple_paths(
    csr: &Csr,
    src: NodeId,
    dst: NodeId,
    limits: PathLimits,
) -> PathEnumeration {
    let n = csr.node_count();
    let mut on_path = vec![false; n];
    let mut result = PathEnumeration {
        path_count: 0,
        weight_sum: 0.0,
        truncated: false,
    };
    if src.index() >= n || dst.index() >= n {
        return result;
    }
    // Iterative DFS over (node, child cursor, product on entry).
    let mut stack: Vec<(u32, usize, f64)> = vec![(src.0, 0, 1.0)];
    on_path[src.index()] = true;

    while !stack.is_empty() {
        if result.path_count >= limits.max_paths {
            result.truncated = true;
            break;
        }
        let depth = stack.len();
        let (v, cursor, prod) = *stack.last().expect("non-empty stack");
        let succ = csr.out_neighbors(NodeId(v));
        let ws = csr.out_weights(NodeId(v));
        if cursor < succ.len() && depth <= limits.max_len {
            stack.last_mut().expect("non-empty stack").1 += 1;
            let w = succ[cursor];
            let weight = ws[cursor];
            if w == dst.0 {
                result.path_count += 1;
                result.weight_sum += prod * weight;
            } else if !on_path[w as usize] {
                on_path[w as usize] = true;
                stack.push((w, 0, prod * weight));
            }
        } else {
            if cursor < succ.len() {
                // Depth limit stopped us from exploring deeper.
                result.truncated = true;
            }
            on_path[v as usize] = false;
            stack.pop();
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;
    use crate::value::Value;

    fn csr_of(edges: &[(u32, u32, f64)], n: usize) -> Csr {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_node("C");
        }
        for &(s, t, w) in edges {
            let e = g.add_edge("S", NodeId(s), NodeId(t));
            g.set_edge_prop(e, "w", Value::from(w));
        }
        Csr::from_graph(&g, "w")
    }

    #[test]
    fn single_edge() {
        let csr = csr_of(&[(0, 1, 0.6)], 2);
        let r = enumerate_simple_paths(&csr, NodeId(0), NodeId(1), PathLimits::default());
        assert_eq!(r.path_count, 1);
        assert!((r.weight_sum - 0.6).abs() < 1e-12);
        assert!(!r.truncated);
    }

    #[test]
    fn diamond_sums_both_paths() {
        // 0→1→3 (0.5·0.5) and 0→2→3 (0.4·0.25)
        let csr = csr_of(&[(0, 1, 0.5), (1, 3, 0.5), (0, 2, 0.4), (2, 3, 0.25)], 4);
        let r = enumerate_simple_paths(&csr, NodeId(0), NodeId(3), PathLimits::default());
        assert_eq!(r.path_count, 2);
        assert!((r.weight_sum - (0.25 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn paper_example_c4_to_c7() {
        // Example 2.7: Φ(C4, C7) = 0.2 via C4 →0.5 C6 →0.4 C7.
        let csr = csr_of(&[(0, 1, 0.5), (1, 2, 0.4)], 3);
        let r = enumerate_simple_paths(&csr, NodeId(0), NodeId(2), PathLimits::default());
        assert!((r.weight_sum - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        // 0→1→0 cycle plus 1→2.
        let csr = csr_of(&[(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.8)], 3);
        let r = enumerate_simple_paths(&csr, NodeId(0), NodeId(2), PathLimits::default());
        assert_eq!(r.path_count, 1);
        assert!((r.weight_sum - 0.4).abs() < 1e-12);
        assert!(!r.truncated);
    }

    #[test]
    fn self_target_yields_cyclic_paths_only_through_edges() {
        // 0→1→0: one simple cycle back to 0 of weight 0.25. Definition 2.5
        // concerns x ≠ y, but the enumeration still counts edge-paths
        // returning to src.
        let csr = csr_of(&[(0, 1, 0.5), (1, 0, 0.5)], 2);
        let r = enumerate_simple_paths(&csr, NodeId(0), NodeId(0), PathLimits::default());
        assert_eq!(r.path_count, 1);
        assert!((r.weight_sum - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_paths_truncates() {
        // Layered graph with 2^10 paths.
        let mut edges = Vec::new();
        let layers = 10u32;
        for l in 0..layers {
            let base = l * 2;
            for s in [base, base + 1] {
                for t in [base + 2, base + 3] {
                    edges.push((s, t, 0.9));
                }
            }
        }
        // collapse start: single source 100 → layer 0
        let n = (layers as usize + 1) * 2 + 2;
        let src = (n - 2) as u32;
        let dst = (n - 1) as u32;
        edges.push((src, 0, 1.0));
        edges.push((src, 1, 1.0));
        edges.push((layers * 2, dst, 1.0));
        edges.push((layers * 2 + 1, dst, 1.0));
        let csr = csr_of(&edges, n);
        let full = enumerate_simple_paths(&csr, NodeId(src), NodeId(dst), PathLimits::default());
        assert!(full.path_count > 1000);
        assert!(!full.truncated);
        let lim = enumerate_simple_paths(
            &csr,
            NodeId(src),
            NodeId(dst),
            PathLimits {
                max_len: 32,
                max_paths: 100,
            },
        );
        assert!(lim.truncated);
        assert_eq!(lim.path_count, 100);
        assert!(lim.weight_sum < full.weight_sum);
    }

    #[test]
    fn max_len_truncates() {
        let csr = csr_of(&[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)], 4);
        let r = enumerate_simple_paths(
            &csr,
            NodeId(0),
            NodeId(3),
            PathLimits {
                max_len: 2,
                max_paths: 1000,
            },
        );
        assert_eq!(r.path_count, 0);
        assert!(r.truncated);
    }

    #[test]
    fn unreachable_pair() {
        let csr = csr_of(&[(0, 1, 0.5)], 3);
        let r = enumerate_simple_paths(&csr, NodeId(1), NodeId(2), PathLimits::default());
        assert_eq!(r.path_count, 0);
        assert_eq!(r.weight_sum, 0.0);
        assert!(!r.truncated);
    }
}
