//! Breadth-first traversal utilities.

use std::collections::VecDeque;

use crate::csr::Csr;
use crate::id::NodeId;

/// BFS hop distances from `src` following edge direction.
///
/// Returns `u32::MAX` for unreachable nodes.
pub fn bfs_distances(csr: &Csr, src: NodeId) -> Vec<u32> {
    let n = csr.node_count();
    let mut dist = vec![u32::MAX; n];
    if src.index() >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src.0);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in csr.out_neighbors(NodeId(v)) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Set of nodes reachable from `src` (including `src`), following direction.
pub fn reachable_from(csr: &Csr, src: NodeId) -> Vec<NodeId> {
    bfs_distances(csr, src)
        .into_iter()
        .enumerate()
        .filter(|(_, d)| *d != u32::MAX)
        .map(|(i, _)| NodeId::from_usize(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;

    fn csr_of(edges: &[(u32, u32)], n: usize) -> Csr {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_node("C");
        }
        for &(s, t) in edges {
            g.add_edge("S", NodeId(s), NodeId(t));
        }
        Csr::from_graph(&g, "w")
    }

    #[test]
    fn distances_follow_direction() {
        let csr = csr_of(&[(0, 1), (1, 2), (3, 2)], 4);
        let d = bfs_distances(&csr, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, u32::MAX]);
    }

    #[test]
    fn reachable_set() {
        let csr = csr_of(&[(0, 1), (1, 2), (3, 2)], 4);
        let r = reachable_from(&csr, NodeId(0));
        assert_eq!(r, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn cycle_terminates() {
        let csr = csr_of(&[(0, 1), (1, 0)], 2);
        let d = bfs_distances(&csr, NodeId(0));
        assert_eq!(d, vec![0, 1]);
    }
}
