//! Clustering coefficient (triangle density around each node).
//!
//! The paper reports an average clustering coefficient of ≈0.0084 for the
//! Italian company graph — remarkably low for a graph of that size, which is
//! one of the signals that ownership graphs are scale-free and tree-like.
//! As is standard for this measure, the graph is treated as undirected and
//! simple (parallel edges and self-loops ignored).

use std::collections::HashSet;

use crate::csr::Csr;
use crate::id::NodeId;

/// Builds deduplicated undirected neighbour sets (self-loops removed).
fn neighbor_sets(csr: &Csr) -> Vec<HashSet<u32>> {
    let n = csr.node_count();
    let mut sets = vec![HashSet::new(); n];
    for v in 0..n as u32 {
        for w in csr.undirected_neighbors(NodeId(v)) {
            if w != v {
                sets[v as usize].insert(w);
                sets[w as usize].insert(v);
            }
        }
    }
    sets
}

/// Local clustering coefficient of a single node.
///
/// `C(v) = 2·|{(u,w) : u,w ∈ N(v), u~w}| / (deg(v)·(deg(v)-1))`, or 0 when
/// `deg(v) < 2`.
pub fn local_clustering_coefficient(csr: &Csr, v: NodeId) -> f64 {
    let sets = neighbor_sets(csr);
    local_from_sets(&sets, v.0)
}

fn local_from_sets(sets: &[HashSet<u32>], v: u32) -> f64 {
    let nv = &sets[v as usize];
    let d = nv.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    let members: Vec<u32> = nv.iter().copied().collect();
    for (i, &u) in members.iter().enumerate() {
        for &w in &members[i + 1..] {
            if sets[u as usize].contains(&w) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d * (d - 1)) as f64
}

/// Average of the local clustering coefficients over all nodes
/// (Watts–Strogatz definition, the one quoted in Section 2).
pub fn average_clustering_coefficient(csr: &Csr) -> f64 {
    let n = csr.node_count();
    if n == 0 {
        return 0.0;
    }
    let sets = neighbor_sets(csr);
    let sum: f64 = (0..n as u32).map(|v| local_from_sets(&sets, v)).sum();
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;

    fn csr_of(edges: &[(u32, u32)], n: usize) -> Csr {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_node("C");
        }
        for &(s, t) in edges {
            g.add_edge("S", NodeId(s), NodeId(t));
        }
        Csr::from_graph(&g, "w")
    }

    #[test]
    fn triangle_has_coefficient_one() {
        let csr = csr_of(&[(0, 1), (1, 2), (2, 0)], 3);
        assert!((average_clustering_coefficient(&csr) - 1.0).abs() < 1e-12);
        assert!((local_clustering_coefficient(&csr, NodeId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_coefficient_zero() {
        let csr = csr_of(&[(0, 1), (1, 2)], 3);
        assert_eq!(average_clustering_coefficient(&csr), 0.0);
    }

    #[test]
    fn triangle_plus_pendant() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let csr = csr_of(&[(0, 1), (1, 2), (2, 0), (0, 3)], 4);
        // C(0)=1/3 (one closed pair of three), C(1)=C(2)=1, C(3)=0.
        let c = average_clustering_coefficient(&csr);
        assert!((c - (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_and_parallel_edges_ignored() {
        let csr = csr_of(&[(0, 0), (0, 1), (1, 0), (1, 2), (2, 0)], 3);
        // Simple undirected skeleton is the triangle 0-1-2.
        assert!((average_clustering_coefficient(&csr) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let csr = csr_of(&[], 0);
        assert_eq!(average_clustering_coefficient(&csr), 0.0);
    }
}
