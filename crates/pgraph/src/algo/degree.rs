//! Degree statistics and histograms.
//!
//! Section 2 of the paper characterizes the Italian company graph by average
//! in/out degree (≈1), maximum in-degree (>5K — holding companies with many
//! shareholders) and maximum out-degree (>28K — funds holding thousands of
//! participations). [`DegreeStats`] reproduces those figures.

use crate::csr::Csr;
use crate::id::NodeId;

/// Aggregate degree statistics of a directed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Mean in-degree (= mean out-degree = |E|/|N|).
    pub mean: f64,
    /// Maximum in-degree over all nodes.
    pub max_in: usize,
    /// Maximum out-degree over all nodes.
    pub max_out: usize,
    /// Node attaining the maximum in-degree.
    pub argmax_in: Option<NodeId>,
    /// Node attaining the maximum out-degree.
    pub argmax_out: Option<NodeId>,
}

impl DegreeStats {
    /// Computes degree statistics from a CSR snapshot.
    pub fn compute(csr: &Csr) -> Self {
        let n = csr.node_count();
        let mut max_in = 0usize;
        let mut max_out = 0usize;
        let mut argmax_in = None;
        let mut argmax_out = None;
        for v in 0..n {
            let id = NodeId::from_usize(v);
            let di = csr.in_degree(id);
            let dr = csr.out_degree(id);
            if di > max_in {
                max_in = di;
                argmax_in = Some(id);
            }
            if dr > max_out {
                max_out = dr;
                argmax_out = Some(id);
            }
        }
        let mean = if n == 0 {
            0.0
        } else {
            csr.edge_count() as f64 / n as f64
        };
        DegreeStats {
            mean,
            max_in,
            max_out,
            argmax_in,
            argmax_out,
        }
    }
}

/// Histogram of total (in+out) degree: `hist[d]` = number of nodes with
/// degree `d`. The tail of this histogram feeds the power-law fit.
pub fn degree_histogram(csr: &Csr) -> Vec<usize> {
    let n = csr.node_count();
    let mut max_d = 0usize;
    let mut degs = Vec::with_capacity(n);
    for v in 0..n {
        let d = csr.degree(NodeId::from_usize(v));
        max_d = max_d.max(d);
        degs.push(d);
    }
    let mut hist = vec![0usize; max_d + 1];
    for d in degs {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;

    fn star(k: u32) -> Csr {
        // node 0 owns k subsidiaries
        let mut g = PropertyGraph::new();
        let hub = g.add_node("C");
        for _ in 0..k {
            let s = g.add_node("C");
            g.add_edge("S", hub, s);
        }
        Csr::from_graph(&g, "w")
    }

    #[test]
    fn star_stats() {
        let csr = star(5);
        let s = DegreeStats::compute(&csr);
        assert_eq!(s.max_out, 5);
        assert_eq!(s.max_in, 1);
        assert_eq!(s.argmax_out, Some(NodeId(0)));
        assert!((s.mean - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let csr = star(5);
        let h = degree_histogram(&csr);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[1], 5); // the 5 leaves
        assert_eq!(h[5], 1); // the hub
    }

    #[test]
    fn empty_graph_defaults() {
        let g = PropertyGraph::new();
        let csr = Csr::from_graph(&g, "w");
        let s = DegreeStats::compute(&csr);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max_in, 0);
        assert!(s.argmax_in.is_none());
        assert_eq!(degree_histogram(&csr), vec![0usize; 1]);
    }
}
