//! Weakly connected components via union-find.
//!
//! The Italian company graph is highly fragmented: >600K weak components of
//! ~6 nodes on average, with one giant component of over a million nodes
//! (Section 2). Weak components are the natural unit of work for the
//! augmentation loop — no link can ever connect nodes that share no
//! ownership context unless a classifier predicts one.

use crate::csr::Csr;
use crate::id::NodeId;

/// Output of [`weakly_connected_components`].
#[derive(Debug, Clone)]
pub struct WccResult {
    /// Component id per node, dense in `0..count`.
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl WccResult {
    /// Sizes of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Average component size (0.0 for an empty graph).
    pub fn average_size(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.component.len() as f64 / self.count as f64
        }
    }

    /// Members of every component, as a vector of node-id lists.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &c) in self.component.iter().enumerate() {
            out[c as usize].push(NodeId::from_usize(i));
        }
        out
    }
}

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug)]
pub(crate) struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    pub(crate) fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    pub(crate) fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }
}

/// Computes weak components (edge direction ignored).
pub fn weakly_connected_components(csr: &Csr) -> WccResult {
    let n = csr.node_count();
    let mut uf = UnionFind::new(n);
    for v in 0..n as u32 {
        for &w in csr.out_neighbors(NodeId(v)) {
            uf.union(v, w);
        }
    }
    // Compact root ids into dense component ids.
    let mut dense = vec![u32::MAX; n];
    let mut count = 0usize;
    let mut component = vec![0u32; n];
    for v in 0..n as u32 {
        let r = uf.find(v) as usize;
        if dense[r] == u32::MAX {
            dense[r] = count as u32;
            count += 1;
        }
        component[v as usize] = dense[r];
    }
    WccResult { component, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropertyGraph;

    fn csr_of(edges: &[(u32, u32)], n: usize) -> Csr {
        let mut g = PropertyGraph::new();
        for _ in 0..n {
            g.add_node("C");
        }
        for &(s, t) in edges {
            g.add_edge("S", NodeId(s), NodeId(t));
        }
        Csr::from_graph(&g, "w")
    }

    #[test]
    fn direction_is_ignored() {
        let csr = csr_of(&[(0, 1), (2, 1)], 3);
        let r = weakly_connected_components(&csr);
        assert_eq!(r.count, 1);
        assert_eq!(r.largest(), 3);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let csr = csr_of(&[(0, 1)], 4);
        let r = weakly_connected_components(&csr);
        assert_eq!(r.count, 3);
        let mut sizes = r.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2]);
    }

    #[test]
    fn members_partition_nodes() {
        let csr = csr_of(&[(0, 1), (2, 3)], 5);
        let r = weakly_connected_components(&csr);
        let members = r.members();
        let total: usize = members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(members.len(), r.count);
    }

    #[test]
    fn average_size() {
        let csr = csr_of(&[(0, 1), (2, 3)], 6);
        let r = weakly_connected_components(&csr);
        assert_eq!(r.count, 4);
        assert!((r.average_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn union_find_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert_eq!(uf.find(0), uf.find(2));
    }

    #[test]
    fn empty_graph() {
        let csr = csr_of(&[], 0);
        let r = weakly_connected_components(&csr);
        assert_eq!(r.count, 0);
        assert_eq!(r.largest(), 0);
        assert_eq!(r.average_size(), 0.0);
    }
}
