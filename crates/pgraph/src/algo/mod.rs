//! Graph analytics used to characterize company ownership graphs.
//!
//! Section 2 of the paper profiles the Italian company graph with strongly
//! and weakly connected components, degree distributions, the clustering
//! coefficient, self-loop counts and a power-law degree fit. This module
//! implements each of those measures, plus the simple-path enumeration that
//! underlies accumulated ownership (Definition 2.5).

mod clustering;
mod degree;
mod paths;
mod powerlaw;
mod scc;
mod traversal;
mod wcc;

pub use clustering::{average_clustering_coefficient, local_clustering_coefficient};
pub use degree::{degree_histogram, DegreeStats};
pub use paths::{enumerate_simple_paths, PathEnumeration, PathLimits};
pub use powerlaw::{fit_power_law, PowerLawFit};
pub use scc::{strongly_connected_components, SccResult};
pub use traversal::{bfs_distances, reachable_from};
pub use wcc::{weakly_connected_components, WccResult};
