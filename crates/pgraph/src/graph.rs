//! The mutable property-graph store.
//!
//! [`PropertyGraph`] realizes Definition 2.1 of the paper: a finite set of
//! nodes `N`, a disjoint finite set of edges `E`, a binary incidence function
//! `rho`, a labelling function `lambda` and a property assignment `sigma`.
//!
//! Labels and property keys are interned into dense ids so that per-node
//! storage is a few words plus the property payload; incidence is maintained
//! in both directions so reasoning rules can navigate shareholdings upstream
//! (who owns x?) and downstream (what does x own?) in O(degree).

use std::collections::HashMap;

use crate::id::{EdgeId, KeyId, LabelId, NodeId};
use crate::value::Value;

/// A string interner mapping names to dense `u32` ids.
#[derive(Default, Debug, Clone)]
pub(crate) struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    pub(crate) fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    pub(crate) fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }
}

/// Payload of a node: its label and property list.
#[derive(Debug, Clone)]
pub struct NodeData {
    pub(crate) label: LabelId,
    /// Sorted by key id; graphs carry few properties per node, so a sorted
    /// vec beats a map on both footprint and lookup time.
    pub(crate) props: Vec<(KeyId, Value)>,
}

/// Payload of an edge: label, endpoints and property list.
#[derive(Debug, Clone)]
pub struct EdgeData {
    pub(crate) label: LabelId,
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) props: Vec<(KeyId, Value)>,
}

/// An in-memory labelled property graph (Definition 2.1).
#[derive(Default, Debug, Clone)]
pub struct PropertyGraph {
    labels: Interner,
    keys: Interner,
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
}

impl PropertyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity for `n` nodes and `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        PropertyGraph {
            labels: Interner::default(),
            keys: Interner::default(),
            nodes: Vec::with_capacity(n),
            edges: Vec::with_capacity(m),
            out: Vec::with_capacity(n),
            inc: Vec::with_capacity(n),
        }
    }

    /// Number of nodes `|N|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Interns a label name, returning its id.
    pub fn label_id(&mut self, name: &str) -> LabelId {
        LabelId(self.labels.intern(name))
    }

    /// Looks up a label id without interning.
    pub fn find_label(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name).map(LabelId)
    }

    /// Returns the name of a label id.
    pub fn label_name(&self, id: LabelId) -> &str {
        self.labels.name(id.0)
    }

    /// Number of distinct labels interned so far.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Interns a property key, returning its id.
    pub fn key_id(&mut self, name: &str) -> KeyId {
        KeyId(self.keys.intern(name))
    }

    /// Looks up a property-key id without interning.
    pub fn find_key(&self, name: &str) -> Option<KeyId> {
        self.keys.get(name).map(KeyId)
    }

    /// Returns the name of a property key.
    pub fn key_name(&self, id: KeyId) -> &str {
        self.keys.name(id.0)
    }

    /// Adds a node with the given label name and no properties.
    pub fn add_node(&mut self, label: &str) -> NodeId {
        let label = self.label_id(label);
        self.add_node_with(label, Vec::new())
    }

    /// Adds a node with an interned label and a property list.
    ///
    /// The property list is sorted and deduplicated on insertion (last write
    /// wins for duplicate keys).
    pub fn add_node_with(&mut self, label: LabelId, mut props: Vec<(KeyId, Value)>) -> NodeId {
        normalize_props(&mut props);
        let id = NodeId::from_usize(self.nodes.len());
        self.nodes.push(NodeData { label, props });
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds an edge with the given label name and no properties.
    ///
    /// # Panics
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, label: &str, src: NodeId, dst: NodeId) -> EdgeId {
        let label = self.label_id(label);
        self.add_edge_with(label, src, dst, Vec::new())
    }

    /// Adds an edge with an interned label and a property list.
    ///
    /// # Panics
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge_with(
        &mut self,
        label: LabelId,
        src: NodeId,
        dst: NodeId,
        mut props: Vec<(KeyId, Value)>,
    ) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src {src} out of bounds");
        assert!(dst.index() < self.nodes.len(), "dst {dst} out of bounds");
        normalize_props(&mut props);
        let id = EdgeId::from_usize(self.edges.len());
        self.edges.push(EdgeData {
            label,
            src,
            dst,
            props,
        });
        self.out[src.index()].push(id);
        self.inc[dst.index()].push(id);
        id
    }

    /// Sets (or overwrites) a node property.
    pub fn set_node_prop(&mut self, node: NodeId, key: &str, value: Value) {
        let key = self.key_id(key);
        upsert(&mut self.nodes[node.index()].props, key, value);
    }

    /// Sets (or overwrites) an edge property.
    pub fn set_edge_prop(&mut self, edge: EdgeId, key: &str, value: Value) {
        let key = self.key_id(key);
        upsert(&mut self.edges[edge.index()].props, key, value);
    }

    /// Returns σ(node, key), if assigned.
    pub fn node_prop(&self, node: NodeId, key: &str) -> Option<&Value> {
        let key = self.find_key(key)?;
        lookup(&self.nodes[node.index()].props, key)
    }

    /// Returns σ(edge, key), if assigned.
    pub fn edge_prop(&self, edge: EdgeId, key: &str) -> Option<&Value> {
        let key = self.find_key(key)?;
        lookup(&self.edges[edge.index()].props, key)
    }

    /// Returns the full (key, value) list of a node, sorted by key id.
    pub fn node_props(&self, node: NodeId) -> &[(KeyId, Value)] {
        &self.nodes[node.index()].props
    }

    /// Returns the full (key, value) list of an edge, sorted by key id.
    pub fn edge_props(&self, edge: EdgeId) -> &[(KeyId, Value)] {
        &self.edges[edge.index()].props
    }

    /// Returns λ(node).
    pub fn node_label(&self, node: NodeId) -> LabelId {
        self.nodes[node.index()].label
    }

    /// Returns λ(edge).
    pub fn edge_label(&self, edge: EdgeId) -> LabelId {
        self.edges[edge.index()].label
    }

    /// Returns ρ(edge) = (src, dst).
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.index()];
        (e.src, e.dst)
    }

    /// Edges leaving `node`.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out[node.index()]
    }

    /// Edges entering `node`.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.inc[node.index()]
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inc[node.index()].len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_usize)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_usize)
    }

    /// Successor nodes of `node` (one entry per parallel edge).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out[node.index()]
            .iter()
            .map(move |e| self.edges[e.index()].dst)
    }

    /// Predecessor nodes of `node` (one entry per parallel edge).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.inc[node.index()]
            .iter()
            .map(move |e| self.edges[e.index()].src)
    }

    /// Nodes carrying a specific label.
    pub fn nodes_with_label(&self, label: LabelId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.label == label)
            .map(|(i, _)| NodeId::from_usize(i))
    }

    /// Counts self-loop edges (x owns shares of itself — the buy-back
    /// phenomenon discussed in Section 2 of the paper).
    pub fn self_loop_count(&self) -> usize {
        self.edges.iter().filter(|e| e.src == e.dst).count()
    }

    /// Removes an edge, keeping edge ids dense by swap-moving the last
    /// edge into the freed slot. The removed id and the id of the
    /// previously-last edge are both invalidated: the latter now names the
    /// moved edge. Callers holding edge ids across a removal must re-look
    /// them up. Returns the removed edge's endpoints.
    ///
    /// # Panics
    /// Panics if `edge` is out of bounds.
    pub fn remove_edge(&mut self, edge: EdgeId) -> (NodeId, NodeId) {
        let last = EdgeId::from_usize(self.edges.len() - 1);
        let (src, dst) = self.endpoints(edge);
        self.out[src.index()].retain(|&e| e != edge);
        self.inc[dst.index()].retain(|&e| e != edge);
        if edge != last {
            // Rename the last edge to the freed slot in both incidence
            // lists, then physically move it.
            let (ls, ld) = self.endpoints(last);
            for e in self.out[ls.index()].iter_mut() {
                if *e == last {
                    *e = edge;
                }
            }
            for e in self.inc[ld.index()].iter_mut() {
                if *e == last {
                    *e = edge;
                }
            }
        }
        self.edges.swap_remove(edge.index());
        (src, dst)
    }
}

/// Sorts by key and keeps the last write for duplicated keys.
fn normalize_props(props: &mut Vec<(KeyId, Value)>) {
    if props.len() > 1 {
        props.sort_by_key(|(k, _)| *k);
        // Keep the last occurrence of each key: reverse, dedup keeps first.
        props.reverse();
        props.dedup_by_key(|(k, _)| *k);
        props.reverse();
    }
}

fn upsert(props: &mut Vec<(KeyId, Value)>, key: KeyId, value: Value) {
    match props.binary_search_by_key(&key, |(k, _)| *k) {
        Ok(i) => props[i].1 = value,
        Err(i) => props.insert(i, (key, value)),
    }
}

fn lookup(props: &[(KeyId, Value)], key: KeyId) -> Option<&Value> {
    props
        .binary_search_by_key(&key, |(k, _)| *k)
        .ok()
        .map(|i| &props[i].1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (PropertyGraph, NodeId, NodeId, EdgeId) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("Company");
        let b = g.add_node("Person");
        let e = g.add_edge("Shareholding", b, a);
        g.set_edge_prop(e, "w", Value::from(0.6));
        g.set_node_prop(a, "name", Value::from("ACME"));
        (g, a, b, e)
    }

    #[test]
    fn counts_and_labels() {
        let (g, a, b, e) = tiny();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.label_name(g.node_label(a)), "Company");
        assert_eq!(g.label_name(g.node_label(b)), "Person");
        assert_eq!(g.label_name(g.edge_label(e)), "Shareholding");
    }

    #[test]
    fn incidence_both_directions() {
        let (g, a, b, e) = tiny();
        assert_eq!(g.endpoints(e), (b, a));
        assert_eq!(g.out_edges(b), &[e]);
        assert_eq!(g.in_edges(a), &[e]);
        assert_eq!(g.out_degree(a), 0);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.successors(b).collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.predecessors(a).collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    fn properties_upsert_and_lookup() {
        let (mut g, a, _, e) = tiny();
        assert_eq!(g.node_prop(a, "name").unwrap().as_str(), Some("ACME"));
        assert_eq!(g.edge_prop(e, "w").unwrap().as_f64(), Some(0.6));
        assert!(g.node_prop(a, "missing").is_none());
        g.set_node_prop(a, "name", Value::from("ACME2"));
        assert_eq!(g.node_prop(a, "name").unwrap().as_str(), Some("ACME2"));
    }

    #[test]
    fn add_node_with_dedups_props() {
        let mut g = PropertyGraph::new();
        let l = g.label_id("X");
        let k = g.key_id("p");
        let n = g.add_node_with(l, vec![(k, Value::Int(1)), (k, Value::Int(2))]);
        assert_eq!(g.node_prop(n, "p").unwrap().as_i64(), Some(2));
        assert_eq!(g.node_props(n).len(), 1);
    }

    #[test]
    fn self_loops_counted() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("C");
        let b = g.add_node("C");
        g.add_edge("S", a, a);
        g.add_edge("S", a, b);
        assert_eq!(g.self_loop_count(), 1);
    }

    #[test]
    fn nodes_with_label_filters() {
        let (g, a, _, _) = tiny();
        let c = g.find_label("Company").unwrap();
        assert_eq!(g.nodes_with_label(c).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_endpoint_panics() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("C");
        g.add_edge("S", a, NodeId(99));
    }

    #[test]
    fn remove_edge_unlinks_and_compacts() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("C");
        let b = g.add_node("C");
        let c = g.add_node("C");
        let e0 = g.add_edge("S", a, b);
        let e1 = g.add_edge("S", b, c);
        let e2 = g.add_edge("S", a, c);
        g.set_edge_prop(e2, "w", Value::from(0.7));
        // Remove a middle edge: the last edge (a→c) is renamed to its slot.
        assert_eq!(g.remove_edge(e1), (b, c));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.endpoints(EdgeId(1)), (a, c));
        assert_eq!(g.edge_prop(EdgeId(1), "w").unwrap().as_f64(), Some(0.7));
        assert_eq!(g.out_edges(a), &[e0, EdgeId(1)]);
        assert_eq!(g.in_edges(c), &[EdgeId(1)]);
        assert!(g.in_edges(b).iter().all(|&e| g.endpoints(e).1 == b));
        // Remove the (new) last edge: no rename needed.
        assert_eq!(g.remove_edge(EdgeId(1)), (a, c));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_edges(a), &[e0]);
        assert!(g.in_edges(c).is_empty());
        // Remove the only remaining edge.
        g.remove_edge(e0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.out_edges(a).is_empty() && g.in_edges(b).is_empty());
    }
}

/// Extracts the subgraph induced by `nodes`: the selected nodes (with
/// labels and properties) and every edge whose endpoints are both
/// selected. Node ids are compacted to `0..nodes.len()` in the order
/// given; the returned map sends old ids to new ones.
///
/// The paper's Figure 4(a) scenarios are "subsets from the Italian
/// company graph" — this is the extraction primitive.
pub fn induced_subgraph(
    g: &PropertyGraph,
    nodes: &[NodeId],
) -> (PropertyGraph, std::collections::HashMap<NodeId, NodeId>) {
    let mut out = PropertyGraph::with_capacity(nodes.len(), nodes.len());
    let mut remap: std::collections::HashMap<NodeId, NodeId> =
        std::collections::HashMap::with_capacity(nodes.len());
    for &n in nodes {
        let label = out.label_id(g.label_name(g.node_label(n)));
        let props = g
            .node_props(n)
            .iter()
            .map(|(k, v)| (out.key_id(g.key_name(*k)), v.clone()))
            .collect();
        let new = out.add_node_with(label, props);
        remap.insert(n, new);
    }
    for e in g.edge_ids() {
        let (s, d) = g.endpoints(e);
        let (Some(&ns), Some(&nd)) = (remap.get(&s), remap.get(&d)) else {
            continue;
        };
        let label = out.label_id(g.label_name(g.edge_label(e)));
        let props = g
            .edge_props(e)
            .iter()
            .map(|(k, v)| (out.key_id(g.key_name(*k)), v.clone()))
            .collect();
        out.add_edge_with(label, ns, nd, props);
    }
    (out, remap)
}

#[cfg(test)]
mod subgraph_tests {
    use super::*;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("Person");
        let b = g.add_node("Company");
        let c = g.add_node("Company");
        g.set_node_prop(b, "name", Value::from("ACME"));
        let e = g.add_edge("S", a, b);
        g.set_edge_prop(e, "w", Value::from(0.5));
        g.add_edge("S", b, c); // crosses the cut: dropped
        let (sub, remap) = induced_subgraph(&g, &[b, a]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        // b was listed first → new id 0; labels and properties survive.
        assert_eq!(remap[&b], NodeId(0));
        assert_eq!(sub.label_name(sub.node_label(NodeId(0))), "Company");
        assert_eq!(
            sub.node_prop(NodeId(0), "name").unwrap().as_str(),
            Some("ACME")
        );
        let e0 = sub.edge_ids().next().unwrap();
        assert_eq!(sub.endpoints(e0), (remap[&a], remap[&b]));
        assert_eq!(sub.edge_prop(e0, "w").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn empty_selection() {
        let mut g = PropertyGraph::new();
        g.add_node("C");
        let (sub, remap) = induced_subgraph(&g, &[]);
        assert_eq!(sub.node_count(), 0);
        assert!(remap.is_empty());
    }
}
