//! # pgraph — property graph substrate
//!
//! An in-memory [property graph](https://en.wikipedia.org/wiki/Graph_database#Labeled-property_graph)
//! implementation following Definition 2.1 of the paper *"Weaving Enterprise
//! Knowledge Graphs: The Case of Company Ownership Graphs"* (EDBT 2020):
//! a tuple `G = (N, E, rho, lambda, sigma)` with labelled nodes and edges and
//! a partial property-assignment function.
//!
//! The crate provides:
//!
//! * [`PropertyGraph`] — the mutable graph store with interned labels and
//!   property keys, and O(1) incidence lookups in both directions;
//! * [`Csr`] — an immutable compressed-sparse-row snapshot used by the
//!   analytics and embedding layers;
//! * [`algo`] — graph analytics used to characterize company graphs in
//!   Section 2 of the paper (SCC, WCC, degree distributions, clustering
//!   coefficient, power-law fit, simple-path enumeration);
//! * [`stats`] — a one-call summary reproducing the Section 2 statistics;
//! * [`io`] — a minimal CSV import/export for nodes and edges.
//!
//! This store plays the role Neo4j played in the paper's deployment: the
//! extensional component of the knowledge graph.

pub mod algo;
pub mod csr;
pub mod graph;
pub mod id;
pub mod io;
pub mod stats;
pub mod value;

pub use csr::Csr;
pub use graph::{induced_subgraph, EdgeData, NodeData, PropertyGraph};
pub use id::{EdgeId, KeyId, LabelId, NodeId};
pub use stats::GraphStats;
pub use value::Value;
